//! Statistical unbiasedness harness for the HT estimators.
//!
//! The paper's correctness claim (Theorem 1 for RSV, Section 4.1) is that
//! every configuration of the engine produces an *unbiased* Horvitz-
//! Thompson estimate of the embedding count. These tests check the claim
//! end to end against the independent naive oracle
//! (`gsword-enumeration::naive`): run R independent seeded engine
//! estimates, form the sample mean, and assert the exact count lies
//! inside the 99% confidence interval of that mean. Seeds are fixed, so
//! each test is deterministic — it either passes forever or flags a real
//! bias/regression.
//!
//! The quick variants run in the default suite; `#[ignore]`-gated long
//! variants (more runs, bigger budgets, tighter CIs) are for nightly
//! `cargo test -- --ignored`.

use gsword::prelude::*;

/// z-score of the two-sided 99% confidence interval.
const Z99: f64 = 2.576;

fn triangle() -> QueryGraph {
    QueryGraph::new(vec![0; 3], &[(0, 1), (1, 2), (0, 2)]).expect("triangle query")
}

fn clique4() -> QueryGraph {
    QueryGraph::new(
        vec![0; 4],
        &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
    )
    .expect("4-clique query")
}

/// Dense-ish uniform-label synthetic graph: small enough for the naive
/// oracle, dense enough that triangles and 4-cliques are plentiful.
fn synthetic(n: usize, m: usize, seed: u64) -> Graph {
    gsword::graph::gen::erdos_renyi(n, m, vec![0; n], seed)
}

fn small_device() -> DeviceConfig {
    DeviceConfig {
        num_blocks: 2,
        threads_per_block: 64,
        host_threads: 2,
    }
}

/// R independent seeded estimates of `query` on `data` under `cfg`'s
/// engine configuration (seed is overridden per run).
fn seeded_estimates<E: Estimator + ?Sized>(
    data: &Graph,
    query: &QueryGraph,
    est: &E,
    base_cfg: EngineConfig,
    runs: u64,
) -> Vec<f64> {
    let (cg, _) = build_candidate_graph(data, query, &BuildConfig::default());
    let order = quicksi_order(query, data);
    let ctx = QueryCtx::new(&cg, &order);
    (0..runs)
        .map(|r| {
            let cfg = base_cfg.with_seed(0xB1A5_0000 + r * 7919);
            run_engine(&ctx, est, &cfg).value()
        })
        .collect()
}

/// Assert `truth` falls inside the 99% CI of the sample mean of
/// `estimates` (normal approximation over R independent runs).
fn assert_truth_in_ci99(estimates: &[f64], truth: f64, label: &str) {
    let n = estimates.len() as f64;
    assert!(n >= 2.0, "need at least two runs");
    let mean = estimates.iter().sum::<f64>() / n;
    let var = estimates.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let se = (var / n).sqrt();
    let dev = (mean - truth).abs();
    // With zero sample variance the estimator collapsed to a constant —
    // only exact equality is unbiased then.
    let half_width = Z99 * se + truth * 1e-9;
    assert!(
        dev <= half_width,
        "{label}: truth {truth} outside 99% CI — mean {mean:.2} ± {half_width:.2} \
         (se {se:.2}, {} runs)",
        estimates.len()
    );
    // A CI wider than the count itself would make the check vacuous.
    assert!(
        truth == 0.0 || half_width < truth,
        "{label}: CI half-width {half_width:.2} swamps truth {truth} — raise the budget"
    );
}

fn check(query: QueryGraph, est_kind: &str, samples: u64, runs: u64, data_seed: u64) {
    let data = synthetic(24, 130, data_seed);
    let truth = gsword::enumeration::naive::count_embeddings(&data, &query) as f64;
    assert!(truth > 0.0, "fixture must contain the pattern");
    let cfg = EngineConfig::gsword(samples).with_device(small_device());
    let estimates = match est_kind {
        "wj" => seeded_estimates(&data, &query, &WanderJoin, cfg, runs),
        "alley" => seeded_estimates(&data, &query, &Alley, cfg, runs),
        other => panic!("unknown estimator {other}"),
    };
    let label = format!("{est_kind} / {}-vertex query", query.num_vertices());
    assert_truth_in_ci99(&estimates, truth, &label);
}

#[test]
fn wj_triangle_is_unbiased() {
    check(triangle(), "wj", 8_000, 24, 0xD5EA);
}

#[test]
fn wj_clique4_is_unbiased() {
    check(clique4(), "wj", 6_000, 20, 0xD5EA);
}

#[test]
fn alley_triangle_is_unbiased() {
    check(triangle(), "alley", 4_000, 20, 0xD5EA);
}

#[test]
fn alley_clique4_is_unbiased() {
    check(clique4(), "alley", 6_000, 20, 0xD5EA);
}

/// The baseline configuration (static assignment, iteration sync) must be
/// just as unbiased — the optimizations change scheduling, not weights.
#[test]
fn baseline_kernel_is_unbiased_too() {
    let data = synthetic(24, 130, 0xD5EA);
    let query = triangle();
    let truth = gsword::enumeration::naive::count_embeddings(&data, &query) as f64;
    let cfg = EngineConfig::gpu_baseline(4_000).with_device(small_device());
    let estimates = seeded_estimates(&data, &query, &Alley, cfg, 20);
    assert_truth_in_ci99(&estimates, truth, "baseline alley / triangle");
}

/// Nightly: more runs and samples on a bigger graph (`--ignored`).
#[test]
#[ignore = "long nightly variant"]
fn wj_triangle_is_unbiased_long() {
    let data = synthetic(40, 360, 0xFEED);
    let query = triangle();
    let truth = gsword::enumeration::naive::count_embeddings(&data, &query) as f64;
    let cfg = EngineConfig::gsword(20_000).with_device(small_device());
    let estimates = seeded_estimates(&data, &query, &WanderJoin, cfg, 64);
    assert_truth_in_ci99(&estimates, truth, "wj / triangle (long)");
}

/// Nightly: 4-clique at a budget that tightens the CI well below truth.
#[test]
#[ignore = "long nightly variant"]
fn alley_clique4_is_unbiased_long() {
    let data = synthetic(40, 360, 0xFEED);
    let query = clique4();
    let truth = gsword::enumeration::naive::count_embeddings(&data, &query) as f64;
    let cfg = EngineConfig::gsword(30_000).with_device(small_device());
    let estimates = seeded_estimates(&data, &query, &Alley, cfg, 64);
    assert_truth_in_ci99(&estimates, truth, "alley / 4-clique (long)");
}
