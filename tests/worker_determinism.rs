//! Block-parallel launches are bit-deterministic: fanning a grid's blocks
//! over any number of sim workers must not change a single observable —
//! estimates, kernel counters, or sanitizer verdicts. Likewise the
//! decoded-block cache inside the compressed backend is a pure
//! memoization: every `GraphStorage` method answers identically with the
//! cache on, off, or starved down to a budget that fits nothing.

use gsword::graph::compressed::CompressedGraph;
use gsword::prelude::*;
use proptest::prelude::*;

fn run_with_workers(
    data: &Graph,
    query: &QueryGraph,
    kind: EstimatorKind,
    seed: u64,
    workers: usize,
) -> Report {
    Gsword::builder(data, query)
        .samples(2_000)
        .estimator(kind)
        .seed(seed)
        .backend(Backend::Gsword)
        .sim_workers(workers)
        .sanitize(SanitizerMode::FULL)
        .run()
        .expect("estimate runs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// 1, 2, and 8 sim workers: same estimate bits, same counter
    /// snapshot, same sanitizer violation set — on both a small and a
    /// larger dataset, for both estimators.
    #[test]
    fn estimates_are_bit_identical_across_worker_counts(seed in any::<u64>()) {
        let dataset = if seed & 1 == 0 { "yeast" } else { "eu2005" };
        let kind = if seed & 2 == 0 { EstimatorKind::WanderJoin } else { EstimatorKind::Alley };
        let data = gsword::datasets::dataset(dataset);
        let query = QueryGraph::extract(&data, 4, seed ^ 0xA5A5).expect("query");
        let serial = run_with_workers(&data, &query, kind, seed, 1);
        for workers in [2usize, 8] {
            let parallel = run_with_workers(&data, &query, kind, seed, workers);
            prop_assert_eq!(
                serial.estimate.to_bits(),
                parallel.estimate.to_bits(),
                "{}/{:?}: estimate diverges at {} workers",
                dataset, kind, workers
            );
            prop_assert_eq!(
                serial.counters.as_ref().expect("counters").snapshot(),
                parallel.counters.as_ref().expect("counters").snapshot(),
                "{}/{:?}: counters diverge at {} workers",
                dataset, kind, workers
            );
            prop_assert_eq!(
                serial.sanitizer.as_ref().expect("sanitizer report"),
                parallel.sanitizer.as_ref().expect("sanitizer report"),
                "{}/{:?}: sanitizer verdicts diverge at {} workers",
                dataset, kind, workers
            );
        }
    }
}

/// Every `GraphStorage` method, compared element-for-element between a
/// cache-enabled compressed graph, a cache-disabled one, and one whose
/// budget is too small to admit any block (exercising the
/// hand-back-uncached path).
#[test]
fn decode_cache_is_invisible_to_every_storage_method() {
    let g = gsword::datasets::dataset("yeast");
    let cached = CompressedGraph::from_graph(&g); // default cache on
    let uncached = CompressedGraph::from_graph(&g).with_decode_cache(0);
    let starved = CompressedGraph::from_graph(&g).with_decode_cache(1);

    assert!(cached.decode_cache_capacity() > 0);
    assert_eq!(uncached.decode_cache_capacity(), 0);

    let n = g.num_vertices();
    assert_eq!(cached.num_vertices(), n);
    assert_eq!(uncached.num_vertices(), n);
    assert_eq!(cached.num_edges(), uncached.num_edges());
    assert_eq!(cached.label_count(), uncached.label_count());
    assert_eq!(cached.max_degree(), uncached.max_degree());

    let mut buf_c = Vec::new();
    let mut buf_u = Vec::new();
    for v in 0..n as VertexId {
        // Twice per vertex: the second pass hits the warm cache.
        for pass in 0..2 {
            assert_eq!(
                &*cached.neighbors_ref(v),
                &*uncached.neighbors_ref(v),
                "neighbors_ref({v}) pass {pass}"
            );
            assert_eq!(
                &*starved.neighbors_ref(v),
                &*uncached.neighbors_ref(v),
                "starved neighbors_ref({v}) pass {pass}"
            );

            buf_c.clear();
            buf_u.clear();
            cached.neighbors_into(v, &mut buf_c);
            uncached.neighbors_into(v, &mut buf_u);
            assert_eq!(buf_c, buf_u, "neighbors_into({v})");

            let mut seen_c = Vec::new();
            cached.for_each_neighbor(v, |w| {
                seen_c.push(w);
                true
            });
            assert_eq!(seen_c, buf_u, "for_each_neighbor({v})");

            // Early-exit streaming must stop at the same place.
            let mut first_c = None;
            let mut first_u = None;
            cached.for_each_neighbor(v, |w| {
                first_c = Some(w);
                false
            });
            uncached.for_each_neighbor(v, |w| {
                first_u = Some(w);
                false
            });
            assert_eq!(first_c, first_u, "for_each_neighbor({v}) early exit");
        }

        assert_eq!(cached.degree(v), uncached.degree(v), "degree({v})");
        assert_eq!(cached.label(v), uncached.label(v), "label({v})");

        let probe = [(v * 7 + 3) % n as VertexId, (v + 1) % n as VertexId];
        for &w in &probe {
            assert_eq!(
                cached.has_edge(v, w),
                uncached.has_edge(v, w),
                "has_edge({v}, {w})"
            );
        }

        let other: Vec<VertexId> = (0..n as VertexId).step_by(3).collect();
        buf_c.clear();
        buf_u.clear();
        cached.intersect_neighbors_into(v, &other, &mut buf_c);
        uncached.intersect_neighbors_into(v, &other, &mut buf_u);
        assert_eq!(buf_c, buf_u, "intersect_neighbors_into({v})");
    }

    for l in 0..cached.label_count() as Label {
        assert_eq!(
            cached.vertices_with_label(l),
            uncached.vertices_with_label(l),
            "vertices_with_label({l})"
        );
    }

    // The cache is capacity-honest: resident bytes stay within budget and
    // are reported by mem_bytes, so the cached graph never claims the
    // uncached footprint.
    assert!(cached.decode_cache_bytes() <= cached.decode_cache_capacity());
    assert_eq!(
        starved.decode_cache_bytes(),
        0,
        "nothing fits a 1-byte budget"
    );
    assert!(cached.mem_bytes() >= uncached.mem_bytes());
}
