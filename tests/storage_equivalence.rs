//! Backend equivalence: the compressed storage backend must be invisible
//! to the sampling pipeline. WanderJoin and Alley estimates, and the
//! device kernels' coalescing charges, are *bit-identical* between CSR
//! and compressed storage — the candidate graph depends only on neighbor
//! sets, which both backends expose identically, so everything downstream
//! is deterministic in the storage representation.

use gsword::graph::compressed::CompressedGraph;
use gsword::prelude::*;

fn run_backend<S: GraphStorage>(
    data: &S,
    query: &QueryGraph,
    kind: EstimatorKind,
    samples: u64,
) -> Report {
    Gsword::builder(data, query)
        .samples(samples)
        .estimator(kind)
        .seed(0xD1CE)
        .backend(Backend::Gsword)
        .run()
        .expect("estimate runs")
}

fn assert_bitwise_equal(dataset: &str, k: usize) {
    let csr = gsword::graph::datasets::dataset(dataset);
    let compressed = CompressedGraph::from_graph(&csr);
    let query = QueryGraph::extract(&csr, k, 0xE0).expect("extractable query");

    for kind in [EstimatorKind::WanderJoin, EstimatorKind::Alley] {
        let a = run_backend(&csr, &query, kind, 3_000);
        let b = run_backend(&compressed, &query, kind, 3_000);

        // Bitwise, not approximately: same sample paths, same arithmetic.
        assert_eq!(
            a.estimate.to_bits(),
            b.estimate.to_bits(),
            "{dataset}/{kind:?}: estimates diverge between storage backends"
        );
        assert_eq!(
            a.samples_collected, b.samples_collected,
            "{dataset}/{kind:?}: sample counts diverge"
        );

        // The modeled device work — every load, store, transaction, and
        // divergence charge — must also be identical: kernels only ever
        // touch the candidate graph, never the storage backend.
        let ca = a.counters.expect("device backend carries counters");
        let cb = b.counters.expect("device backend carries counters");
        assert_eq!(
            ca.snapshot(),
            cb.snapshot(),
            "{dataset}/{kind:?}: coalescing charges diverge between storage backends"
        );
    }
}

#[test]
fn yeast_estimates_are_bitwise_equal_across_backends() {
    assert_bitwise_equal("yeast", 4);
}

#[test]
fn power_law_estimates_are_bitwise_equal_across_backends() {
    assert_bitwise_equal("eu2005", 4);
}

#[test]
fn compressed_backend_is_at_most_forty_percent_of_csr_on_power_law_suites() {
    // The headline storage win (DESIGN.md §13): Rice-coded gaps plus
    // Elias-Fano indexes hold a power-law suite graph in ≤ 40% of the
    // CSR footprint, with the web/social graphs comfortably under.
    for name in ["eu2005", "orkut"] {
        let g = gsword::graph::datasets::dataset(name);
        let c = CompressedGraph::from_graph(&g);
        let csr_bytes = g.mem_bytes();
        let packed_bytes = GraphStorage::mem_bytes(&c);
        assert!(
            packed_bytes * 100 <= csr_bytes * 40,
            "{name}: packed {packed_bytes}B vs csr {csr_bytes}B ({:.1}%)",
            100.0 * packed_bytes as f64 / csr_bytes as f64
        );
    }
}
