//! Cross-validation of the static analyzer against the dynamic layers.
//!
//! Every rule `cargo xtask analyze` enforces exists because some runtime
//! misbehavior is real. Each test here has two halves:
//!
//!  * **static**: a minimal bad snippet, analyzed with
//!    `gsword_analyzer::analyze_source`, yields exactly the rule's
//!    diagnostic;
//!  * **dynamic**: the same bug pattern, executed against the simulator,
//!    produces the concrete failure the rule predicts — a sanitizer
//!    violation, a silently wrong device-time estimate, or lost counter
//!    attribution.
//!
//! The pairing table lives in DESIGN.md §10. This suite sits at the
//! workspace root (outside the `crates/` tree the analyzer walks) so its
//! own deliberately-misbehaving runtime calls are not self-flagged.

use gsword_analyzer::Finding;
use gsword_simt::{
    warp, Device, DeviceConfig, DeviceModel, Event, KernelCounters, Runtime, RuntimeConfig,
    SamplePool, Sanitizer, SanitizerMode, ViolationKind, WARP_SIZE,
};

/// Analyze `src` under the path label `label` and assert the analyzer
/// reports exactly one finding, for `rule`.
fn assert_single_finding(label: &str, src: &str, rule: &str) -> Finding {
    let findings = gsword_analyzer::analyze_source(label, src);
    assert_eq!(
        findings.len(),
        1,
        "{label}: expected exactly one {rule} finding, got:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(findings[0].rule, rule, "{}", findings[0]);
    findings[0].clone()
}

// ---------------------------------------------------------------------------
// divergent-sync  <->  synccheck
// ---------------------------------------------------------------------------

/// Static: a kernel declares the full mask to a warp primitive right after
/// telling the executor only a subset of lanes is converged. Dynamic: the
/// same call sequence trips synccheck's `SyncMaskMismatch` — on hardware
/// the stray lanes make the primitive's result undefined.
#[test]
fn divergent_sync_pairs_with_synccheck() {
    assert_single_finding(
        "kernel.rs",
        "pub fn collapse(ctr: &mut KernelCounters, san: &WarpSanitizer, mask: WarpMask, pred: &Lanes<bool>) -> u32 {
            san.set_active(mask);
            ballot(ctr, san, u32::MAX, pred)
        }",
        "divergent-sync",
    );

    let sz = Sanitizer::new(SanitizerMode::FULL, "pair-sync");
    let ws = sz.warp(0, 0);
    let mut ctr = KernelCounters::default();
    ws.set_active(0x0000_FFFF);
    warp::ballot(&mut ctr, &ws, u32::MAX, &[false; WARP_SIZE]);
    let rep = sz.report();
    assert_eq!(rep.count_for("synccheck"), 1, "{rep}");
    assert!(matches!(
        rep.violations[0].kind,
        ViolationKind::SyncMaskMismatch {
            declared: 0xFFFF_FFFF,
            active: 0x0000_FFFF,
            ..
        }
    ));
}

// ---------------------------------------------------------------------------
// pool-race  <->  racecheck
// ---------------------------------------------------------------------------

/// Static: an atomic pool fetch followed by an unsynchronized cursor read
/// with no barrier between them. Dynamic: another warp's plain read of the
/// cursor races the atomic increment and racecheck reports it.
#[test]
fn pool_race_pairs_with_racecheck() {
    assert_single_finding(
        "kernel.rs",
        "pub fn drain_and_peek(pool: &SamplePool, san: &WarpSanitizer) -> u64 {
            let _task = pool.fetch_sanitized(san);
            pool.read_cursor_unsync(san)
        }",
        "pool-race",
    );

    let sz = Sanitizer::new(SanitizerMode::FULL, "pair-race");
    let pool = SamplePool::new(64);
    let w0 = sz.warp(0, 0);
    let w1 = sz.warp(0, 1);
    assert!(pool.fetch_sanitized(&w0).is_some());
    pool.read_cursor_unsync(&w1); // plain read races warp 0's atomic write
    let rep = sz.report();
    assert!(rep.count_for("racecheck") >= 1, "{rep}");
    assert!(matches!(
        rep.violations[0].kind,
        ViolationKind::ReadWriteRace { .. }
    ));
}

// ---------------------------------------------------------------------------
// primitive-charges-counters  <->  the device-time model
// ---------------------------------------------------------------------------

/// Static: a pub fn takes `&mut KernelCounters` and never charges them.
/// Dynamic: work that skips charging is invisible to the device-time
/// model — the modeled kernel time collapses to bare launch overhead, so
/// every optimization ratio computed from it is garbage.
#[test]
fn uncharged_counters_pair_with_zero_modeled_time() {
    assert_single_finding(
        "kernel.rs",
        "pub fn phantom_work(ctr: &mut KernelCounters, items: &Lanes<u32>) -> u32 {
            items.iter().sum()
        }",
        "primitive-charges-counters",
    );

    let model = DeviceModel::default();
    let uncharged = KernelCounters::default();
    assert!(
        (model.modeled_ms(&uncharged) - model.launch_overhead_ms).abs() < 1e-12,
        "uncharged work is invisible to the time model"
    );
    let mut charged = KernelCounters::default();
    for _ in 0..10_000 {
        charged.warp_instruction(u32::MAX);
    }
    assert!(
        model.modeled_ms(&charged) > model.modeled_ms(&uncharged),
        "charging is what makes work cost modeled time"
    );
}

// ---------------------------------------------------------------------------
// no-seqcst  <->  Relaxed is sufficient
// ---------------------------------------------------------------------------

/// Static: a SeqCst ordering is flagged. Dynamic: the pool's Relaxed CAS
/// hands out every task exactly once under real thread contention — the
/// device model's invariants never needed the full fence SeqCst pays for.
#[test]
fn no_seqcst_pairs_with_relaxed_exactness() {
    assert_single_finding(
        "pool.rs",
        "fn cursor_value(cursor: &AtomicU64) -> u64 {
            cursor.load(Ordering::SeqCst)
        }",
        "no-seqcst",
    );

    let pool = SamplePool::new(10_000);
    let count = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(|| {
                while pool.fetch().is_some() {
                    count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(count.load(std::sync::atomic::Ordering::Relaxed), 10_000);
    assert_eq!(pool.issued(), 10_000);
}

// ---------------------------------------------------------------------------
// launch-merges-counters  <->  dropped counters underestimate device time
// ---------------------------------------------------------------------------

/// Static: a launch whose per-block counters are never merged. Dynamic:
/// dropping any block's counters makes the modeled kernel time strictly
/// smaller — a silent underestimate, not an error.
#[test]
fn unmerged_launch_pairs_with_underestimated_time() {
    assert_single_finding(
        "simt/runner.rs",
        "pub fn estimate_without_counters(device: &Device) -> f64 {
            let parts = device.launch(|b| block_estimate(b));
            parts.iter().sum()
        }",
        "launch-merges-counters",
    );

    let dev = Device::new(DeviceConfig {
        num_blocks: 4,
        threads_per_block: 64,
        host_threads: 2,
    });
    let per_block: Vec<KernelCounters> = dev.launch(|_b| {
        let mut c = KernelCounters::default();
        for _ in 0..10_000 {
            c.warp_instruction(u32::MAX);
        }
        c
    });
    let mut all = KernelCounters::default();
    for c in &per_block {
        all.merge(c);
    }
    let mut dropped = KernelCounters::default();
    dropped.merge(&per_block[0]); // merged only the first block
    let model = DeviceModel::default();
    assert!(
        model.modeled_ms(&all) > model.modeled_ms(&dropped),
        "dropping block counters silently underestimates kernel time"
    );
}

// ---------------------------------------------------------------------------
// launch-confined  <->  bypassing the runtime loses attribution
// ---------------------------------------------------------------------------

/// Static: a direct `device.launch` outside crates/simt and the engine
/// runtime module. Dynamic: a launch that bypasses the runtime's counter
/// board leaves the board empty — the work happened but no stream or
/// device is charged for it until the runtime layer does the charging.
#[test]
fn stray_launch_pairs_with_lost_attribution() {
    assert_single_finding(
        "core/src/estimate.rs",
        "pub fn direct_launch(device: &Device, report: &mut EngineReport) {
            let parts = device.launch(|b| run_block(b));
            for c in parts {
                report.counters.merge(c);
            }
        }",
        "launch-confined",
    );

    let rt = Runtime::new(RuntimeConfig {
        num_devices: 1,
        streams_per_device: 1,
        device: DeviceConfig {
            num_blocks: 2,
            threads_per_block: 32,
            host_threads: 1,
        },
        sim_workers: 1,
    });
    let per_block: Vec<KernelCounters> = rt.device(0).launch(|_b| {
        let mut c = KernelCounters::default();
        c.warp_instruction(u32::MAX);
        c
    });
    assert_eq!(
        rt.device_counters(0),
        KernelCounters::default(),
        "a launch that bypasses the runtime charges nothing to the board"
    );
    for c in &per_block {
        rt.charge(0, 0, c);
    }
    assert_ne!(
        rt.device_counters(0),
        KernelCounters::default(),
        "routing the launch through the runtime restores attribution"
    );
}

// ---------------------------------------------------------------------------
// scope-blocking  <->  a pool worker waiting on its own stream deadlocks
// ---------------------------------------------------------------------------

/// Static: a job submitted to the stream pool waits on an event from
/// inside the worker. Dynamic: each (device, stream) has exactly one
/// dedicated worker, so a job that waits for a *later* job on the same
/// stream parks the only thread that could ever run that later job — the
/// scope never drains. The cross-stream version of the same wait is fine,
/// which is why the rule fires on blocking *reachable from a submitted
/// job*, not on event waits as such.
#[test]
fn scope_blocking_pairs_with_same_stream_deadlock() {
    assert_single_finding(
        "core/src/schedule.rs",
        "pub fn wait_inside_worker(rs: &RuntimeScope, ev: &Event) {
            rs.submit(0, 0, move || ev.wait());
        }",
        "scope-blocking",
    );

    let config = RuntimeConfig {
        num_devices: 1,
        streams_per_device: 2,
        device: DeviceConfig {
            num_blocks: 2,
            threads_per_block: 32,
            host_threads: 1,
        },
        sim_workers: 1,
    };

    // Cross-stream wait drains: stream 1's worker records the event while
    // stream 0's worker is parked in `wait`.
    let rt = Runtime::new(config);
    rt.scope(|rs| {
        let ev = rs.record(0, 1);
        rs.submit(0, 0, move || ev.wait());
    });

    // Same-stream wait deadlocks: the waiter is queued first, so stream
    // 0's only worker parks in `wait` and the `record` job behind it can
    // never run. Demonstrate via watchdog — the scope must still be stuck
    // after a generous timeout. The runtime is leaked and the thread
    // detached: joining either would block this test forever.
    let rt: &'static Runtime = Box::leak(Box::new(Runtime::new(config)));
    let (tx, rx) = std::sync::mpsc::channel();
    let stuck = std::thread::spawn(move || {
        rt.scope(|rs| {
            let ev = Event::new();
            let waiter = ev.clone();
            rs.submit(0, 0, move || waiter.wait());
            rs.submit(0, 0, move || ev.record());
        });
        let _ = tx.send(());
    });
    match rx.recv_timeout(std::time::Duration::from_millis(300)) {
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {} // parked, as predicted
        Ok(()) => panic!("same-stream wait drained — the worker-per-stream model changed"),
        Err(e) => panic!("watchdog channel broke: {e}"),
    }
    drop(stuck);
}

// ---------------------------------------------------------------------------
// prof-confined  <->  board reads race the runtime's own drain
// ---------------------------------------------------------------------------

/// Static: a direct counter-board read outside crates/simt, crates/prof,
/// and the engine runtime module. Dynamic: the board is drained by
/// `take_device_counters` between batches, so an outside reader sees
/// whatever is left — here, nothing — while the report layers
/// (ProfReport / EngineReport) persist the charge.
#[test]
fn board_read_pairs_with_drain_data_loss() {
    assert_single_finding(
        "core/src/metrics.rs",
        "pub fn stream_time(rt: &Runtime, model: &DeviceModel) -> f64 {
            model.modeled_ms(&rt.stream_counters(0, 0))
        }",
        "prof-confined",
    );

    let rt = Runtime::new(RuntimeConfig::default());
    let mut c = KernelCounters::default();
    c.warp_instruction(u32::MAX);
    rt.charge(0, 0, &c);
    assert_ne!(rt.stream_counters(0, 0), KernelCounters::default());

    // The engine runtime drains the board between batches; a drained
    // snapshot keeps the data...
    let drained = rt.take_device_counters();
    assert_ne!(drained[0], KernelCounters::default());
    // ...but any outside reader consulting the board afterwards sees
    // zeros: direct board reads are only coherent inside the layer that
    // owns the drain schedule.
    assert_eq!(
        rt.stream_counters(0, 0),
        KernelCounters::default(),
        "board reads after a drain observe nothing"
    );
}
