//! End-to-end integration tests spanning every crate: dataset generation →
//! query extraction → candidate graph → device sampling → enumeration →
//! trawling pipeline.

use gsword::prelude::*;

fn small_device() -> DeviceConfig {
    DeviceConfig {
        num_blocks: 2,
        threads_per_block: 64,
        host_threads: 2,
    }
}

#[test]
fn full_stack_on_every_dataset() {
    for name in gsword::datasets::dataset_names() {
        let data = gsword::datasets::dataset(name);
        let Some(query) = QueryGraph::extract(&data, 4, 0x1234) else {
            panic!("{name}: 4-vertex query extraction failed");
        };
        let report = Gsword::builder(&data, &query)
            .samples(5_000)
            .device(small_device())
            .seed(1)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(report.estimate.is_finite(), "{name}");
        assert_eq!(report.sampler.samples, 5_000, "{name}");
        assert!(report.candidate_stats.is_some(), "{name}");
    }
}

#[test]
fn estimators_converge_to_exact_counts() {
    let data = gsword::datasets::dataset("yeast");
    for seed in [7u64, 21, 35] {
        let Some(query) = QueryGraph::extract(&data, 4, seed) else {
            continue;
        };
        let truth = exact_count(&data, &query, 0, 2).expect("exact count") as f64;
        if truth == 0.0 {
            continue;
        }
        for kind in [EstimatorKind::WanderJoin, EstimatorKind::Alley] {
            let report = Gsword::builder(&data, &query)
                .samples(150_000)
                .estimator(kind)
                .device(small_device())
                .seed(seed)
                .run()
                .expect("run");
            assert!(
                report.q_error(truth) < 1.8,
                "seed {seed} {kind:?}: estimate {} vs truth {truth}",
                report.estimate
            );
        }
    }
}

#[test]
fn device_backends_match_cpu_statistically() {
    let data = gsword::datasets::dataset("hprd");
    let query = QueryGraph::extract(&data, 6, 0xABCD).expect("query");
    let cpu = Gsword::builder(&data, &query)
        .samples(60_000)
        .backend(Backend::Cpu { threads: 4 })
        .seed(9)
        .run()
        .expect("cpu");
    let dev = Gsword::builder(&data, &query)
        .samples(60_000)
        .backend(Backend::Gsword)
        .device(small_device())
        .seed(9)
        .run()
        .expect("device");
    // Same target, independent streams: estimates agree within sampling
    // noise (both unbiased).
    if cpu.estimate > 0.0 && dev.estimate > 0.0 {
        let ratio = cpu.estimate / dev.estimate;
        assert!(
            (0.4..2.5).contains(&ratio),
            "cpu {} vs device {}",
            cpu.estimate,
            dev.estimate
        );
    }
}

#[test]
fn trawling_beats_plain_sampling_in_the_underestimation_regime() {
    let data = gsword::datasets::dataset("wordnet");
    // 16-vertex queries on the lexical graph: the paper's severe
    // underestimation regime. Find one whose plain estimate collapses.
    let mut tested = 0;
    for seed in 0..10u64 {
        let Some(query) = QueryGraph::extract(&data, 16, seed) else {
            continue;
        };
        let Some(truth) = exact_count(&data, &query, 50_000_000, 0) else {
            continue;
        };
        if truth == 0 {
            continue;
        }
        let truth = truth as f64;
        let plain = Gsword::builder(&data, &query)
            .samples(20_000)
            .backend(Backend::GpuBaseline)
            .device(small_device())
            .seed(seed)
            .run()
            .expect("plain");
        if plain.q_error(truth) <= 5.0 {
            continue;
        }
        let trawled = Gsword::builder(&data, &query)
            .samples(20_000)
            .device(small_device())
            .trawling(TrawlConfig {
                batches: 3,
                cpu_threads: 2,
                per_batch: 32,
                ..TrawlConfig::default()
            })
            .seed(seed)
            .run()
            .expect("trawled");
        tested += 1;
        // Worst case the pipeline falls back to the sampler estimate, so
        // trawling can only help (a small tolerance covers trawl variance).
        assert!(
            trawled.q_error(truth) <= plain.q_error(truth) * 2.0,
            "seed {seed}: trawling {} (q {:.1}) vs plain {} (q {:.1}), truth {truth}",
            trawled.estimate,
            trawled.q_error(truth),
            plain.estimate,
            plain.q_error(truth)
        );
        if tested >= 2 {
            break;
        }
    }
    assert!(tested > 0, "no underestimating query found to test against");
}

#[test]
fn ablation_ladder_is_ordered_on_skewed_data() {
    // O2 should never be slower than O0 per collected sample on a
    // refine-heavy workload (eu2005-like skew + Alley).
    let data = gsword::datasets::dataset("eu2005");
    let query = QueryGraph::extract(&data, 8, 0x77).expect("query");
    let run = |cfg: EngineConfig| {
        Gsword::builder(&data, &query)
            .samples(10_000)
            .backend(Backend::Device(cfg))
            .device(small_device())
            .seed(5)
            .run()
            .expect("run")
    };
    let o0 = run(EngineConfig::o0(0));
    let o2 = run(EngineConfig::o2(0));
    let per = |r: &Report| r.modeled_ms.unwrap() / r.samples_collected as f64;
    assert!(
        per(&o2) <= per(&o0) * 1.05,
        "O2 {:.3e} ms/sample vs O0 {:.3e}",
        per(&o2),
        per(&o0)
    );
}
