//! The full optimization matrix: every combination of inheritance ×
//! streaming × sync × pool must produce a consistent estimate — including
//! the off-diagonal combinations no preset covers (streaming without
//! inheritance, pool with iteration sync, …).

use gsword::prelude::*;

fn small_device() -> DeviceConfig {
    DeviceConfig {
        num_blocks: 2,
        threads_per_block: 64,
        host_threads: 2,
    }
}

fn fixture() -> (Graph, QueryGraph, f64) {
    let data = gsword::datasets::dataset("hprd");
    let query = QueryGraph::extract(&data, 5, 0xAA).expect("query");
    let truth = exact_count(&data, &query, 400_000_000, 0).expect("exact") as f64;
    (data, query, truth)
}

#[test]
fn every_flag_combination_is_consistent() {
    let (data, query, truth) = fixture();
    if truth == 0.0 {
        return;
    }
    let mut checked = 0;
    for inheritance in [false, true] {
        for streaming in [false, true] {
            for pool in [PoolMode::BlockPool, PoolMode::Static] {
                // Iteration sync does not compose with the warp-round
                // optimizations (lanes sit at different depths), matching
                // the system's design; test it separately below.
                let cfg = EngineConfig {
                    inheritance,
                    streaming,
                    pool,
                    sync: SyncMode::SampleSync,
                    ..EngineConfig::o0(0)
                };
                let r = Gsword::builder(&data, &query)
                    .samples(60_000)
                    .backend(Backend::Device(cfg))
                    .device(small_device())
                    .seed(0xC0)
                    .run()
                    .expect("run");
                assert_eq!(r.sampler.samples, 60_000);
                assert!(
                    r.q_error(truth) < 2.5,
                    "inh={inheritance} str={streaming} {pool:?}: {} vs {truth}",
                    r.estimate
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 8);
}

#[test]
fn iteration_sync_with_both_pools() {
    let (data, query, truth) = fixture();
    for pool in [PoolMode::BlockPool, PoolMode::Static] {
        let cfg = EngineConfig {
            pool,
            ..EngineConfig::iteration_sync(0)
        };
        let r = Gsword::builder(&data, &query)
            .samples(60_000)
            .backend(Backend::Device(cfg))
            .device(small_device())
            .seed(0xC1)
            .run()
            .expect("run");
        assert_eq!(r.sampler.samples, 60_000, "{pool:?}");
        if truth > 0.0 {
            assert!(
                r.q_error(truth) < 2.5,
                "{pool:?}: {} vs {truth}",
                r.estimate
            );
        }
    }
}

#[test]
fn streaming_without_inheritance_still_unbiased_on_skewed_graph() {
    // Streaming-only (no preset covers it): the reservoir invariant must
    // hold independently of inheritance.
    let data = gsword::datasets::dataset("eu2005");
    let query = QueryGraph::extract(&data, 4, 0x5E).expect("query");
    let Some(truth) = exact_count(&data, &query, 400_000_000, 0) else {
        return;
    };
    if truth == 0 {
        return;
    }
    let cfg = EngineConfig {
        streaming: true,
        inheritance: false,
        ..EngineConfig::o0(0)
    };
    let r = Gsword::builder(&data, &query)
        .samples(80_000)
        .estimator(EstimatorKind::Alley)
        .backend(Backend::Device(cfg))
        .device(small_device())
        .seed(0xC2)
        .run()
        .expect("run");
    assert!(
        r.q_error(truth as f64) < 2.0,
        "streaming-only: {} vs {truth}",
        r.estimate
    );
}

#[test]
fn tiny_budgets_and_odd_geometries() {
    let (data, query, _) = fixture();
    // Fewer samples than lanes; more blocks than samples; single warp.
    for (samples, blocks, tpb) in [(1u64, 4, 32), (7, 8, 64), (31, 1, 32), (33, 1, 32)] {
        for backend in [Backend::Gsword, Backend::GpuBaseline] {
            let r = Gsword::builder(&data, &query)
                .samples(samples)
                .backend(backend)
                .device(DeviceConfig {
                    num_blocks: blocks,
                    threads_per_block: tpb,
                    host_threads: 2,
                })
                .run()
                .expect("run");
            assert_eq!(
                r.sampler.samples, samples,
                "samples={samples} blocks={blocks} tpb={tpb} {backend:?}"
            );
        }
    }
}

#[test]
fn adaptive_mode_respects_wall_budget() {
    let (data, query, _) = fixture();
    let (cg, _) = build_candidate_graph(&data, &query, &BuildConfig::default());
    let order = quicksi_order(&query, &data);
    let ctx = QueryCtx::new(&cg, &order);
    let engine = EngineConfig::gsword(0).with_device(small_device());
    let r = run_adaptive(
        &ctx,
        &Alley,
        &engine,
        &AdaptiveConfig {
            target_rel_ci: 1e-9, // unreachable
            batch: 1_000,
            max_samples: 0,
            max_wall_ms: 50.0,
        },
    );
    assert!(!r.converged);
    assert!(r.wall_ms >= 50.0, "budget should be the binding constraint");
    assert!(r.batches >= 1);
}
