//! Multi-device determinism: the runtime topology (devices × streams) must
//! not change what a run computes, only where its shards execute.
//!
//! The design that makes this hold: per-block sample quotas come from
//! `split_budget` over the *global* grid, per-lane RNG streams key on
//! *global* block ids, and block results merge in ascending global block
//! order regardless of which device produced them.

use gsword::prelude::*;
use gsword_estimators::{Alley, WanderJoin};
use proptest::prelude::*;

fn fixture() -> (Graph, QueryGraph) {
    let data = gsword::datasets::dataset("yeast");
    let query = QueryGraph::extract(&data, 5, 0xBEEF).expect("query");
    (data, query)
}

fn device() -> DeviceConfig {
    DeviceConfig {
        num_blocks: 8,
        threads_per_block: 64,
        host_threads: 2,
    }
}

fn run_with_topology(est: EstimatorKind, devices: usize, streams: usize) -> EngineReport {
    let (data, query) = fixture();
    let (cg, _) = build_candidate_graph(&data, &query, &BuildConfig::default());
    let order = quicksi_order(&query, &data);
    let ctx = QueryCtx::new(&cg, &order);
    let cfg = EngineConfig {
        device: device(),
        ..EngineConfig::gsword(10_000)
    }
    .with_seed(0xD15C)
    .with_topology(devices, streams);
    match est {
        EstimatorKind::WanderJoin => run_engine(&ctx, &WanderJoin, &cfg),
        EstimatorKind::Alley => run_engine(&ctx, &Alley, &cfg),
    }
}

#[test]
fn wj_estimate_is_bit_identical_across_topologies() {
    let single = run_with_topology(EstimatorKind::WanderJoin, 1, 1);
    let sharded = run_with_topology(EstimatorKind::WanderJoin, 2, 4);
    assert_eq!(
        single.estimate.value().to_bits(),
        sharded.estimate.value().to_bits(),
        "WJ estimate must be bit-identical: {} vs {}",
        single.estimate.value(),
        sharded.estimate.value()
    );
    assert_eq!(single.samples_collected, sharded.samples_collected);
    assert_eq!(single.counters, sharded.counters);
}

#[test]
fn alley_estimate_is_bit_identical_across_topologies() {
    let single = run_with_topology(EstimatorKind::Alley, 1, 1);
    let sharded = run_with_topology(EstimatorKind::Alley, 2, 4);
    assert_eq!(
        single.estimate.value().to_bits(),
        sharded.estimate.value().to_bits(),
        "Alley estimate must be bit-identical: {} vs {}",
        single.estimate.value(),
        sharded.estimate.value()
    );
    assert_eq!(single.samples_collected, sharded.samples_collected);
    assert_eq!(single.counters, sharded.counters);
}

#[test]
fn two_devices_report_per_device_times() {
    let rep = run_with_topology(EstimatorKind::Alley, 2, 2);
    assert_eq!(rep.per_device_modeled_ms.len(), 2);
    let max = rep
        .per_device_modeled_ms
        .iter()
        .copied()
        .fold(0.0f64, f64::max);
    assert_eq!(rep.modeled_ms.to_bits(), max.to_bits(), "makespan = max");
    assert!(rep.per_device_modeled_ms.iter().all(|&ms| ms > 0.0));
}

#[test]
fn merge_devices_normalizes_after_summing() {
    // Two devices, very different collected-sample counts. The per-sample
    // cost of the merged report must come from the *summed* totals, not
    // from averaging the per-device normalized values.
    let mut fast = KernelCounters::default();
    for _ in 0..1_000 {
        fast.warp_instruction(u32::MAX);
    }
    let mut slow = KernelCounters::default();
    for _ in 0..9_000 {
        slow.warp_instruction(u32::MAX);
    }
    let model = DeviceModel::default();
    let mk = |counters: KernelCounters, fetched: u64, inherited: u64| {
        let estimate = Estimate {
            samples: fetched,
            ..Estimate::default()
        };
        EngineReport {
            samples_collected: fetched + inherited,
            estimate,
            modeled_ms: model.modeled_ms(&counters),
            per_device_modeled_ms: vec![model.modeled_ms(&counters)],
            counters,
            wall_ms: 1.0,
            sanitizer: None,
            prof: None,
        }
    };
    let a = mk(fast, 1_000, 500); // 1 500 collected
    let b = mk(slow, 8_000, 500); // 8 500 collected
    let merged = EngineReport::merge_devices(&[a.clone(), b.clone()]);

    assert_eq!(merged.samples_collected, 10_000, "fetched+inherited summed");
    assert_eq!(merged.estimate.samples, 9_000);
    assert_eq!(merged.per_device_modeled_ms.len(), 2);
    assert_eq!(
        merged.modeled_ms,
        a.modeled_ms.max(b.modeled_ms),
        "modeled time is the device makespan"
    );

    // The correct per-sample normalization: makespan over summed samples.
    let expected = merged.modeled_ms * 10_000.0 / merged.samples_collected as f64;
    assert!((merged.modeled_ms_for_samples(10_000) - expected).abs() < 1e-12);
    // And it must differ from the naive average of per-part normalizations
    // (the bug this API exists to prevent).
    let naive = (a.modeled_ms_for_samples(10_000) + b.modeled_ms_for_samples(10_000)) / 2.0;
    assert!(
        (merged.modeled_ms_for_samples(10_000) - naive).abs() > 1e-6,
        "fixture must distinguish sum-then-normalize from averaging"
    );
}

#[test]
fn merge_devices_handles_empty_reports() {
    let rep = EngineReport {
        estimate: Estimate::default(),
        samples_collected: 0,
        counters: KernelCounters::default(),
        modeled_ms: 0.5,
        per_device_modeled_ms: vec![0.5],
        wall_ms: 0.1,
        sanitizer: None,
        prof: None,
    };
    let merged = EngineReport::merge_devices(&[rep]);
    assert_eq!(merged.samples_collected, 0);
    // Zero collected samples: normalization falls back to the raw makespan.
    assert_eq!(merged.modeled_ms_for_samples(1_000), 0.5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharded_budgets_sum_to_total(
        samples in 0u64..1_000_000,
        num_blocks in 1usize..64,
        devices in 1usize..5,
        streams in 1usize..5,
    ) {
        let specs = gsword_engine::plan_shards(num_blocks, devices, streams, samples, 7);
        let total: u64 = specs.iter().map(|s| s.samples).sum();
        prop_assert_eq!(total, samples, "shard budgets must sum to the request");
        let blocks: usize = specs.iter().map(|s| s.blocks.len()).sum();
        prop_assert_eq!(blocks, num_blocks, "shards must cover the grid");
    }

    #[test]
    fn split_budget_is_exact_and_balanced(total in 0u64..10_000_000, parts in 1usize..512) {
        let shares = split_budget(total, parts);
        prop_assert_eq!(shares.len(), parts);
        prop_assert_eq!(shares.iter().sum::<u64>(), total);
        let lo = *shares.iter().min().unwrap();
        let hi = *shares.iter().max().unwrap();
        prop_assert!(hi - lo <= 1, "shares differ by at most one: {lo}..{hi}");
    }
}
