//! Boundary and failure-injection tests across the stack: degenerate
//! queries, absent labels, pathological pipeline configurations.

use gsword::prelude::*;

fn small_device() -> DeviceConfig {
    DeviceConfig {
        num_blocks: 1,
        threads_per_block: 32,
        host_threads: 1,
    }
}

#[test]
fn single_vertex_query_counts_label_occurrences() {
    // The smallest legal query: one labeled vertex, no edges. Every
    // backend must return exactly the label-class size (the sample space
    // is the global candidate set and every sample is valid).
    let data = gsword::datasets::dataset("yeast");
    let label = 3;
    let query = QueryGraph::new(vec![label], &[]).expect("single vertex is connected");
    let expected = data.vertices_with_label(label).len() as f64;
    for backend in [
        Backend::Cpu { threads: 1 },
        Backend::Gsword,
        Backend::GpuBaseline,
    ] {
        let r = Gsword::builder(&data, &query)
            .samples(2_000)
            .backend(backend)
            .device(small_device())
            .run()
            .expect("run");
        assert_eq!(r.estimate, expected, "{backend:?}");
        assert_eq!(r.sampler.success_ratio(), 1.0, "{backend:?}");
    }
    assert_eq!(exact_count(&data, &query, 0, 1), Some(expected as u64));
}

#[test]
fn absent_label_yields_exact_zero() {
    // A query label that does not occur: the candidate graph is empty,
    // every sample dies at the root, and the estimate is exactly 0.
    let data = gsword::datasets::dataset("yeast");
    let absent = data.label_count() as Label; // one past the max used label
    let query = QueryGraph::new(vec![absent, absent], &[(0, 1)]).expect("edge query");
    let r = Gsword::builder(&data, &query)
        .samples(1_000)
        .device(small_device())
        .run()
        .expect("run");
    assert_eq!(r.estimate, 0.0);
    assert_eq!(r.sampler.valid, 0);
    assert_eq!(exact_count(&data, &query, 0, 1), Some(0));
}

#[test]
fn impossible_structure_yields_zero_everywhere() {
    // A 5-clique on a triangle-only graph: candidates exist but no
    // instance does. Estimators must converge to 0, enumeration to 0, and
    // trawling must not invent mass.
    let mut b = GraphBuilder::with_vertices(3);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(0, 2);
    let data = b.build().unwrap();
    let query = gsword::query::motifs::clique(&[0; 5]);
    let r = Gsword::builder(&data, &query)
        .samples(5_000)
        .device(small_device())
        .trawling(TrawlConfig {
            batches: 2,
            cpu_threads: 1,
            per_batch: 8,
            ..TrawlConfig::default()
        })
        .run()
        .expect("run");
    assert_eq!(r.estimate, 0.0);
    assert_eq!(exact_count(&data, &query, 0, 1), Some(0));
}

#[test]
fn max_size_query_is_accepted_and_larger_rejected() {
    let ring32: Vec<(u8, u8)> = (0..32u8).map(|i| (i, (i + 1) % 32)).collect();
    assert!(QueryGraph::new(vec![0; 32], &ring32).is_some());
    let ring33: Vec<(u8, u8)> = (0..33u8).map(|i| (i, (i + 1) % 33)).collect();
    assert!(QueryGraph::new(vec![0; 33], &ring33).is_none());
}

#[test]
fn pipeline_survives_pathological_configs() {
    let data = gsword::datasets::dataset("yeast");
    let query = QueryGraph::extract(&data, 4, 3).expect("query");
    // Zero trawl samples per batch: pure sampling through the pipeline.
    let r = Gsword::builder(&data, &query)
        .samples(2_000)
        .device(small_device())
        .trawling(TrawlConfig {
            batches: 4,
            cpu_threads: 1,
            per_batch: 0,
            ..TrawlConfig::default()
        })
        .run()
        .expect("run");
    assert!(r.trawl.is_none());
    assert!(r.estimate.is_finite());

    // More batches than samples.
    let r = Gsword::builder(&data, &query)
        .samples(3)
        .device(small_device())
        .trawling(TrawlConfig {
            batches: 10,
            cpu_threads: 1,
            per_batch: 2,
            ..TrawlConfig::default()
        })
        .run()
        .expect("run");
    assert!(r.sampler.samples >= 3, "every batch samples at least once");
}

#[test]
fn trawl_node_budget_drops_heavy_tasks() {
    // With a 1-node budget, only trivially-failing prefixes complete; the
    // pipeline must degrade to (near-)pure sampling, not hang or panic.
    let data = gsword::datasets::dataset("yeast");
    let query = QueryGraph::extract(&data, 6, 9).expect("query");
    let r = Gsword::builder(&data, &query)
        .samples(2_000)
        .device(small_device())
        .trawling(TrawlConfig {
            batches: 2,
            cpu_threads: 1,
            per_batch: 16,
            node_budget: 1,
            ..TrawlConfig::default()
        })
        .run()
        .expect("run");
    assert!(r.estimate.is_finite());
}

#[test]
fn disconnected_data_graph_is_handled() {
    // Two components; queries extracted in one must not see the other.
    let mut b = GraphBuilder::with_vertices(6);
    for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
        b.add_edge(u, v);
    }
    let data = b.build().unwrap();
    let query = gsword::query::motifs::triangle(0);
    let r = Gsword::builder(&data, &query)
        .samples(20_000)
        .device(small_device())
        .run()
        .expect("run");
    // 2 triangles × 6 automorphism-order embeddings.
    assert_eq!(exact_count(&data, &query, 0, 1), Some(12));
    assert!((r.estimate - 12.0).abs() < 2.0, "estimate {}", r.estimate);
}
