//! Property tests for the degree-adaptive intersection engine: every
//! strategy (merge, gallop, bitmap) and the k-way path must agree with a
//! naive `Vec::retain` reference on random sorted inputs, across skew
//! ratios spanning the 8× merge/gallop cutover.

use gsword_graph::intersect::{self, BitmapIndex, GALLOP_RATIO};
use gsword_graph::VertexId;
use proptest::prelude::*;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Deterministic sorted deduped vector of at most `max_len` elements drawn
/// from `0..max_val`.
fn mk_sorted(seed: &mut u64, max_len: usize, max_val: u32) -> Vec<VertexId> {
    let len = (xorshift(seed) as usize) % (max_len + 1);
    let mut v: Vec<VertexId> = (0..len)
        .map(|_| (xorshift(seed) % u64::from(max_val)) as VertexId)
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// The reference semantics: `a ∩ b` via `Vec::retain` + linear `contains`.
fn naive(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = a.to_vec();
    out.retain(|v| b.contains(v));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Similar sizes land on the merge side of the cutover; heavy skew in
    // either direction lands on the gallop side. `a` up to 200 elements
    // against `b` up to 25 covers ratios from 1× through far past 8×.
    #[test]
    fn every_pairwise_strategy_matches_naive(seed in any::<u64>()) {
        let mut s = seed | 1;
        let a = mk_sorted(&mut s, 200, 400);
        let b = mk_sorted(&mut s, 25, 400);
        let want = naive(&a, &b);

        let mut merged = Vec::new();
        intersect::merge_into(&a, &b, &mut merged);
        prop_assert_eq!(&merged, &want, "merge");

        let mut galloped = Vec::new();
        intersect::gallop_into(&a, &b, &mut galloped);
        prop_assert_eq!(&galloped, &want, "gallop a→b");
        galloped.clear();
        intersect::gallop_into(&b, &a, &mut galloped);
        prop_assert_eq!(&galloped, &want, "gallop b→a");

        let mut adaptive = Vec::new();
        intersect::intersect_into(&a, &b, &mut adaptive);
        prop_assert_eq!(
            &adaptive,
            &want,
            "adaptive picked {:?}",
            intersect::strategy_for(a.len(), b.len())
        );

        let mut idx = BitmapIndex::new();
        idx.build(&b);
        let mut bitmapped = Vec::new();
        idx.intersect_into(&a, &mut bitmapped);
        prop_assert_eq!(&bitmapped, &want, "bitmap");
    }

    // One reused index must behave exactly like a fresh build per pivot.
    #[test]
    fn bitmap_index_reuse_matches_fresh_builds(seed in any::<u64>(), rebuilds in 1usize..5) {
        let mut s = seed | 1;
        let probe = mk_sorted(&mut s, 120, 1_000);
        let mut reused = BitmapIndex::new();
        for _ in 0..rebuilds {
            let pivot = mk_sorted(&mut s, 80, 1_000);
            reused.build(&pivot);
            let mut out = Vec::new();
            reused.intersect_into(&probe, &mut out);
            prop_assert_eq!(out, naive(&probe, &pivot));
            for &v in &probe {
                prop_assert_eq!(reused.contains(v), pivot.contains(&v), "v={}", v);
            }
        }
    }

    #[test]
    fn kway_matches_naive_fold(seed in any::<u64>(), k in 1usize..6) {
        let mut s = seed | 1;
        let sets: Vec<Vec<VertexId>> = (0..k).map(|_| mk_sorted(&mut s, 80, 120)).collect();
        let refs: Vec<&[VertexId]> = sets.iter().map(|v| v.as_slice()).collect();
        let mut got = Vec::new();
        intersect::intersect_multi_into(&refs, &mut got);
        let want = sets[1..]
            .iter()
            .fold(sets[0].clone(), |acc, set| naive(&acc, set));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn filter_by_all_matches_member_filter(seed in any::<u64>(), k in 0usize..5) {
        let mut s = seed | 1;
        let base = mk_sorted(&mut s, 150, 300);
        let probes: Vec<Vec<VertexId>> = (0..k).map(|_| mk_sorted(&mut s, 150, 300)).collect();
        let refs: Vec<&[VertexId]> = probes.iter().map(|v| v.as_slice()).collect();
        let mut got = Vec::new();
        intersect::filter_by_all_into(&base, &refs, &mut got);
        let want: Vec<VertexId> = base
            .iter()
            .copied()
            .filter(|&v| refs.iter().all(|set| intersect::member(set, v)))
            .collect();
        prop_assert_eq!(got, want);
    }

    // The kernels' monotone probe pattern: ascending queries against a
    // persistent cursor must report exactly binary-search membership, and
    // every recorded probe offset must be in bounds.
    #[test]
    fn gallop_cursor_agrees_with_binary_search_on_ascending_queries(seed in any::<u64>()) {
        let mut s = seed | 1;
        let set = mk_sorted(&mut s, 120, 500);
        let queries = mk_sorted(&mut s, 60, 500);
        let mut cursor = 0usize;
        for &v in &queries {
            let mut probes = Vec::new();
            let got = intersect::gallop_member_probes(&set, &mut cursor, v, |p| probes.push(p));
            prop_assert_eq!(got, set.binary_search(&v).is_ok(), "v={}", v);
            prop_assert!(probes.iter().all(|&p| p < set.len()));
            prop_assert!(cursor <= set.len());
        }
    }
}

#[test]
fn cutover_boundary_is_exact() {
    use intersect::{strategy_for, Strategy};
    // The documented heuristic: gallop kicks in strictly past 8× skew.
    assert_eq!(GALLOP_RATIO, 8);
    for small in [1usize, 3, 10] {
        assert_eq!(strategy_for(small, small * GALLOP_RATIO), Strategy::Merge);
        assert_eq!(
            strategy_for(small, small * GALLOP_RATIO + 1),
            Strategy::Gallop
        );
        // Symmetric in operand order.
        assert_eq!(strategy_for(small * GALLOP_RATIO, small), Strategy::Merge);
        assert_eq!(
            strategy_for(small * GALLOP_RATIO + 1, small),
            Strategy::Gallop
        );
    }

    // Both sides of the boundary still produce identical output.
    let small: Vec<VertexId> = (0..8).map(|i| i * 13).collect();
    for large_len in [64u32, 65] {
        let large: Vec<VertexId> = (0..large_len).collect();
        let mut out = Vec::new();
        intersect::intersect_into(&small, &large, &mut out);
        let mut want = small.clone();
        want.retain(|v| large.contains(v));
        assert_eq!(out, want, "large_len={large_len}");
    }
}
