//! Property-based tests on the core data structures and estimator
//! invariants, using random graphs and queries.

use gsword::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Random small labeled graph strategy: (n, edge pairs, labels).
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (4usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let labels = gsword::graph::gen::zipf_labels(n, 4, 0.8, seed);
        gsword::graph::gen::erdos_renyi(n, n * 3, labels, seed ^ 0xE)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_adjacency_is_symmetric_and_sorted(g in graph_strategy()) {
        for u in 0..g.num_vertices() as VertexId {
            let nbrs = g.neighbors(u);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
            for &v in nbrs {
                prop_assert!(g.has_edge(v, u));
            }
        }
        let degree_sum: usize = (0..g.num_vertices() as VertexId).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn graph_io_round_trips(g in graph_strategy()) {
        let mut buf = Vec::new();
        gsword::graph::io::write_graph(&g, &mut buf).unwrap();
        let g2 = gsword::graph::io::read_graph(&buf[..]).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn candidate_graph_is_sound(g in graph_strategy(), qseed in any::<u64>()) {
        // Every embedding found by the naive oracle must be representable
        // in the candidate graph.
        let Some(q) = QueryGraph::extract(&g, 3, qseed) else { return Ok(()); };
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        cg.validate_invariants().map_err(TestCaseError::fail)?;
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let exact = count_instances(&ctx, EnumLimits::unlimited()).count;
        let naive = gsword::enumeration::naive::count_embeddings(&g, &q);
        prop_assert_eq!(exact, naive, "candidate-graph enumeration vs naive oracle");
    }

    #[test]
    fn matching_orders_have_connected_prefixes(g in graph_strategy(), qseed in any::<u64>()) {
        let Some(q) = QueryGraph::extract(&g, 4, qseed) else { return Ok(()); };
        for kind in [OrderKind::QuickSi, OrderKind::GCare] {
            let order = gsword::query::make_order(kind, &q, &g);
            prop_assert_eq!(order.len(), q.num_vertices());
            for i in 1..order.len() {
                prop_assert!(!order.backward_positions(i).is_empty(), "{:?} position {}", kind, i);
            }
            // The backward table must agree with the query's edges.
            for i in 0..order.len() {
                for &j in order.backward_positions(i) {
                    prop_assert!(q.has_edge(order.vertex_at(j as usize), order.vertex_at(i)));
                }
            }
        }
    }

    #[test]
    fn cpu_estimators_are_unbiased(g in graph_strategy(), qseed in any::<u64>()) {
        let Some(q) = QueryGraph::extract(&g, 3, qseed) else { return Ok(()); };
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let truth = count_instances(&ctx, EnumLimits::unlimited()).count as f64;
        for kind in [EstimatorKind::WanderJoin, EstimatorKind::Alley] {
            let est = gsword::estimators::with_estimator(kind, |e| {
                gsword::estimators::run_sequential(&ctx, e, 30_000, qseed ^ 0x5A).estimate
            });
            // Generous tolerance: 30k samples on tiny graphs.
            let err = (est.value() - truth).abs();
            let tol = (truth * 0.35).max(3.0);
            prop_assert!(err <= tol, "{:?}: {} vs {}", kind, est.value(), truth);
        }
    }

    #[test]
    fn trawling_is_unbiased_for_any_depth_distribution(
        g in graph_strategy(),
        qseed in any::<u64>(),
        min_depth in 1usize..4,
    ) {
        let Some(q) = QueryGraph::extract(&g, 4, qseed) else { return Ok(()); };
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let truth = count_instances(&ctx, EnumLimits::unlimited()).count as f64;
        let dist = DepthDist::new(min_depth, ctx.len());
        let mut rng = SmallRng::seed_from_u64(qseed);
        let n = 3_000;
        let mean: f64 = (0..n)
            .map(|_| gsword::pipeline::trawl_once(&ctx, &Alley, &dist, &mut rng))
            .sum::<f64>() / n as f64;
        let tol = (truth * 0.4).max(3.0);
        prop_assert!((mean - truth).abs() <= tol, "trawl mean {} vs truth {}", mean, truth);
    }

    #[test]
    fn q_error_properties(est in 0.0f64..1e9, truth in 0.0f64..1e9) {
        let q = q_error(est, truth);
        prop_assert!(q >= 1.0);
        prop_assert!((q_error(truth, est) - q).abs() < 1e-9, "symmetric");
        let s = signed_q_error(est, truth);
        prop_assert!((s.abs() - q).abs() < 1e-9);
    }

    #[test]
    fn depth_dist_stays_in_support(min_depth in 1usize..6, qlen in 1usize..16, seed in any::<u64>()) {
        let dist = DepthDist::new(min_depth, qlen);
        let lo = min_depth.min(qlen).max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..64 {
            let d = dist.sample(&mut rng);
            prop_assert!(d >= lo && d <= qlen);
        }
    }
}
