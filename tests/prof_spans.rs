//! Property tests for the profiler's timeline invariants.
//!
//! Whatever work lands on whatever topology, a live profile must be
//! well-formed: every span ends at or after its start, spans on one
//! stream track never overlap (stream jobs are serialized by
//! construction), and the per-device makespan bookkeeping agrees with the
//! span data. `ProfReport::validate` checks exactly these; here random
//! workloads on random topologies up to 4×4 exercise it, and corrupted
//! reports prove it actually rejects.

use gsword::prelude::*;
use gsword::simt::Sanitizer;
use proptest::prelude::*;

fn tiny_grid() -> DeviceConfig {
    DeviceConfig {
        num_blocks: 2,
        threads_per_block: 32,
        host_threads: 1,
    }
}

/// Expand a generated seed into a job list (the vendored proptest has no
/// collection strategies; a derived stream keeps cases replayable).
fn jobs_from(seed: u64, n: usize) -> Vec<(usize, usize, usize)> {
    let mut rng = proptest::TestRng::new(seed);
    (0..n)
        .map(|_| {
            let w = rng.next_u64();
            (
                (w & 0xF) as usize,
                ((w >> 4) & 0xF) as usize,
                ((w >> 8) % 3) as usize,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random launches + host spans on a random topology ⇒ valid report.
    #[test]
    fn live_profiles_are_well_formed(
        devices in 1usize..5,
        streams in 1usize..5,
        njobs in 0usize..24,
        jobs_seed in any::<u64>(),
        host_phases in 0usize..4,
    ) {
        let jobs = jobs_from(jobs_seed, njobs);
        let rt = Runtime::with_instrumentation(
            RuntimeConfig {
                num_devices: devices,
                streams_per_device: streams,
                device: tiny_grid(),
                sim_workers: 1,
            },
            |_| Sanitizer::off(),
            Profiler::new(devices, streams),
        );
        rt.scope(|rs| {
            let names = ["wj", "alley", "baseline"];
            let handles: Vec<_> = jobs
                .iter()
                .map(|&(d, s, n)| {
                    rs.launch_named(d % devices, s % streams, 0..2, names[n], move |b| b + n)
                })
                .collect();
            for h in handles {
                h.wait();
            }
        });
        for p in 0..host_phases {
            let start = rt.profiler().now_us();
            rt.profiler().record_span(
                Track::Host,
                SpanKind::Phase,
                &format!("phase {p}"),
                start,
            );
        }
        let report = rt.profiler().report();
        report.validate().map_err(TestCaseError::fail)?;
        prop_assert_eq!(report.num_devices as usize, devices);
        prop_assert_eq!(report.streams_per_device as usize, streams);
        prop_assert_eq!(report.spans.len(), jobs.len() + host_phases);
        // Deterministic ordering: sorted by (track, start, end, ...).
        for w in report.spans.windows(2) {
            prop_assert!(
                (w[0].track, w[0].start_us, w[0].end_us)
                    <= (w[1].track, w[1].start_us, w[1].end_us)
            );
        }
        // The Chrome export of any valid report must parse and declare
        // every device×stream track.
        let summary = gsword::simt::prof::json::validate_chrome_trace(
            &report.to_chrome_trace(),
        )
        .map_err(TestCaseError::fail)?;
        prop_assert_eq!(summary.stream_tracks, devices * streams);
        prop_assert!(summary.host_track);
        prop_assert_eq!(summary.complete_events, report.spans.len());
    }

    /// Synthetic serialized spans on random tracks ⇒ valid; corrupting the
    /// result (inverted interval, stream overlap, makespan drift) ⇒ invalid.
    #[test]
    fn validate_rejects_corrupted_reports(
        devices in 1usize..5,
        streams in 1usize..5,
        nspans in 1usize..20,
        spans_seed in any::<u64>(),
    ) {
        let p = Profiler::new(devices, streams);
        let mut rng = proptest::TestRng::new(spans_seed);
        let mut cursor = vec![0u64; devices * streams];
        for _ in 0..nspans {
            let w = rng.next_u64();
            let (d, s) = ((w & 0xF) as usize % devices, ((w >> 4) & 0xF) as usize % streams);
            let len = 1 + ((w >> 8) % 50);
            let gap = (w >> 16) % 10;
            let slot = d * streams + s;
            let start = cursor[slot] + gap;
            p.record_span_at(
                Track::Stream { device: d as u32, stream: s as u32 },
                SpanKind::Launch,
                "k",
                start,
                start + len,
            );
            cursor[slot] = start + len;
        }
        let good = p.report();
        good.validate().map_err(TestCaseError::fail)?;

        // Inverted interval.
        let mut bad = good.clone();
        let mut s = bad.spans[0].clone();
        s.start_us = s.end_us + 1;
        bad.spans[0] = s;
        prop_assert!(bad.validate().is_err());

        // Overlapping clone of an existing stream span (widened so zero-
        // length spans still collide).
        let mut bad = good.clone();
        let mut dup = bad.spans[0].clone();
        dup.end_us += 2;
        dup.name = "overlap".into();
        bad.spans.push(dup);
        prop_assert!(bad.validate().is_err());

        // Makespan bookkeeping drift.
        let mut bad = good.clone();
        let d = match bad.spans[0].track {
            Track::Stream { device, .. } => device as usize,
            Track::Host | Track::Worker { .. } => {
                unreachable!("only stream spans recorded")
            }
        };
        bad.device_makespan_us[d] += 1;
        prop_assert!(bad.validate().is_err());
    }
}
