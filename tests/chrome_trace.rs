//! Golden snapshot of the Chrome `chrome://tracing` export.
//!
//! The export is deterministic by construction (sorted spans, fixed
//! metadata order, integer microseconds), so a byte-for-byte snapshot is
//! the right test: any formatting drift — which would silently break
//! saved traces or downstream tooling — shows up as a diff against
//! `tests/fixtures/chrome_trace_2x2.json`.
//!
//! Regenerate after an intentional format change with
//! `GSWORD_REGEN_FIXTURES=1 cargo test --test chrome_trace` and review the
//! fixture diff like any other code change.

use gsword::prelude::*;
use gsword::simt::prof::json::validate_chrome_trace;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/chrome_trace_2x2.json"
);

/// A fixed 2-device × 2-stream report with launches on every stream
/// track, host wait/phase spans, and a name that needs JSON escaping.
fn golden_report() -> ProfReport {
    let launch = |device, stream, name: &str, start_us, end_us| Span {
        track: Track::Stream { device, stream },
        kind: SpanKind::Launch,
        name: name.into(),
        start_us,
        end_us,
    };
    let host = |kind, name: &str, start_us, end_us| Span {
        track: Track::Host,
        kind,
        name: name.into(),
        start_us,
        end_us,
    };
    ProfReport {
        num_devices: 2,
        streams_per_device: 2,
        spans: vec![
            launch(0, 0, "wj_sample", 0, 120),
            launch(0, 0, "wj_sample", 130, 260),
            launch(0, 1, "alley_sample", 10, 180),
            launch(1, 0, "wj_sample", 5, 140),
            launch(1, 1, "alley_sample", 20, 210),
            host(SpanKind::EventWait, "wait wj_sample", 0, 270),
            host(SpanKind::Phase, "batch \"0\"", 270, 300),
        ],
        device_makespan_us: vec![260, 210],
        ..ProfReport::default()
    }
}

#[test]
fn golden_trace_matches_fixture() {
    let report = golden_report();
    report.validate().expect("golden report must be valid");
    let json = report.to_chrome_trace();
    if std::env::var_os("GSWORD_REGEN_FIXTURES").is_some() {
        std::fs::write(FIXTURE, &json).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("missing fixture — run GSWORD_REGEN_FIXTURES=1 cargo test --test chrome_trace");
    assert_eq!(
        json, want,
        "chrome trace export drifted from tests/fixtures/chrome_trace_2x2.json; \
         if intentional, regenerate with GSWORD_REGEN_FIXTURES=1"
    );
}

/// The fixture itself must be a valid trace declaring one track per
/// device×stream plus the host track.
#[test]
fn golden_fixture_is_a_valid_trace() {
    let json = std::fs::read_to_string(FIXTURE).expect("fixture present");
    let summary = validate_chrome_trace(&json).expect("fixture parses");
    assert_eq!(summary.stream_tracks, 4, "one track per device×stream");
    assert!(summary.host_track);
    assert_eq!(summary.complete_events, golden_report().spans.len());
}

/// End to end: a real profiled 2×2 engine run exports a trace with one
/// track per device×stream (the acceptance-criterion topology).
#[test]
fn live_two_by_two_run_exports_all_tracks() {
    let data = gsword::graph::gen::erdos_renyi(24, 130, vec![0; 24], 0xD5EA);
    let query = QueryGraph::new(vec![0; 3], &[(0, 1), (1, 2), (0, 2)]).unwrap();
    let r = Gsword::builder(&data, &query)
        .samples(2_000)
        .seed(7)
        .num_devices(2)
        .streams_per_device(2)
        .profile(true)
        .run()
        .expect("profiled run");
    let prof = r.prof.expect("profile report attached");
    prof.validate().expect("live report valid");
    let summary = validate_chrome_trace(&prof.to_chrome_trace()).expect("live trace parses");
    assert_eq!(summary.stream_tracks, 4);
    assert!(summary.host_track);
    assert_eq!(summary.complete_events, prof.spans.len());
}
