//! Property-based tests for the storage-generic graph layer: the packed
//! on-disk image round-trips byte-identically through mmap, and the
//! compressed backend is observationally equivalent to CSR through every
//! `GraphStorage` method.

use gsword::graph::compressed::CompressedGraph;
use gsword::prelude::*;
use proptest::prelude::*;

/// Random small labeled graph strategy spanning the regimes the suite
/// covers: near-uniform, skewed, and near-empty.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..60, 0usize..5, any::<u64>()).prop_map(|(n, density, seed)| {
        let labels = gsword::graph::gen::zipf_labels(n, 5, 0.9, seed);
        gsword::graph::gen::erdos_renyi(n, n * density, labels, seed ^ 0x57)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pack_round_trips_through_mmap_byte_identically(g in graph_strategy(), tag in any::<u32>()) {
        let c = CompressedGraph::from_graph(&g);
        let path = std::env::temp_dir().join(format!(
            "gsword-prop-{}-{tag:08x}.gsw",
            std::process::id()
        ));
        c.save(&path).expect("save packed image");
        let loaded = CompressedGraph::load(&path).expect("load packed image");
        std::fs::remove_file(&path).ok();

        // Image bytes are the canonical representation: the mapped file must
        // be bit-for-bit what was written, and unpacking must restore the
        // original CSR graph exactly.
        prop_assert_eq!(c.as_bytes(), loaded.as_bytes());
        prop_assert_eq!(&loaded.to_csr(), &g);
    }

    #[test]
    fn compressed_backend_is_observationally_equivalent_to_csr(g in graph_strategy()) {
        let c = CompressedGraph::from_graph(&g);
        prop_assert_eq!(GraphStorage::num_vertices(&c), g.num_vertices());
        prop_assert_eq!(GraphStorage::num_edges(&c), g.num_edges());
        prop_assert_eq!(GraphStorage::label_count(&c), g.label_count());

        for v in 0..g.num_vertices() as VertexId {
            prop_assert_eq!(GraphStorage::label(&c, v), g.label(v));
            prop_assert_eq!(GraphStorage::degree(&c, v), g.degree(v));
            prop_assert_eq!(&*GraphStorage::neighbors_ref(&c, v), g.neighbors(v));

            let mut streamed = Vec::new();
            c.for_each_neighbor(v, |w| {
                streamed.push(w);
                true
            });
            prop_assert_eq!(streamed.as_slice(), g.neighbors(v));

            for w in 0..g.num_vertices() as VertexId {
                prop_assert_eq!(GraphStorage::has_edge(&c, v, w), g.has_edge(v, w));
            }

            // Decode-on-the-fly intersection against an arbitrary sorted
            // list must match the CSR intersection engine.
            let other: Vec<VertexId> =
                (0..g.num_vertices() as VertexId).filter(|x| x % 3 != 1).collect();
            let mut via_c = Vec::new();
            c.intersect_neighbors_into(v, &other, &mut via_c);
            let mut via_csr = Vec::new();
            g.intersect_neighbors_into(v, &other, &mut via_csr);
            prop_assert_eq!(via_c, via_csr);
        }

        for l in 0..g.label_count() {
            prop_assert_eq!(
                GraphStorage::vertices_with_label(&c, l as Label),
                g.vertices_with_label(l as Label)
            );
        }
    }

    #[test]
    fn any_graph_backends_agree(g in graph_strategy()) {
        let compressed = AnyGraph::Compressed(CompressedGraph::from_graph(&g));
        let csr = AnyGraph::Csr(g);
        prop_assert_eq!(GraphStats::of(&csr).num_edges, GraphStats::of(&compressed).num_edges);
        prop_assert_eq!(
            GraphStats::of(&csr).max_degree,
            GraphStats::of(&compressed).max_degree
        );
        for v in 0..csr.num_vertices() as VertexId {
            prop_assert_eq!(&*csr.neighbors_ref(v), &*compressed.neighbors_ref(v));
        }
    }
}
