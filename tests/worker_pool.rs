//! The persistent stream worker pool: one parked worker per
//! (device, stream), created lazily and reused across every
//! [`Runtime::scope`] call — including scopes that poison.

use std::collections::HashSet;
use std::sync::Mutex;
use std::thread::ThreadId;

use gsword_simt::{DeviceConfig, Runtime, RuntimeConfig};

fn runtime(devices: usize, streams: usize) -> Runtime {
    Runtime::new(RuntimeConfig {
        num_devices: devices,
        streams_per_device: streams,
        device: DeviceConfig {
            num_blocks: 4,
            threads_per_block: 32,
            host_threads: 1,
        },
        sim_workers: 1,
    })
}

/// Run one scope that submits a job to every (device, stream) and collect
/// the worker thread ids the jobs ran on.
fn worker_ids(rt: &Runtime) -> HashSet<ThreadId> {
    let ids = Mutex::new(Vec::new());
    rt.scope(|rs| {
        for d in 0..rt.num_devices() {
            for s in 0..rt.streams_per_device() {
                let ids = &ids;
                rs.submit(d, s, move || {
                    ids.lock().unwrap().push(std::thread::current().id());
                });
            }
        }
    });
    ids.into_inner().unwrap().into_iter().collect()
}

#[test]
fn workers_are_reused_across_scopes() {
    let rt = runtime(2, 2);
    let main = std::thread::current().id();

    let first = worker_ids(&rt);
    assert_eq!(first.len(), 4, "one dedicated worker per (device, stream)");
    assert!(!first.contains(&main), "jobs run off the submitting thread");

    // Three more scopes: the exact same worker threads serve every one —
    // no per-scope spawning.
    for round in 0..3 {
        assert_eq!(worker_ids(&rt), first, "round {round}");
    }
}

#[test]
fn pool_survives_a_poisoned_scope() {
    let rt = runtime(1, 2);
    let before = worker_ids(&rt);

    // A panicking job poisons its scope (which re-panics on exit) but must
    // not take the worker thread down.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        rt.scope(|rs| {
            rs.submit(0, 0, || panic!("kernel exploded"));
            rs.submit(0, 1, || {});
        });
    }))
    .expect_err("poisoned scope must panic");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| err.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("");
    assert!(
        msg.contains("stream job panicked"),
        "unexpected panic message: {msg:?}"
    );

    // Poisoning is consumed by the failed scope; later scopes start clean
    // and run on the very same workers.
    for round in 0..2 {
        assert_eq!(worker_ids(&rt), before, "round {round} after poison");
    }
}

#[test]
fn ordering_and_results_hold_on_reused_workers() {
    // Ordered-queue semantics must hold on the Nth reuse of a worker, not
    // just the first: same stream → submission order, and launch results
    // still come back in block order.
    let rt = runtime(1, 1);
    for _ in 0..3 {
        let log = Mutex::new(Vec::new());
        let blocks = rt.scope(|rs| {
            for i in 0..6 {
                let log = &log;
                rs.submit(0, 0, move || log.lock().unwrap().push(i));
            }
            rs.launch(0, 0, 0..4, |b| b * 2).wait()
        });
        assert_eq!(log.into_inner().unwrap(), (0..6).collect::<Vec<_>>());
        assert_eq!(blocks, vec![0, 2, 4, 6]);
    }
}
