//! Cross-configuration equivalence and determinism of the device engine:
//! every kernel variant must target the same quantity, and runs must be
//! reproducible bit-for-bit in the seed.

use gsword::prelude::*;

fn small_device() -> DeviceConfig {
    DeviceConfig {
        num_blocks: 2,
        threads_per_block: 64,
        host_threads: 2,
    }
}

fn fixture() -> (Graph, QueryGraph, f64) {
    let data = gsword::datasets::dataset("dblp");
    let query = QueryGraph::extract(&data, 5, 0xD00D).expect("query");
    let truth = exact_count(&data, &query, 400_000_000, 0).expect("exact") as f64;
    (data, query, truth)
}

#[test]
fn every_kernel_variant_is_consistent() {
    let (data, query, truth) = fixture();
    let variants: Vec<(&str, EngineConfig)> = vec![
        ("baseline", EngineConfig::gpu_baseline(60_000)),
        ("o0", EngineConfig::o0(60_000)),
        ("o1", EngineConfig::o1(60_000)),
        ("o2", EngineConfig::o2(60_000)),
        ("itersync", EngineConfig::iteration_sync(60_000)),
    ];
    for (name, cfg) in variants {
        for kind in [EstimatorKind::WanderJoin, EstimatorKind::Alley] {
            let report = Gsword::builder(&data, &query)
                .samples(60_000)
                .estimator(kind)
                .backend(Backend::Device(cfg))
                .device(small_device())
                .seed(0xBEE)
                .run()
                .expect("run");
            if truth > 0.0 {
                assert!(
                    report.q_error(truth) < 2.5,
                    "{name}/{kind:?}: {} vs truth {truth}",
                    report.estimate
                );
            }
        }
    }
}

#[test]
fn engine_is_bitwise_deterministic() {
    let (data, query, _) = fixture();
    let run = || {
        Gsword::builder(&data, &query)
            .samples(8_000)
            .backend(Backend::Gsword)
            .device(DeviceConfig {
                num_blocks: 3,
                threads_per_block: 96,
                host_threads: 3,
            })
            .seed(0xF00)
            .run()
            .expect("run")
    };
    let a = run();
    let b = run();
    assert_eq!(
        a.sampler.weight_sum.to_bits(),
        b.sampler.weight_sum.to_bits()
    );
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.samples_collected, b.samples_collected);
}

#[test]
fn host_thread_count_does_not_change_results() {
    let (data, query, _) = fixture();
    let run = |host_threads| {
        Gsword::builder(&data, &query)
            .samples(8_000)
            .backend(Backend::Gsword)
            .device(DeviceConfig {
                num_blocks: 4,
                threads_per_block: 64,
                host_threads,
            })
            .seed(0xF01)
            .run()
            .expect("run")
    };
    let a = run(1);
    let b = run(4);
    // The functional result may differ only through the block pool's
    // non-deterministic fetch interleaving *within* a block — but warps in
    // a block run sequentially on one host thread, so results must match.
    assert_eq!(
        a.sampler.weight_sum.to_bits(),
        b.sampler.weight_sum.to_bits()
    );
    assert_eq!(a.sampler.samples, b.sampler.samples);
}

#[test]
fn static_and_pool_modes_process_identical_budgets() {
    let (data, query, _) = fixture();
    for samples in [999u64, 10_000, 32 * 64 * 2] {
        for backend in [Backend::Gsword, Backend::GpuBaseline] {
            let r = Gsword::builder(&data, &query)
                .samples(samples)
                .backend(backend)
                .device(small_device())
                .run()
                .expect("run");
            assert_eq!(r.sampler.samples, samples, "{backend:?} budget {samples}");
        }
    }
}

#[test]
fn success_ratio_reporting_matches_regimes() {
    let (data, query, truth) = fixture();
    // Baseline (no inheritance): success ratio is leaves/fetched < 1.
    let base = Gsword::builder(&data, &query)
        .samples(20_000)
        .backend(Backend::GpuBaseline)
        .device(small_device())
        .run()
        .expect("run");
    if truth > 0.0 {
        assert!(base.sampler.success_ratio() > 0.0);
    }
    assert!(base.sampler.success_ratio() <= 1.0);
    // gSWORD (inheritance): dead lanes are recycled, so nearly every
    // fetched sample tree reaches a leaf.
    let full = Gsword::builder(&data, &query)
        .samples(20_000)
        .backend(Backend::Gsword)
        .device(small_device())
        .run()
        .expect("run");
    assert!(full.sampler.success_ratio() >= base.sampler.success_ratio());
}
