//! Integration tests for the sanitizer — the compute-sanitizer analogue.
//!
//! Two directions, mirroring how the real tool is validated:
//!  * *injected bugs are caught*: a deliberately divergent `shfl`, an
//!    unsynchronized same-address write/write pair, and a read of a
//!    never-written registered word each produce the expected violation;
//!  * *correct code runs clean*: every engine preset (baseline, O0, O1,
//!    O2/gSWORD, iteration sync × both estimators) completes under
//!    `SanitizerMode::FULL` with zero findings.

use gsword_candidate::{build_candidate_graph, BuildConfig};
use gsword_engine::{run_engine, EngineConfig};
use gsword_estimators::{Alley, QueryCtx, WanderJoin};
use gsword_graph::GraphBuilder;
use gsword_query::{MatchingOrder, QueryGraph};
use gsword_simt::memory::{warp_load, warp_store, LaneAddr};
use gsword_simt::{
    warp, DeviceConfig, KernelCounters, Lanes, Region, Sanitizer, SanitizerMode, ViolationKind,
    WARP_SIZE,
};

// ---------------------------------------------------------------------------
// synccheck
// ---------------------------------------------------------------------------

/// A lane participates in a `*_sync` primitive while the executor knows it
/// has diverged off — the canonical synccheck hit.
#[test]
fn divergent_shfl_is_caught() {
    let sz = Sanitizer::new(SanitizerMode::FULL, "divergent-shfl");
    let ws = sz.warp(0, 0);
    let mut ctr = KernelCounters::default();
    let vals: Lanes<u64> = [7; WARP_SIZE];

    // The executor has converged only lanes 0..16...
    ws.set_active(0x0000_FFFF);
    // ...but the kernel declares the full mask. On hardware this is UB.
    warp::shfl(&mut ctr, &ws, u32::MAX, &vals, 3);

    let rep = sz.report();
    assert_eq!(rep.count_for("synccheck"), 1, "{rep}");
    assert!(matches!(
        rep.violations[0].kind,
        ViolationKind::SyncMaskMismatch {
            declared: 0xFFFF_FFFF,
            active: 0x0000_FFFF,
            ..
        }
    ));
    assert_eq!(rep.violations[0].kernel, "divergent-shfl");
}

/// `shfl` from a source lane outside the participating mask: the shuffled
/// value is undefined on hardware even though the mask itself is valid.
#[test]
fn shfl_from_inactive_source_is_caught() {
    let sz = Sanitizer::new(SanitizerMode::FULL, "shfl-src");
    let ws = sz.warp(0, 0);
    let mut ctr = KernelCounters::default();
    let vals: Lanes<u64> = [7; WARP_SIZE];

    let mask = 0x0000_00FF; // lanes 0..8 participate
    ws.set_active(mask);
    warp::shfl(&mut ctr, &ws, mask, &vals, 20); // lane 20 is not in the mask

    let rep = sz.report();
    assert_eq!(rep.count_for("synccheck"), 1, "{rep}");
    assert!(matches!(
        rep.violations[0].kind,
        ViolationKind::ShflInvalidSource {
            src: 20,
            mask: 0x0000_00FF
        }
    ));
}

/// Out-of-range source: hardware wraps `src % 32` and the result is still
/// the wrapped lane's value, but synccheck flags the wrap.
#[test]
fn shfl_out_of_range_source_wraps_and_is_flagged() {
    let sz = Sanitizer::new(SanitizerMode::FULL, "shfl-wrap");
    let ws = sz.warp(0, 0);
    let mut ctr = KernelCounters::default();
    let mut vals: Lanes<u64> = [0; WARP_SIZE];
    vals[5] = 99;

    ws.set_active(u32::MAX);
    let got = warp::shfl(&mut ctr, &ws, u32::MAX, &vals, 5 + WARP_SIZE);
    assert_eq!(got, 99, "hardware semantics: srcLane % 32");
    assert_eq!(sz.report().count_for("synccheck"), 1);
}

/// An empty participation mask is degenerate for every `*_sync` primitive.
#[test]
fn empty_mask_sync_op_is_caught() {
    let sz = Sanitizer::new(SanitizerMode::FULL, "empty-mask");
    let ws = sz.warp(0, 0);
    let mut ctr = KernelCounters::default();

    ws.set_active(u32::MAX);
    warp::ballot(&mut ctr, &ws, 0, &[false; WARP_SIZE]);

    let rep = sz.report();
    assert_eq!(rep.count_for("synccheck"), 1, "{rep}");
    assert!(matches!(
        rep.violations[0].kind,
        ViolationKind::SyncEmptyMask { .. }
    ));
}

/// Partial masks that are subsets of the converged lanes are exactly how
/// divergent code is supposed to call the primitives — no findings.
#[test]
fn subset_masks_run_clean() {
    let sz = Sanitizer::new(SanitizerMode::FULL, "subset-mask");
    let ws = sz.warp(0, 0);
    let mut ctr = KernelCounters::default();
    let mut pred = [false; WARP_SIZE];
    pred[2] = true;

    ws.set_active(0x0000_FFFF);
    assert!(warp::any(&mut ctr, &ws, 0x0000_000F, &pred));
    let b = warp::ballot(&mut ctr, &ws, 0x0000_FFFF, &pred);
    assert_eq!(warp::first_lane(b), Some(2));
    assert_eq!(warp::first_lane(0), None, "empty ballot elects no leader");
    warp::reduce_count(&mut ctr, &ws, 0x0000_00FF, &pred);

    assert!(sz.report().is_clean(), "{}", sz.report());
}

// ---------------------------------------------------------------------------
// racecheck
// ---------------------------------------------------------------------------

/// Two warps of one block store to the same Region word with no barrier in
/// between: a write/write hazard.
#[test]
fn injected_write_write_race_is_caught() {
    let sz = Sanitizer::new(SanitizerMode::FULL, "ww-race");
    let w0 = sz.warp(0, 0);
    let w1 = sz.warp(0, 1);
    let mut ctr = KernelCounters::default();

    let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
    addrs[0] = Some((Region::LOCAL, 64));
    warp_store(&mut ctr, &w0, &addrs);
    warp_store(&mut ctr, &w1, &addrs); // same word, different warp, no barrier

    let rep = sz.report();
    assert_eq!(rep.count_for("racecheck"), 1, "{rep}");
    assert!(matches!(
        rep.violations[0].kind,
        ViolationKind::WriteWriteRace {
            addr: 64,
            other_warp: 0,
            ..
        }
    ));
}

/// Read/write from different warps on the same word also races.
#[test]
fn read_write_race_is_caught() {
    let sz = Sanitizer::new(SanitizerMode::FULL, "rw-race");
    let w0 = sz.warp(0, 0);
    let w1 = sz.warp(0, 1);
    let mut ctr = KernelCounters::default();

    let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
    addrs[3] = Some((Region::CAND, 1000));
    warp_load(&mut ctr, &w0, &addrs);
    warp_store(&mut ctr, &w1, &addrs);

    let rep = sz.report();
    assert_eq!(rep.count_for("racecheck"), 1, "{rep}");
    assert!(matches!(
        rep.violations[0].kind,
        ViolationKind::ReadWriteRace { .. }
    ));
}

/// A block barrier between the two writes orders them — no race. And the
/// same address touched by warps of *different blocks* never races (blocks
/// share nothing in this model).
#[test]
fn barriers_and_block_isolation_suppress_races() {
    let sz = Sanitizer::new(SanitizerMode::FULL, "barrier");
    let mut ctr = KernelCounters::default();
    let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
    addrs[0] = Some((Region::LOCAL, 8));

    let w0 = sz.warp(0, 0);
    let w1 = sz.warp(0, 1);
    warp_store(&mut ctr, &w0, &addrs);
    sz.block_barrier(0);
    warp_store(&mut ctr, &w1, &addrs); // ordered by the barrier

    let other_block = sz.warp(1, 0);
    warp_store(&mut ctr, &other_block, &addrs); // different block: no sharing

    assert!(sz.report().is_clean(), "{}", sz.report());
}

// ---------------------------------------------------------------------------
// initcheck
// ---------------------------------------------------------------------------

/// Reading a registered-but-never-written word is flagged once; after a
/// write the same word reads clean.
#[test]
fn uninitialized_region_read_is_caught() {
    let sz = Sanitizer::new(SanitizerMode::FULL, "uninit");
    sz.region_alloc(Region::SCRATCH.space(), 256);
    let ws = sz.warp(0, 0);
    let mut ctr = KernelCounters::default();

    let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
    addrs[0] = Some((Region::SCRATCH, 17));
    warp_load(&mut ctr, &ws, &addrs); // poison read
    warp_store(&mut ctr, &ws, &addrs);
    warp_load(&mut ctr, &ws, &addrs); // now initialized

    let rep = sz.report();
    assert_eq!(rep.count_for("initcheck"), 1, "{rep}");
    assert!(matches!(
        rep.violations[0].kind,
        ViolationKind::UninitRead { addr: 17, .. }
    ));
}

/// Unregistered regions model host-initialized device arrays (the
/// candidate graph is built on the host and copied over) — reads are not
/// poison.
#[test]
fn unregistered_regions_are_host_initialized() {
    let sz = Sanitizer::new(SanitizerMode::FULL, "host-init");
    let ws = sz.warp(0, 0);
    let mut ctr = KernelCounters::default();

    let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
    addrs[0] = Some((Region::GLOBAL, 5));
    warp_load(&mut ctr, &ws, &addrs);

    assert!(sz.report().is_clean(), "{}", sz.report());
}

// ---------------------------------------------------------------------------
// The engine runs clean under the full sanitizer
// ---------------------------------------------------------------------------

fn triangle_ctx() -> (gsword_candidate::CandidateGraph, QueryGraph) {
    let mut b = GraphBuilder::with_vertices(4);
    for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
        b.add_edge(u, v);
    }
    let g = b.build().unwrap();
    let q = QueryGraph::new(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
    let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
    (cg, q)
}

/// Every preset × both estimators: full sanitizer, zero findings, and the
/// estimate is unchanged by sanitizing (the hooks are observers).
#[test]
fn all_engine_presets_run_clean_under_full_sanitizer() {
    let (cg, q) = triangle_ctx();
    let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
    let ctx = QueryCtx::new(&cg, &order);
    let device = DeviceConfig {
        num_blocks: 2,
        threads_per_block: 64,
        host_threads: 2,
    };
    for (name, cfg) in [
        ("baseline", EngineConfig::gpu_baseline(6_000)),
        ("o0", EngineConfig::o0(6_000)),
        ("o1", EngineConfig::o1(6_000)),
        ("o2", EngineConfig::o2(6_000)),
        ("itersync", EngineConfig::iteration_sync(6_000)),
    ] {
        for alley in [false, true] {
            let plain = EngineConfig { device, ..cfg };
            let sanitized = plain.with_sanitize(SanitizerMode::FULL);
            let (p, s) = if alley {
                (
                    run_engine(&ctx, &Alley, &plain),
                    run_engine(&ctx, &Alley, &sanitized),
                )
            } else {
                (
                    run_engine(&ctx, &WanderJoin, &plain),
                    run_engine(&ctx, &WanderJoin, &sanitized),
                )
            };
            let rep = s.sanitizer.as_ref().unwrap_or_else(|| {
                panic!("{name}/alley={alley}: sanitized run must carry a report")
            });
            assert!(rep.is_clean(), "{name}/alley={alley}:\n{rep}");
            assert!(
                p.sanitizer.is_none(),
                "unsanitized run must not pay for a report"
            );
            assert_eq!(
                p.estimate.weight_sum, s.estimate.weight_sum,
                "{name}/alley={alley}: sanitizing must not perturb the estimate"
            );
            assert_eq!(
                p.counters, s.counters,
                "{name}/alley={alley}: sanitizing must not perturb the counters"
            );
        }
    }
}

/// The sanitizer names the kernel it checked after the configured
/// discipline and optimizations.
#[test]
fn report_names_the_kernel() {
    let (cg, q) = triangle_ctx();
    let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
    let ctx = QueryCtx::new(&cg, &order);
    let cfg = EngineConfig {
        device: DeviceConfig {
            num_blocks: 1,
            threads_per_block: 32,
            host_threads: 1,
        },
        ..EngineConfig::gsword(500)
    }
    .with_sanitize(SanitizerMode::FULL);
    let rep = run_engine(&ctx, &Alley, &cfg).sanitizer.unwrap();
    assert_eq!(rep.kernel, "rsv_sample-sync+inherit+stream");
}

/// `SanitizerMode::parse` accepts the CLI surface forms.
#[test]
fn mode_parsing_round_trips() {
    assert_eq!(SanitizerMode::parse("full").unwrap(), SanitizerMode::FULL);
    assert_eq!(SanitizerMode::parse("off").unwrap(), SanitizerMode::OFF);
    let sync_only = SanitizerMode::parse("sync").unwrap();
    assert!(sync_only.synccheck && !sync_only.racecheck && !sync_only.initcheck);
    let pair = SanitizerMode::parse("race,init").unwrap();
    assert!(!pair.synccheck && pair.racecheck && pair.initcheck);
    assert!(SanitizerMode::parse("bogus").is_err());
}
