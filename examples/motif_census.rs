//! Motif census: estimate the counts of the classic 3- and 4-vertex motifs
//! (triangle, path, star, square, clique) across several datasets — the
//! graph-kernel / representation-learning workload that motivates subgraph
//! counting in the paper's introduction.
//!
//! ```sh
//! cargo run --release --example motif_census
//! ```

use gsword::prelude::*;

/// Build an unlabeled motif as a query graph with every vertex carrying the
/// dominant label of the data graph (labels constrain matching; a census on
/// labeled graphs is per-label — we census the largest label class).
fn motif(label: Label, edges: &[(u8, u8)], n: usize) -> QueryGraph {
    QueryGraph::new(vec![label; n], edges).expect("motifs are connected")
}

fn main() {
    type MotifMaker = fn(Label) -> QueryGraph;
    let motifs: [(&str, MotifMaker); 5] = [
        ("triangle", |l| motif(l, &[(0, 1), (1, 2), (0, 2)], 3)),
        ("path-3", |l| motif(l, &[(0, 1), (1, 2)], 3)),
        ("star-4", |l| motif(l, &[(0, 1), (0, 2), (0, 3)], 4)),
        ("square", |l| motif(l, &[(0, 1), (1, 2), (2, 3), (0, 3)], 4)),
        ("clique-4", |l| {
            motif(l, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 4)
        }),
    ];

    for ds in ["yeast", "dblp", "eu2005"] {
        let data = gsword::datasets::dataset(ds);
        // Census the most frequent label class.
        let dominant = (0..data.label_count() as Label)
            .max_by_key(|&l| data.vertices_with_label(l).len())
            .unwrap_or(0);
        println!(
            "\n=== {ds} ({}), label {dominant} x{} ===",
            GraphStats::of(&data),
            data.vertices_with_label(dominant).len()
        );
        println!(
            "{:<10} {:>14} {:>14} {:>8}",
            "motif", "estimate", "exact", "q-error"
        );
        for (name, make) in &motifs {
            let query = make(dominant);
            let report = Gsword::builder(&data, &query)
                .samples(200_000)
                .estimator(EstimatorKind::Alley)
                .seed(7)
                .run()
                .expect("census query runs");
            // Exact check where enumeration is affordable.
            let exact = exact_count(&data, &query, 200_000_000, 0);
            match exact {
                Some(c) => println!(
                    "{name:<10} {:>14.0} {:>14} {:>8.3}",
                    report.estimate,
                    c,
                    report.q_error(c as f64)
                ),
                None => println!(
                    "{name:<10} {:>14.0} {:>14} {:>8}",
                    report.estimate, "(budget)", "-"
                ),
            }
        }
    }
}
