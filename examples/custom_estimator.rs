//! Implementing a custom RW estimator against the RSV abstraction — the
//! extensibility story of Fig. 19: "users can create their custom RW
//! estimators by adjusting the number of elements to be refined,
//! effectively balancing the trade-off between efficiency and accuracy."
//!
//! `HybridK` refines against the first `K` backward constraints (cheap,
//! partial pruning) and defers the remaining checks to Validate — a point
//! between WanderJoin (K = 0) and Alley (K = all).
//!
//! ```sh
//! cargo run --release --example custom_estimator
//! ```

use gsword::prelude::*;

/// Refine against at most `K` backward segments; validate the rest.
struct HybridK<const K: usize>;

impl<const K: usize> Estimator for HybridK<K> {
    fn needs_refine(&self) -> bool {
        K > 0
    }

    fn refine_one(&self, segs: &[Segment<'_>], v: VertexId) -> bool {
        segs.iter()
            .take(K)
            .all(|(seg, _)| seg.binary_search(&v).is_ok())
    }

    fn validate(&self, segs: &[Segment<'_>], s: &SampleState, v: VertexId) -> bool {
        !s.contains(v)
            && segs
                .iter()
                .skip(K)
                .all(|(seg, _)| seg.binary_search(&v).is_ok())
    }

    fn kind(&self) -> EstimatorKind {
        // Reported as Alley-like (it has a refine stage).
        EstimatorKind::Alley
    }
}

fn main() {
    let data = gsword::datasets::dataset("dblp");
    // Pick a query with a non-trivial count so the estimators have
    // something to disagree about.
    let (query, truth) = (0..64u64)
        .filter_map(|s| QueryGraph::extract(&data, 8, 0xAB ^ s))
        // A cyclic query (edges ≥ vertices) gives positions with several
        // backward constraints, where the Refine/Validate split matters.
        .filter(|q| q.num_edges() >= q.num_vertices())
        .find_map(|q| {
            let t = exact_count(&data, &q, 100_000_000, 0)?;
            (t >= 100).then_some((q, Some(t)))
        })
        .expect("dblp hosts countable 8-vertex queries");
    println!(
        "query: {} vertices / {} edges; exact = {:?}",
        query.num_vertices(),
        query.num_edges(),
        truth
    );
    println!(
        "{:<12} {:>14} {:>10} {:>14}",
        "estimator", "estimate", "q-error", "success ratio"
    );

    let run_builtin = |kind: EstimatorKind| {
        Gsword::builder(&data, &query)
            .samples(100_000)
            .estimator(kind)
            .seed(11)
            .run()
            .expect("run")
    };
    let print_row = |name: &str, r: &Report| {
        let q = truth.map_or(f64::NAN, |c| r.q_error(c as f64));
        println!(
            "{name:<12} {:>14.1} {:>10.3} {:>14.2e}",
            r.estimate,
            q,
            r.sampler.success_ratio()
        );
    };

    print_row("WanderJoin", &run_builtin(EstimatorKind::WanderJoin));
    print_row("Alley", &run_builtin(EstimatorKind::Alley));

    // The custom middle points, run through the same device engine.
    let hybrid1 = Gsword::builder(&data, &query)
        .samples(100_000)
        .seed(11)
        .run_custom(&HybridK::<1>)
        .expect("custom estimator runs");
    print_row("Hybrid<1>", &hybrid1);

    let hybrid2 = Gsword::builder(&data, &query)
        .samples(100_000)
        .seed(11)
        .run_custom(&HybridK::<2>)
        .expect("custom estimator runs");
    print_row("Hybrid<2>", &hybrid2);
}
