//! The underestimation rescue: a large query on the WordNet-like dataset
//! where plain RW estimators return (near-)empty estimates, and the
//! trawling co-processing pipeline (Section 5) recovers a usable count.
//!
//! ```sh
//! cargo run --release --example trawling_rescue
//! ```

use gsword::prelude::*;

fn main() {
    let data = gsword::datasets::dataset("wordnet");
    println!("data graph: {}", GraphStats::of(&data));

    // A 16-vertex query whose plain baseline estimate collapses: probe
    // candidates until one shows severe underestimation (the regime the
    // pipeline exists for).
    let query = (0..64u64)
        .filter_map(|s| QueryGraph::extract(&data, 16, 0xBAD5EED ^ s))
        .find(|q| {
            let probe = Gsword::builder(&data, q)
                .samples(20_000)
                .backend(Backend::GpuBaseline)
                .seed(1)
                .run()
                .expect("probe");
            let truth = exact_count(&data, q, 100_000_000, 0);
            matches!(truth, Some(t) if t > 1_000 && probe.q_error(t as f64) > 100.0)
        })
        .expect("wordnet hosts hard 16-vertex queries");
    println!(
        "query: {} vertices, {} edges ({:?})",
        query.num_vertices(),
        query.num_edges(),
        query.class()
    );

    let truth = exact_count(&data, &query, 100_000_000, 0);
    match truth {
        Some(c) => println!("exact count: {c}"),
        None => println!("exact count: enumeration budget exhausted (reporting estimates only)"),
    }

    // Plain sampling: both estimators at the same 20k-sample budget.
    for kind in [EstimatorKind::WanderJoin, EstimatorKind::Alley] {
        let report = Gsword::builder(&data, &query)
            .samples(20_000)
            .estimator(kind)
            .backend(Backend::GpuBaseline)
            .seed(1)
            .run()
            .expect("sampler runs");
        println!(
            "{}-sampling : estimate {:>12.1}, valid samples {}/{} (success ratio {:.2e})",
            kind.short(),
            report.estimate,
            report.sampler.valid,
            report.sampler.samples,
            report.sampler.success_ratio(),
        );
        if let Some(c) = truth {
            println!("             q-error {:.1}", report.q_error(c as f64));
        }
    }

    // Trawling: sample short prefixes, enumerate their completions on the
    // CPU while the device keeps sampling.
    let report = Gsword::builder(&data, &query)
        .samples(20_000)
        .estimator(EstimatorKind::Alley)
        .trawling(TrawlConfig {
            batches: 6,
            per_batch: 128,
            ..TrawlConfig::default()
        })
        .seed(1)
        .run()
        .expect("pipeline runs");
    println!(
        "AL+trawling: estimate {:>12.1} (trawl samples completed: {})",
        report.estimate, report.trawl_completed,
    );
    if let Some(c) = truth {
        println!("             q-error {:.1}", report.q_error(c as f64));
    }
    println!(
        "             total wall {:.0} ms (device sampling modeled {:.2} ms)",
        report.wall_ms,
        report.modeled_ms.unwrap_or(0.0)
    );
}
