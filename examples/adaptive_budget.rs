//! Adaptive sampling: run until the estimate's 95% confidence interval is
//! tight enough, instead of fixing a sample count up front — the
//! "accuracy improves with more samples in a time budget" workflow of
//! Section 3.1, closed into a stopping rule.
//!
//! ```sh
//! cargo run --release --example adaptive_budget
//! ```

use gsword::prelude::*;

fn main() {
    let data = gsword::datasets::dataset("yeast");
    let engine = EngineConfig::gsword(0).with_seed(0xADAB);

    println!(
        "{:<8} {:>12} {:>10} {:>9} {:>10} {:>10}",
        "query", "estimate", "±95% CI", "batches", "samples", "converged"
    );
    for seed in 0..4u64 {
        let Some(query) = QueryGraph::extract(&data, 6, seed) else {
            continue;
        };
        let (cg, _) = build_candidate_graph(&data, &query, &BuildConfig::default());
        let order = quicksi_order(&query, &data);
        let ctx = QueryCtx::new(&cg, &order);
        let report = run_adaptive(
            &ctx,
            &Alley,
            &engine,
            &AdaptiveConfig {
                target_rel_ci: 0.05, // ±5%
                batch: 25_000,
                max_samples: 2_000_000,
                max_wall_ms: 0.0,
            },
        );
        println!(
            "q{seed:<7} {:>12.1} {:>9.1}% {:>9} {:>10} {:>10}",
            report.estimate.value(),
            report.estimate.rel_ci95() * 100.0,
            report.batches,
            report.estimate.samples,
            report.converged,
        );
    }
    // A hard case for contrast: a large query on the WordNet-like graph
    // exhausts its budget instead of converging.
    let wordnet = gsword::datasets::dataset("wordnet");
    if let Some(query) = QueryGraph::extract(&wordnet, 14, 2) {
        let (cg, _) = build_candidate_graph(&wordnet, &query, &BuildConfig::default());
        let order = quicksi_order(&query, &wordnet);
        let ctx = QueryCtx::new(&cg, &order);
        let report = run_adaptive(
            &ctx,
            &Alley,
            &engine,
            &AdaptiveConfig {
                target_rel_ci: 0.05,
                batch: 25_000,
                max_samples: 500_000,
                max_wall_ms: 0.0,
            },
        );
        println!(
            "wordnet-14 {:>11.1} {:>9.1}% {:>9} {:>10} {:>10}",
            report.estimate.value(),
            report.estimate.rel_ci95() * 100.0,
            report.batches,
            report.estimate.samples,
            report.converged,
        );
    }
    println!("\nhard queries exhaust the budget instead of converging — the signal to\nswitch on the trawling pipeline (see examples/trawling_rescue.rs).");
}
