//! Quickstart: estimate a subgraph count on a suite dataset in a few lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gsword::prelude::*;

fn main() {
    // 1. A data graph — one of the eight Table 1 suite datasets.
    let data = gsword::datasets::dataset("yeast");
    println!("data graph: {}", GraphStats::of(&data));

    // 2. A query graph — extracted from the data graph by random walk, the
    //    same workload generator the paper's evaluation uses.
    let query = QueryGraph::extract(&data, 4, 0xC0FFEE).expect("yeast can host 4-vertex queries");
    println!(
        "query: {} vertices, {} edges ({:?})",
        query.num_vertices(),
        query.num_edges(),
        query.class()
    );

    // 3. Ground truth by exact enumeration (cheap for 4-vertex queries).
    let truth = exact_count(&data, &query, 0, 0).expect("enumeration completes") as f64;
    println!("exact count: {truth}");

    // 4. Estimate with full gSWORD (sample inheritance + warp streaming on
    //    the SIMT device), then with the two baselines the paper compares.
    for (name, backend) in [
        ("gSWORD   ", Backend::Gsword),
        ("GPU base ", Backend::GpuBaseline),
        ("CPU (all)", Backend::Cpu { threads: 0 }),
    ] {
        let report = Gsword::builder(&data, &query)
            .samples(100_000)
            .estimator(EstimatorKind::Alley)
            .backend(backend)
            .seed(42)
            .run()
            .expect("run succeeds");
        let extra = match report.modeled_ms {
            Some(ms) => format!(", modeled device time {ms:.2} ms"),
            None => String::new(),
        };
        println!(
            "{name}: estimate {:>10.1}  (q-error {:.3}, wall {:.1} ms{extra})",
            report.estimate,
            report.q_error(truth),
            report.wall_ms,
        );
    }
}
