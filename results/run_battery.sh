#!/bin/bash
cd /root/repo
export GSWORD_QUERIES=3
export GSWORD_SAMPLES=20000
BIN=results/bin
for exp in table01 fig13 fig14 table02 fig12 fig10 fig11 fig05 fig06 fig01 fig15 fig16 fig17 fig18 fig20_25 table03 fig26_28 ext_branching; do
  echo "=== RUNNING $exp at $(date +%H:%M:%S) ==="
  timeout 3000 $BIN/$exp > results/$exp.txt 2>&1
  echo "=== DONE $exp (exit $?) at $(date +%H:%M:%S) ==="
done
echo BATTERY_COMPLETE
