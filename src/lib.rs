//! # gSWORD — GPU-style sampling for subgraph counting (reproduction)
//!
//! Facade crate re-exporting the full public API of the workspace. See the
//! repository README for the architecture overview and `gsword_core` for the
//! high-level builder API.
//!
//! ```
//! use gsword::prelude::*;
//!
//! let data = gsword::datasets::dataset("yeast");
//! let query = QueryGraph::extract(&data, 4, 0xC0FFEE).expect("extractable");
//! let report = Gsword::builder(&data, &query)
//!     .samples(10_000)
//!     .estimator(EstimatorKind::Alley)
//!     .seed(7)
//!     .run()
//!     .expect("runs");
//! assert!(report.estimate.is_finite());
//! ```

pub use gsword_core::*;
