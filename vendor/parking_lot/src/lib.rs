//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (`lock()` returns the guard directly; poisoning is ignored, matching
//! parking_lot's no-poisoning semantics).

use std::sync::{Mutex as StdMutex, MutexGuard as StdGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

pub type MutexGuard<'a, T> = StdGuard<'a, T>;

/// RwLock with parking_lot's non-poisoning signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
