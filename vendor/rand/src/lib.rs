//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the external `rand` dependency is replaced by this
//! API-compatible subset (see `vendor/README.md`). It implements the
//! pieces the workspace uses — `SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range}` — with a xoshiro256++ generator. Streams are
//! deterministic in the seed, which is the only distributional property
//! the reproduction relies on (estimator unbiasedness is over the
//! generator's own measure).

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly over their full domain
/// (`rand::distributions::Standard` equivalent, reduced to what the
/// workspace draws).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; `lo < hi` must hold.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Debiased multiply-shift (Lemire); span is < 2^63 for all
                // call sites in this workspace.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut l = m as u64;
                if l < span {
                    let t = span.wrapping_neg() % span;
                    while l < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        l = m as u64;
                    }
                }
                lo + ((m >> 64) as u64) as $t
            }
        }
    )*};
}

impl_sample_uniform!(usize, u64, u32, u16, u8);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// User-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value of `T` over its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a half-open range; panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++), matching
    /// the role of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zero words from any input, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(3usize..13);
            assert!((3..13).contains(&x));
            seen[x - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values hit in 1000 draws");
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
