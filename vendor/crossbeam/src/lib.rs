//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::scope` / `Scope::spawn` / `ScopedJoinHandle::join`
//! are provided — the surface this workspace uses. Implemented on top of
//! `std::thread::scope`, which gives the same structured-concurrency
//! guarantee (all spawned threads joined before `scope` returns).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    use super::*;

    /// Panic payload of a child thread, as `std` reports it.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Scope handle passed to the `scope` closure and to each spawned
    /// closure (crossbeam passes the scope again so children can spawn
    /// grandchildren).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // Manual impls: derive would (needlessly) bound on the lifetimes' types.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread and return its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope back,
        /// mirroring crossbeam's signature (`|_| ...` at every call site
        /// in this workspace).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope for spawning threads that may borrow from the
    /// enclosing stack frame. Returns `Err` with the panic payload if the
    /// scope closure (or an unjoined child) panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::{scope, Scope, ScopedJoinHandle};

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn spawn_join_collects_results() {
        let next = AtomicUsize::new(0);
        let sums: Vec<usize> = super::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let next = &next;
                    s.spawn(move |_| {
                        let mut sum = 0;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= 100 {
                                break;
                            }
                            sum += i;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums.iter().sum::<usize>(), (0..100).sum());
    }

    #[test]
    fn scope_propagates_child_panic_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("child died"));
        });
        assert!(r.is_err());
    }
}
