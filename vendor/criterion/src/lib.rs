//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace benches use: `benchmark_group`,
//! `sample_size`, `throughput`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! Instead of criterion's statistical analysis it takes a fixed number of
//! timed samples per benchmark and prints median / mean wall time (plus
//! element throughput when configured) — enough to compare hot paths
//! without the external dependency.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{function_id}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.full)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Time the routine; called once per benchmark, loops internally.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One calibration pass so a sample lasts long enough to time.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let target = Duration::from_millis(5);
        self.iters_per_sample = if once.is_zero() {
            1024
        } else {
            (target.as_nanos() / once.as_nanos().max(1)).clamp(1, 1 << 20) as u64
        };
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }
}

/// Group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_count: usize,
}

impl<'c> BenchmarkGroup<'c> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_count,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }

    fn report(&self, id: &str, b: &Bencher) {
        if b.samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mut per_iter: Vec<f64> = b
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let mut line = format!(
            "{}/{id}: median {} · mean {} ({} samples × {} iters)",
            self.name,
            fmt_ns(median),
            fmt_ns(mean),
            per_iter.len(),
            b.iters_per_sample,
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let per_sec = n as f64 * 1e9 / median;
            line.push_str(&format!(" · {:.3e} elem/s", per_sec));
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            let per_sec = n as f64 * 1e9 / median;
            line.push_str(&format!(" · {:.3e} B/s", per_sec));
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Benchmark driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_count: 10,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_n", 128), &128u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
    }
}
