//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(..)]` and `arg in strategy`
//! parameters, `Strategy` + `prop_map`, `any::<T>()`, numeric-range and
//! tuple strategies, `prop_assert!`/`prop_assert_eq!`, and
//! `TestCaseError::fail`. No shrinking: a failing case reports its case
//! index and seed so it can be replayed deterministically.

use std::fmt;

/// Deterministic per-case generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Error raised by `prop_assert!` / returned from test bodies.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// Mark the current case as failed (mirrors `TestCaseError::fail`).
    pub fn fail<E: fmt::Display>(reason: E) -> Self {
        TestCaseError {
            reason: reason.to_string(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.reason)
    }
}

/// Per-test configuration (mirrors `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for a property test.
pub trait Strategy {
    type Value;

    /// Produce one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (mirrors `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "whole domain" strategy (mirrors `Arbitrary`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the full domain of `T` (mirrors `any::<T>()`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                // Modulo bias is irrelevant at test-strategy scale.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Seed for one test case: deterministic in (test name, case index) so
/// failures are replayable without a persistence file.
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Define property tests (mirrors `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default())
            $(#[$meta])* fn $name($($args)*) $body $($rest)*);
    };
    (@tests ($cfg:expr)) => {};
    (@tests ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let seed = $crate::case_seed(stringify!($name), case);
                let mut rng = $crate::TestRng::new(seed);
                let result: ::core::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {}/{} (seed {:#x}) failed: {}",
                        case + 1,
                        config.cases,
                        seed,
                        e
                    );
                }
            }
        }
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
}

/// Assert inside a property test; fails the case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 4usize..40, y in any::<u64>()) {
            prop_assert!((4..40).contains(&x));
            let _ = y;
        }

        #[test]
        fn mapped_strategies_apply(e in even()) {
            if e == u64::MAX { return Ok(()); }
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn tuples_and_floats(pair in (0.0f64..1.0, 1usize..3)) {
            prop_assert!(pair.0 >= 0.0 && pair.0 < 1.0, "f64 {} in range", pair.0);
            prop_assert!(pair.1 == 1 || pair.1 == 2);
        }
    }

    #[test]
    fn case_seeds_are_deterministic_and_distinct() {
        assert_eq!(super::case_seed("a", 3), super::case_seed("a", 3));
        assert_ne!(super::case_seed("a", 3), super::case_seed("a", 4));
        assert_ne!(super::case_seed("a", 3), super::case_seed("b", 3));
    }

    #[test]
    fn failing_case_panics_with_seed() {
        let r = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(dead_code)]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *r.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("seed"), "panic message names the seed: {msg}");
    }
}
