//! Device launch harness and the device-time model.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::counters::KernelCounters;
use gsword_sanitizer::{Sanitizer, WarpSanitizer};

/// Kernel launch geometry plus host execution parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Thread blocks per launch.
    pub num_blocks: usize,
    /// Threads per block; must be a multiple of 32.
    pub threads_per_block: usize,
    /// Host threads used to execute blocks (functional simulation speed
    /// only; does not affect results or modeled time).
    pub host_threads: usize,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig {
            num_blocks: 46,
            threads_per_block: 256,
            host_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl DeviceConfig {
    /// Checked constructor: rejects geometries the SIMT model cannot
    /// execute instead of panicking later inside a launch. The block size
    /// must be a positive multiple of 32 (whole warps only — a ragged
    /// trailing warp would need per-lane predication the lockstep model
    /// deliberately does not have), and the grid must be non-empty.
    /// `host_threads` is clamped to at least 1.
    pub fn checked(
        num_blocks: usize,
        threads_per_block: usize,
        host_threads: usize,
    ) -> Result<Self, ConfigError> {
        if threads_per_block == 0 || !threads_per_block.is_multiple_of(32) {
            return Err(ConfigError::RaggedBlock { threads_per_block });
        }
        if num_blocks == 0 {
            return Err(ConfigError::EmptyGrid);
        }
        Ok(DeviceConfig {
            num_blocks,
            threads_per_block,
            host_threads: host_threads.max(1),
        })
    }

    /// Warps per block.
    pub fn warps_per_block(&self) -> usize {
        debug_assert!(
            self.threads_per_block > 0 && self.threads_per_block.is_multiple_of(32),
            "DeviceConfig bypassed validation: threads_per_block = {} is not a \
             positive multiple of 32 (use DeviceConfig::checked)",
            self.threads_per_block
        );
        self.threads_per_block / 32
    }

    /// Total device threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.num_blocks * self.threads_per_block
    }
}

/// Rejected launch geometry from [`DeviceConfig::checked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `threads_per_block` is zero or not a multiple of 32.
    RaggedBlock { threads_per_block: usize },
    /// `num_blocks` is zero.
    EmptyGrid,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::RaggedBlock { threads_per_block } => write!(
                f,
                "threads_per_block = {threads_per_block} must be a positive multiple of 32"
            ),
            ConfigError::EmptyGrid => write!(f, "num_blocks must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The software device: executes kernels block-parallel on host threads.
#[derive(Debug, Clone, Default)]
pub struct Device {
    /// Launch configuration.
    pub config: DeviceConfig,
    /// Attached checking layer; the default is the disabled (zero-cost)
    /// handle. Kernel bodies obtain per-warp handles via
    /// [`Device::warp_sanitizer`].
    pub sanitizer: Sanitizer,
}

impl Device {
    /// Create a device with the given configuration and no sanitizer.
    pub fn new(config: DeviceConfig) -> Self {
        Device::with_sanitizer(config, Sanitizer::off())
    }

    /// Create a device with a checking layer attached. Every launch on
    /// this device reports into the same sanitizer.
    pub fn with_sanitizer(config: DeviceConfig, sanitizer: Sanitizer) -> Self {
        assert!(
            config.threads_per_block.is_multiple_of(32),
            "block size must be a multiple of 32"
        );
        assert!(config.num_blocks > 0 && config.threads_per_block > 0);
        Device { config, sanitizer }
    }

    /// Per-warp sanitizer handle for kernel bodies (the disabled handle
    /// when no sanitizer is attached).
    pub fn warp_sanitizer(&self, block: usize, warp: usize) -> WarpSanitizer {
        self.sanitizer.warp(block, warp)
    }

    /// Launch a kernel over the full grid: `body(block_id)` runs once per
    /// block, blocks are distributed over host threads, and results are
    /// returned in block order. The body typically returns partial
    /// estimates plus [`KernelCounters`].
    pub fn launch<R, F>(&self, body: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.launch_blocks(0..self.config.num_blocks, body)
    }

    /// Launch a kernel over a sub-range of *global* block ids — the shard
    /// primitive of the device runtime. `body` receives ids from `blocks`
    /// unchanged (not re-based to zero), so a grid split across devices and
    /// streams computes the same per-block work as a whole-grid launch;
    /// results come back in ascending block order.
    pub fn launch_blocks<R, F>(&self, blocks: std::ops::Range<usize>, body: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let base = blocks.start;
        let nb = blocks.len();
        if nb == 0 {
            return Vec::new();
        }
        let mut results: Vec<Option<R>> = (0..nb).map(|_| None).collect();
        let workers = self.config.host_threads.clamp(1, nb);
        if workers == 1 {
            for (b, slot) in results.iter_mut().enumerate() {
                *slot = Some(body(base + b));
            }
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<parking_slot::Slot<R>> =
                (0..nb).map(|_| parking_slot::Slot::new()).collect();
            crossbeam::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= nb {
                            break;
                        }
                        slots[b].put(body(base + b));
                    });
                }
            })
            .expect("kernel block panicked");
            for (slot, out) in slots.into_iter().zip(results.iter_mut()) {
                *out = slot.take();
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("all blocks executed"))
            .collect()
    }
}

/// Minimal one-shot cell so block results can be written from worker
/// threads without locking (each slot written exactly once).
pub(crate) mod parking_slot {
    use std::cell::UnsafeCell;
    use std::sync::atomic::{AtomicBool, Ordering};

    pub struct Slot<T> {
        set: AtomicBool,
        val: UnsafeCell<Option<T>>,
    }

    // SAFETY: `put` is called at most once per slot (unique block ids) and
    // `take` only after all writers joined.
    unsafe impl<T: Send> Sync for Slot<T> {}

    impl<T> Slot<T> {
        pub fn new() -> Self {
            Slot {
                set: AtomicBool::new(false),
                val: UnsafeCell::new(None),
            }
        }

        pub fn put(&self, v: T) {
            // SAFETY: each block id is claimed by exactly one worker, so no
            // concurrent writes to the same slot.
            unsafe { *self.val.get() = Some(v) };
            self.set.store(true, Ordering::Release);
        }

        pub fn take(self) -> Option<T> {
            self.val.into_inner()
        }
    }
}

/// Analytic device-time model converting [`KernelCounters`] into estimated
/// kernel milliseconds on an RTX 2080 Ti-class GPU.
///
/// The model is deliberately simple: the kernel is issue-bound or
/// bandwidth-bound, whichever is worse, plus a fixed launch overhead.
/// Divergence replays consume issue slots. Absolute values are indicative;
/// *ratios* between kernel variants (which share the model) are the
/// reproduction target. See DESIGN.md §1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceModel {
    /// Streaming multiprocessors.
    pub num_sms: u32,
    /// Warp instructions each SM can issue per cycle.
    pub issue_per_sm_per_cycle: f64,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_gbps: f64,
    /// Fixed launch overhead in milliseconds.
    pub launch_overhead_ms: f64,
    /// Average issue cycles per warp instruction (pipeline + dependency
    /// stalls not otherwise modeled).
    pub cycles_per_instruction: f64,
}

impl Default for DeviceModel {
    /// RTX 2080 Ti: 68 SMs, 1.35 GHz, 616 GB/s.
    fn default() -> Self {
        DeviceModel {
            num_sms: 68,
            issue_per_sm_per_cycle: 1.0,
            clock_ghz: 1.35,
            dram_gbps: 616.0,
            launch_overhead_ms: 0.03,
            cycles_per_instruction: 6.0,
        }
    }
}

impl DeviceModel {
    /// Modeled kernel time in milliseconds for the merged counters of one
    /// launch.
    pub fn modeled_ms(&self, c: &KernelCounters) -> f64 {
        let instructions = (c.alu_instructions + c.mem_instructions + c.divergent_replays) as f64;
        let issue_rate_per_ms =
            self.num_sms as f64 * self.issue_per_sm_per_cycle * self.clock_ghz * 1e6
                / self.cycles_per_instruction;
        let compute_ms = instructions / issue_rate_per_ms;
        let bytes = c.mem_transactions as f64 * 128.0;
        let mem_ms = bytes / (self.dram_gbps * 1e6);
        self.launch_overhead_ms + compute_ms.max(mem_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_runs_every_block_once() {
        let dev = Device::new(DeviceConfig {
            num_blocks: 17,
            threads_per_block: 64,
            host_threads: 4,
        });
        let out = dev.launch(|b| b * 2);
        assert_eq!(out, (0..17).map(|b| b * 2).collect::<Vec<_>>());
    }

    #[test]
    fn launch_blocks_passes_global_ids() {
        let dev = Device::new(DeviceConfig {
            num_blocks: 8,
            threads_per_block: 32,
            host_threads: 3,
        });
        assert_eq!(dev.launch_blocks(5..8, |b| b), vec![5, 6, 7]);
        assert_eq!(dev.launch_blocks(2..3, |b| b), vec![2]);
        assert!(dev.launch_blocks(4..4, |b| b).is_empty());
    }

    #[test]
    fn launch_single_threaded_path() {
        let dev = Device::new(DeviceConfig {
            num_blocks: 3,
            threads_per_block: 32,
            host_threads: 1,
        });
        assert_eq!(dev.launch(|b| b), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "multiple of 32")]
    fn rejects_ragged_blocks() {
        Device::new(DeviceConfig {
            num_blocks: 1,
            threads_per_block: 33,
            host_threads: 1,
        });
    }

    #[test]
    fn model_monotonic_in_transactions() {
        let m = DeviceModel::default();
        let mut a = KernelCounters::default();
        let mut b = KernelCounters::default();
        for _ in 0..1000 {
            a.warp_load(32, 2);
            b.warp_load(32, 30);
        }
        assert!(m.modeled_ms(&b) > m.modeled_ms(&a));
    }

    #[test]
    fn model_monotonic_in_instructions() {
        let m = DeviceModel::default();
        let mut a = KernelCounters::default();
        let mut b = KernelCounters::default();
        for _ in 0..10_000 {
            a.warp_instruction(u32::MAX);
            b.warp_instruction(u32::MAX);
            b.warp_instruction(u32::MAX);
        }
        assert!(m.modeled_ms(&b) > m.modeled_ms(&a));
    }

    #[test]
    fn model_includes_launch_overhead() {
        let m = DeviceModel::default();
        let c = KernelCounters::default();
        assert!((m.modeled_ms(&c) - m.launch_overhead_ms).abs() < 1e-12);
    }

    #[test]
    fn checked_rejects_bad_geometry() {
        assert_eq!(
            DeviceConfig::checked(4, 33, 2),
            Err(ConfigError::RaggedBlock {
                threads_per_block: 33
            })
        );
        assert_eq!(
            DeviceConfig::checked(4, 0, 2),
            Err(ConfigError::RaggedBlock {
                threads_per_block: 0
            })
        );
        assert_eq!(DeviceConfig::checked(0, 64, 2), Err(ConfigError::EmptyGrid));
        let err = DeviceConfig::checked(4, 48, 2).unwrap_err();
        assert!(err.to_string().contains("multiple of 32"), "{err}");
    }

    #[test]
    fn checked_accepts_and_clamps() {
        let c = DeviceConfig::checked(4, 128, 0).unwrap();
        assert_eq!(c.num_blocks, 4);
        assert_eq!(c.threads_per_block, 128);
        assert_eq!(c.host_threads, 1, "host_threads clamped to at least 1");
        assert_eq!(c.warps_per_block(), 4);
    }

    #[test]
    fn config_geometry() {
        let c = DeviceConfig {
            num_blocks: 4,
            threads_per_block: 128,
            host_threads: 2,
        };
        assert_eq!(c.warps_per_block(), 4);
        assert_eq!(c.total_threads(), 512);
    }
}
