//! Lockstep lane arrays and warp-level primitives.
//!
//! A warp is 32 lanes executing the same instruction. Kernel code in this
//! workspace is written at warp granularity: per-"instruction" loops over
//! the lane array, with cross-lane communication going through the
//! primitives below (mirroring CUDA's `__any_sync`, `__ballot_sync`,
//! `__shfl_sync`, and cooperative reductions). Each primitive charges the
//! kernel counters like a single warp instruction.
//!
//! Every primitive also reports to a [`WarpSanitizer`] handle. Under
//! `synccheck` the declared participation mask is validated against the
//! lanes the executor actually has converged — divergent participation in
//! a `*_sync` primitive is undefined behaviour on real hardware — and
//! `shfl` flags out-of-range or non-participating source lanes. The
//! disabled handle ([`WarpSanitizer::disabled`]) reduces each hook to one
//! branch.

use crate::counters::KernelCounters;
pub use gsword_sanitizer::WarpSanitizer;

/// Number of lanes per warp (fixed at 32, as on NVIDIA hardware).
pub const WARP_SIZE: usize = 32;

/// One value per lane.
pub type Lanes<T> = [T; WARP_SIZE];

/// Active-lane mask (bit `i` set ⇔ lane `i` participates).
pub type WarpMask = u32;

/// Mask with all 32 lanes active.
pub const FULL_MASK: WarpMask = u32::MAX;

/// `__any_sync`: does any active lane satisfy the predicate?
#[inline]
pub fn any(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    mask: WarpMask,
    pred: &Lanes<bool>,
) -> bool {
    ctr.warp_instruction(mask);
    san.sync_op("any", mask);
    pred.iter()
        .enumerate()
        .any(|(i, &p)| mask & (1 << i) != 0 && p)
}

/// `__ballot_sync`: bitmask of active lanes satisfying the predicate.
#[inline]
pub fn ballot(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    mask: WarpMask,
    pred: &Lanes<bool>,
) -> WarpMask {
    ctr.warp_instruction(mask);
    san.sync_op("ballot", mask);
    let mut out = 0u32;
    for (i, &p) in pred.iter().enumerate() {
        if mask & (1 << i) != 0 && p {
            out |= 1 << i;
        }
    }
    out
}

/// Lowest set lane of a ballot, or `None` for an empty ballot. Used for
/// leader election in Algorithms 2 and 3.
#[inline]
pub fn first_lane(ballot: WarpMask) -> Option<usize> {
    if ballot == 0 {
        None
    } else {
        Some(ballot.trailing_zeros() as usize)
    }
}

/// `__shfl_sync`: every active lane reads lane `src`'s value.
///
/// As on hardware, an out-of-range `src` wraps modulo [`WARP_SIZE`];
/// under `synccheck` the wrap — and any read from a source lane outside
/// the participating mask — is flagged as a violation, because the
/// shuffled value is undefined in those cases.
#[inline]
pub fn shfl<T: Copy>(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    mask: WarpMask,
    vals: &Lanes<T>,
    src: usize,
) -> T {
    ctr.warp_instruction(mask);
    san.sync_op("shfl", mask);
    san.shfl_src(mask, src);
    vals[src % WARP_SIZE]
}

/// Warp-wide sum over active lanes (`__reduce_add_sync` equivalent).
#[inline]
pub fn reduce_sum(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    mask: WarpMask,
    vals: &Lanes<f64>,
) -> f64 {
    ctr.warp_instruction(mask);
    san.sync_op("reduce_sum", mask);
    (0..WARP_SIZE)
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| vals[i])
        .sum()
}

/// Warp-wide count of active lanes satisfying a predicate.
#[inline]
pub fn reduce_count(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    mask: WarpMask,
    pred: &Lanes<bool>,
) -> u32 {
    ctr.warp_instruction(mask);
    san.sync_op("reduce_count", mask);
    (0..WARP_SIZE)
        .filter(|&i| mask & (1 << i) != 0 && pred[i])
        .count() as u32
}

/// Warp-wide argmax by key over active lanes: returns the lane holding the
/// largest key, or `None` if no active lane. Ties break to the lowest lane,
/// which matches a deterministic tree reduction.
#[inline]
pub fn reduce_max_by_key(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    mask: WarpMask,
    keys: &Lanes<f64>,
) -> Option<usize> {
    ctr.warp_instruction(mask);
    san.sync_op("reduce_max_by_key", mask);
    let mut best: Option<usize> = None;
    for i in 0..WARP_SIZE {
        if mask & (1 << i) == 0 {
            continue;
        }
        best = match best {
            None => Some(i),
            Some(b) if keys[i] > keys[b] => Some(i),
            keep => keep,
        };
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctr() -> KernelCounters {
        KernelCounters::default()
    }

    fn san() -> WarpSanitizer {
        WarpSanitizer::disabled()
    }

    #[test]
    fn any_respects_mask() {
        let mut c = ctr();
        let s = san();
        let mut pred = [false; WARP_SIZE];
        pred[5] = true;
        assert!(any(&mut c, &s, FULL_MASK, &pred));
        assert!(!any(&mut c, &s, !(1 << 5), &pred));
        assert!(!any(&mut c, &s, FULL_MASK, &[false; WARP_SIZE]));
    }

    #[test]
    fn ballot_and_first_lane() {
        let mut c = ctr();
        let s = san();
        let mut pred = [false; WARP_SIZE];
        pred[3] = true;
        pred[17] = true;
        let b = ballot(&mut c, &s, FULL_MASK, &pred);
        assert_eq!(b, (1 << 3) | (1 << 17));
        assert_eq!(first_lane(b), Some(3));
        assert_eq!(first_lane(0), None);
    }

    #[test]
    fn shfl_broadcasts() {
        let mut c = ctr();
        let s = san();
        let mut vals = [0u64; WARP_SIZE];
        vals[9] = 42;
        assert_eq!(shfl(&mut c, &s, FULL_MASK, &vals, 9), 42);
    }

    #[test]
    fn shfl_wraps_out_of_range_source() {
        let mut c = ctr();
        let s = san();
        let mut vals = [0u64; WARP_SIZE];
        vals[9] = 42;
        // Hardware semantics: srcLane % 32.
        assert_eq!(shfl(&mut c, &s, FULL_MASK, &vals, 9 + WARP_SIZE), 42);
    }

    #[test]
    fn reductions() {
        let mut c = ctr();
        let s = san();
        let mut vals = [0.0; WARP_SIZE];
        vals[0] = 1.5;
        vals[31] = 2.5;
        assert_eq!(reduce_sum(&mut c, &s, FULL_MASK, &vals), 4.0);
        // Masked-out lane excluded.
        assert_eq!(reduce_sum(&mut c, &s, !(1u32 << 31), &vals), 1.5);

        let mut pred = [false; WARP_SIZE];
        pred[1] = true;
        pred[2] = true;
        assert_eq!(reduce_count(&mut c, &s, FULL_MASK, &pred), 2);
        assert_eq!(reduce_count(&mut c, &s, 0b10, &pred), 1);
    }

    #[test]
    fn reduce_max_by_key_picks_largest_active() {
        let mut c = ctr();
        let s = san();
        let mut keys = [0.0; WARP_SIZE];
        keys[4] = 0.9;
        keys[20] = 0.95;
        assert_eq!(reduce_max_by_key(&mut c, &s, FULL_MASK, &keys), Some(20));
        assert_eq!(
            reduce_max_by_key(&mut c, &s, 1 << 4 | 1 << 7, &keys),
            Some(4)
        );
        assert_eq!(reduce_max_by_key(&mut c, &s, 0, &keys), None);
    }

    #[test]
    fn primitives_charge_counters() {
        let mut c = ctr();
        let s = san();
        let before = c.alu_instructions;
        any(&mut c, &s, FULL_MASK, &[false; WARP_SIZE]);
        ballot(&mut c, &s, FULL_MASK, &[false; WARP_SIZE]);
        assert_eq!(c.alu_instructions, before + 2);
    }
}
