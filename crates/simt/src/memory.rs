//! The coalescing memory model.
//!
//! When a warp issues a load, the 32 lane addresses are grouped into
//! 128-byte line transactions. If all lanes read consecutive elements of
//! one array the warp pays ~4 transactions; if each lane reads a different
//! region the warp pays up to 32. This difference is exactly the paper's
//! explanation (Example 4, Figures 5–6) for why iteration synchronization
//! loses to sample synchronization despite better instruction-level
//! parallelism.
//!
//! Each access also reports per-lane word addresses to the
//! [`WarpSanitizer`]: under `racecheck` they feed the block's shadow
//! state, under `initcheck` reads of registered-but-never-written words
//! are flagged. The disabled handle short-circuits both.

use crate::counters::KernelCounters;
use crate::warp::{Lanes, WarpMask, WarpSanitizer, WARP_SIZE};
use gsword_sanitizer::Space;

/// Words (4-byte elements) per 128-byte line.
pub const LINE_WORDS: usize = 32;

/// A distinct array/address-space a lane address can point into. Candidate
/// graph arrays, per-thread buffers, and the data graph live in different
/// regions; a single transaction never spans regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region(pub u32);

impl Region {
    /// Global candidate array of the candidate graph.
    pub const GLOBAL: Region = Region(0);
    /// Per-edge candidate array (second CSR).
    pub const CAND: Region = Region(1);
    /// Local candidate lists (third CSR).
    pub const LOCAL: Region = Region(2);
    /// Data-graph adjacency (direct sampling mode).
    pub const ADJ: Region = Region(3);
    /// Per-thread scratch (refine buffers) — modeled as thread-private and
    /// always coalesced.
    pub const SCRATCH: Region = Region(4);

    /// The sanitizer address space for this region.
    #[inline]
    pub fn space(self) -> Space {
        Space::Region(self.0)
    }
}

/// One lane's address for a warp-wide load: a `(region, element offset)`
/// pair, or `None` when the lane is inactive for this load.
pub type LaneAddr = Option<(Region, usize)>;

/// Bytes per line; word addressing above is 4-byte elements.
pub const LINE_BYTES: usize = LINE_WORDS * 4;

/// Issue a warp-wide load at per-lane *byte* offsets and charge the
/// coalesced transaction count.
///
/// The compressed adjacency image is gap-coded, so membership probes land
/// on arbitrary byte positions (the restart-table reads and varint entry
/// starts reported by `CompressedNeighbors::contains_with_probes`) rather
/// than aligned `u32` elements. Bytes coalesce into the same 128-byte
/// lines as words: lanes decoding neighbouring blocks share transactions,
/// lanes scattered across hubs pay one line each. Offsets are mapped to
/// the 4-byte word containing them, then charged through [`warp_load`] so
/// line math and sanitizer bookkeeping stay identical across granularities.
pub fn warp_load_bytes(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    byte_addrs: &Lanes<LaneAddr>,
) -> u64 {
    let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
    for (lane, a) in byte_addrs.iter().enumerate() {
        addrs[lane] = a.map(|(region, byte_off)| (region, byte_off / 4));
    }
    warp_load(ctr, san, &addrs)
}

/// Issue a warp-wide load of one element per lane at each lane's address,
/// and charge the coalesced transaction count.
///
/// Returns the number of line transactions generated (useful for tests).
pub fn warp_load(ctr: &mut KernelCounters, san: &WarpSanitizer, addrs: &Lanes<LaneAddr>) -> u64 {
    let tx = charge_lane_access(ctr, addrs, false);
    if san.enabled() {
        for (region, off) in addrs.iter().flatten() {
            san.mem_read(region.space(), *off);
        }
    }
    tx
}

/// Issue a warp-wide store of one element per lane at each lane's address.
/// Stores coalesce exactly like loads; the transaction count is charged to
/// the same memory counters (write-back traffic).
pub fn warp_store(ctr: &mut KernelCounters, san: &WarpSanitizer, addrs: &Lanes<LaneAddr>) -> u64 {
    let tx = charge_lane_access(ctr, addrs, true);
    if san.enabled() {
        for (region, off) in addrs.iter().flatten() {
            san.mem_write(region.space(), *off);
        }
    }
    tx
}

fn charge_lane_access(ctr: &mut KernelCounters, addrs: &Lanes<LaneAddr>, store: bool) -> u64 {
    let mut lines = [0u64; WARP_SIZE];
    let mut n = 0usize;
    let mut active = 0u32;
    for (region, off) in addrs.iter().flatten() {
        active += 1;
        let line = ((region.0 as u64) << 48) | (off / LINE_WORDS) as u64;
        lines[n] = line;
        n += 1;
    }
    let tx = distinct(&mut lines[..n]);
    if store {
        ctr.warp_store(active, tx);
    } else {
        ctr.warp_load(active, tx);
    }
    tx
}

/// Issue the whole per-lane access sequence of one lockstep round as a
/// series of warp-wide loads into `region`, one load per probe step.
///
/// `lane_offs[lane]` holds lane `lane`'s element offsets in probe order;
/// round `r` loads the `r`-th offset of every lane that has one. This is
/// the batched replacement for hand-written per-access charging loops
/// (the analyzer's `charge-per-access` rule points here): the charge
/// sequence — including sanitizer read order and the `mem_instructions`
/// bump of rounds where some lanes have run dry — is bit-identical to
/// issuing the same [`warp_load`] calls one by one.
///
/// Lanes beyond [`WARP_SIZE`] are ignored. Returns the total transaction
/// count across all rounds.
pub fn warp_load_rounds(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    region: Region,
    lane_offs: &[Vec<usize>],
) -> u64 {
    let rounds = lane_offs.iter().map(Vec::len).max().unwrap_or(0);
    let mut total = 0;
    for r in 0..rounds {
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        for (lane, offs) in lane_offs.iter().enumerate().take(WARP_SIZE) {
            if let Some(&off) = offs.get(r) {
                addrs[lane] = Some((region, off));
            }
        }
        total += warp_load(ctr, san, &addrs);
    }
    total
}

/// Charge a warp-wide *sequential* scan: every lane reads `len` consecutive
/// elements starting at `base` (broadcast access, e.g. the leader's shared
/// candidate array in warp streaming). Consecutive elements coalesce
/// perfectly: `ceil(len / LINE_WORDS)` transactions regardless of lane
/// count.
pub fn warp_scan(
    ctr: &mut KernelCounters,
    san: &WarpSanitizer,
    mask: WarpMask,
    region: Region,
    base: usize,
    len: usize,
) {
    if len == 0 {
        return;
    }
    let first = base / LINE_WORDS;
    let last = (base + len - 1) / LINE_WORDS;
    ctr.warp_load(mask.count_ones(), (last - first + 1) as u64);
    if san.enabled() {
        for off in base..base + len {
            san.mem_read(region.space(), off);
        }
    }
}

fn distinct(lines: &mut [u64]) -> u64 {
    if lines.is_empty() {
        return 0;
    }
    lines.sort_unstable();
    let mut tx = 1u64;
    for i in 1..lines.len() {
        if lines[i] != lines[i - 1] {
            tx += 1;
        }
    }
    tx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn san() -> WarpSanitizer {
        WarpSanitizer::disabled()
    }

    #[test]
    fn coalesced_access_is_cheap() {
        let mut c = KernelCounters::default();
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = Some((Region::CAND, 1000 + i)); // 32 consecutive words
        }
        let tx = warp_load(&mut c, &san(), &addrs);
        assert!(tx <= 2, "consecutive words should need ≤2 lines, got {tx}");
    }

    #[test]
    fn scattered_access_is_expensive() {
        let mut c = KernelCounters::default();
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = Some((Region::CAND, i * 10_000)); // one line each
        }
        assert_eq!(warp_load(&mut c, &san(), &addrs), 32);
        assert_eq!(c.stall_long(), 32 * crate::counters::MEM_LATENCY_CYCLES);
    }

    #[test]
    fn regions_never_share_lines() {
        let mut c = KernelCounters::default();
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        addrs[0] = Some((Region::GLOBAL, 0));
        addrs[1] = Some((Region::LOCAL, 0));
        assert_eq!(warp_load(&mut c, &san(), &addrs), 2);
    }

    #[test]
    fn inactive_lanes_cost_nothing() {
        let mut c = KernelCounters::default();
        let addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        assert_eq!(warp_load(&mut c, &san(), &addrs), 0);
        assert_eq!(c.mem_instructions, 1);
        assert_eq!(c.active_lane_ops, 0);
    }

    #[test]
    fn stores_coalesce_like_loads() {
        let mut c = KernelCounters::default();
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = Some((Region::SCRATCH, i)); // consecutive words
        }
        let tx = warp_store(&mut c, &san(), &addrs);
        assert!(tx <= 2);
        assert_eq!(c.mem_instructions, 1);
        assert_eq!(c.mem_active_lanes, 32);
    }

    #[test]
    fn scan_transactions_round_up() {
        let mut c = KernelCounters::default();
        warp_scan(&mut c, &san(), u32::MAX, Region::LOCAL, 0, 1);
        assert_eq!(c.mem_transactions, 1);
        warp_scan(&mut c, &san(), u32::MAX, Region::LOCAL, 30, 4); // crosses a line
        assert_eq!(c.mem_transactions, 3);
        warp_scan(&mut c, &san(), u32::MAX, Region::LOCAL, 0, 0); // empty: free
        assert_eq!(c.mem_instructions, 2);
    }

    #[test]
    fn byte_probes_coalesce_within_a_line() {
        let mut c = KernelCounters::default();
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = Some((Region::ADJ, 256 + i * 3)); // varint-ish strides, one line
        }
        assert_eq!(warp_load_bytes(&mut c, &san(), &addrs), 1);
    }

    #[test]
    fn byte_probes_split_on_line_boundaries() {
        let mut c = KernelCounters::default();
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        addrs[0] = Some((Region::ADJ, LINE_BYTES - 1));
        addrs[1] = Some((Region::ADJ, LINE_BYTES));
        assert_eq!(warp_load_bytes(&mut c, &san(), &addrs), 2);
    }

    #[test]
    fn load_rounds_replays_the_per_access_loop_exactly() {
        // Ragged per-lane sequences: lane 0 probes 3 words, lane 1 probes 1,
        // lane 2 none. The batched call must charge the same counters as
        // the equivalent hand-rolled round loop, including round 2 where
        // only lane 0 is still active and round boundaries where some
        // lanes' addresses are None.
        let seqs = vec![vec![0usize, 40, 80], vec![0usize], vec![]];
        let mut batched = KernelCounters::default();
        let tx = warp_load_rounds(&mut batched, &san(), Region::CAND, &seqs);

        let mut manual = KernelCounters::default();
        let mut manual_tx = 0;
        for r in 0..3 {
            let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
            for (lane, s) in seqs.iter().enumerate() {
                if let Some(&off) = s.get(r) {
                    addrs[lane] = Some((Region::CAND, off));
                }
            }
            manual_tx += warp_load(&mut manual, &san(), &addrs);
        }
        assert_eq!(tx, manual_tx);
        assert_eq!(batched.snapshot(), manual.snapshot());
        assert_eq!(batched.mem_instructions, 3);
    }

    #[test]
    fn load_rounds_of_empty_sequences_charges_nothing() {
        let mut c = KernelCounters::default();
        assert_eq!(warp_load_rounds(&mut c, &san(), Region::LOCAL, &[]), 0);
        assert_eq!(c.mem_instructions, 0);
        let empties: Vec<Vec<usize>> = vec![vec![]; 4];
        assert_eq!(warp_load_rounds(&mut c, &san(), Region::LOCAL, &empties), 0);
        assert_eq!(c.mem_instructions, 0);
    }

    #[test]
    fn sanitized_load_feeds_initcheck() {
        use gsword_sanitizer::{Sanitizer, SanitizerMode};
        let sz = Sanitizer::new(SanitizerMode::FULL, "mem-test");
        sz.region_alloc(Region::SCRATCH.space(), 64);
        let ws = sz.warp(0, 0);
        let mut c = KernelCounters::default();
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        addrs[0] = Some((Region::SCRATCH, 5));
        warp_load(&mut c, &ws, &addrs); // read-before-write: poisoned
        warp_store(&mut c, &ws, &addrs);
        warp_load(&mut c, &ws, &addrs); // initialized now
        let rep = sz.report();
        assert_eq!(rep.count_for("initcheck"), 1);
    }
}
