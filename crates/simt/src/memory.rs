//! The coalescing memory model.
//!
//! When a warp issues a load, the 32 lane addresses are grouped into
//! 128-byte line transactions. If all lanes read consecutive elements of
//! one array the warp pays ~4 transactions; if each lane reads a different
//! region the warp pays up to 32. This difference is exactly the paper's
//! explanation (Example 4, Figures 5–6) for why iteration synchronization
//! loses to sample synchronization despite better instruction-level
//! parallelism.

use crate::counters::KernelCounters;
use crate::warp::{Lanes, WarpMask, WARP_SIZE};

/// Words (4-byte elements) per 128-byte line.
pub const LINE_WORDS: usize = 32;

/// A distinct array/address-space a lane address can point into. Candidate
/// graph arrays, per-thread buffers, and the data graph live in different
/// regions; a single transaction never spans regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region(pub u32);

impl Region {
    /// Global candidate array of the candidate graph.
    pub const GLOBAL: Region = Region(0);
    /// Per-edge candidate array (second CSR).
    pub const CAND: Region = Region(1);
    /// Local candidate lists (third CSR).
    pub const LOCAL: Region = Region(2);
    /// Data-graph adjacency (direct sampling mode).
    pub const ADJ: Region = Region(3);
    /// Per-thread scratch (refine buffers) — modeled as thread-private and
    /// always coalesced.
    pub const SCRATCH: Region = Region(4);
}

/// One lane's address for a warp-wide load: a `(region, element offset)`
/// pair, or `None` when the lane is inactive for this load.
pub type LaneAddr = Option<(Region, usize)>;

/// Issue a warp-wide load of `count` consecutive elements per lane starting
/// at each lane's address, and charge the coalesced transaction count.
///
/// Returns the number of line transactions generated (useful for tests).
pub fn warp_load(ctr: &mut KernelCounters, addrs: &Lanes<LaneAddr>) -> u64 {
    let mut lines = [0u64; WARP_SIZE];
    let mut n = 0usize;
    let mut active = 0u32;
    for (region, off) in addrs.iter().flatten() {
        active += 1;
        let line = ((region.0 as u64) << 48) | (off / LINE_WORDS) as u64;
        lines[n] = line;
        n += 1;
    }
    let tx = distinct(&mut lines[..n]);
    ctr.warp_load(active, tx);
    tx
}

/// Charge a warp-wide *sequential* scan: every lane reads `len` consecutive
/// elements starting at `base` (broadcast access, e.g. the leader's shared
/// candidate array in warp streaming). Consecutive elements coalesce
/// perfectly: `ceil(len / LINE_WORDS)` transactions regardless of lane
/// count.
pub fn warp_scan(ctr: &mut KernelCounters, mask: WarpMask, _region: Region, base: usize, len: usize) {
    if len == 0 {
        return;
    }
    let first = base / LINE_WORDS;
    let last = (base + len - 1) / LINE_WORDS;
    ctr.warp_load(mask.count_ones(), (last - first + 1) as u64);
}

fn distinct(lines: &mut [u64]) -> u64 {
    if lines.is_empty() {
        return 0;
    }
    lines.sort_unstable();
    let mut tx = 1u64;
    for i in 1..lines.len() {
        if lines[i] != lines[i - 1] {
            tx += 1;
        }
    }
    tx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_access_is_cheap() {
        let mut c = KernelCounters::default();
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = Some((Region::CAND, 1000 + i)); // 32 consecutive words
        }
        let tx = warp_load(&mut c, &addrs);
        assert!(tx <= 2, "consecutive words should need ≤2 lines, got {tx}");
    }

    #[test]
    fn scattered_access_is_expensive() {
        let mut c = KernelCounters::default();
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = Some((Region::CAND, i * 10_000)); // one line each
        }
        assert_eq!(warp_load(&mut c, &addrs), 32);
        assert_eq!(c.stall_long(), 32 * crate::counters::MEM_LATENCY_CYCLES);
    }

    #[test]
    fn regions_never_share_lines() {
        let mut c = KernelCounters::default();
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        addrs[0] = Some((Region::GLOBAL, 0));
        addrs[1] = Some((Region::LOCAL, 0));
        assert_eq!(warp_load(&mut c, &addrs), 2);
    }

    #[test]
    fn inactive_lanes_cost_nothing() {
        let mut c = KernelCounters::default();
        let addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        assert_eq!(warp_load(&mut c, &addrs), 0);
        assert_eq!(c.mem_instructions, 1);
        assert_eq!(c.active_lane_ops, 0);
    }

    #[test]
    fn scan_transactions_round_up() {
        let mut c = KernelCounters::default();
        warp_scan(&mut c, u32::MAX, Region::LOCAL, 0, 1);
        assert_eq!(c.mem_transactions, 1);
        warp_scan(&mut c, u32::MAX, Region::LOCAL, 30, 4); // crosses a line
        assert_eq!(c.mem_transactions, 3);
        warp_scan(&mut c, u32::MAX, Region::LOCAL, 0, 0); // empty: free
        assert_eq!(c.mem_instructions, 2);
    }
}
