//! A software SIMT device: the GPU substitute substrate of this
//! reproduction.
//!
//! The paper's contributions — sample inheritance, warp streaming,
//! sample-vs-iteration synchronization, block-shared sample pools — are
//! algorithms over the *SIMT execution model*: 32-lane warps executing in
//! lockstep, warp-level register exchange primitives, and a memory system
//! whose throughput depends on how well a warp's 32 concurrent addresses
//! coalesce into cache lines.
//!
//! This crate implements that model in software:
//!
//! * [`warp`] — lockstep lane arrays and the warp primitives used by
//!   Algorithms 2 and 3 (`_any`, `_ballot`, `_shfl`, `_reduce_sum`,
//!   `_reduce_max`), each charging execution counters.
//! * [`memory`] — a coalescing model: one warp-wide load is split into
//!   128-byte line transactions; scattered accesses cost more transactions
//!   (the mechanism behind the paper's Figure 5/6 observation).
//! * [`counters`] — per-kernel counters including the `StallLong` /
//!   `StallWait` proxies profiled in the paper's micro-benchmark.
//! * [`pool`] — the per-block atomic sample pool of Algorithm 1.
//! * [`device`] — a block-parallel launch harness (blocks run on host
//!   threads) plus a [`device::DeviceModel`] that converts counters into
//!   modeled device milliseconds.
//! * [`runtime`] — the CUDA-runtime analogue: N devices, per-device
//!   streams (ordered async launch queues), events, and a per-device /
//!   per-stream counter board (the paper's two-GPU testbed shape).
//!
//! Functional behaviour (the estimates) is exact; device time is *modeled*
//! from the counters. DESIGN.md §1 documents the substitution.
//!
//! An opt-in checking layer (re-exported from [`gsword_sanitizer`], the
//! `compute-sanitizer` analogue) validates the invariants real hardware
//! makes undefined: divergent participation masks, unsynchronized
//! block-shared accesses, uninitialized reads. See DESIGN.md §"Sanitizer".

pub mod counters;
pub mod device;
pub mod memory;
pub mod pool;
pub mod runtime;
pub mod warp;

/// Re-export: the profiler layer (Chrome-trace export, JSON validation).
pub use gsword_prof as prof;

pub use counters::KernelCounters;
pub use device::{ConfigError, Device, DeviceConfig, DeviceModel};
pub use gsword_prof::{
    CounterSnapshot, KernelMetrics, ProfReport, Profiler, Span, SpanKind, StreamCounters, Track,
};
pub use gsword_sanitizer::{
    Sanitizer, SanitizerMode, SanitizerReport, Space, Violation, ViolationKind, WarpSanitizer,
};
pub use memory::Region;
pub use pool::SamplePool;
pub use runtime::{Event, LaunchHandle, Runtime, RuntimeConfig, RuntimeScope};
pub use warp::{Lanes, WarpMask, WARP_SIZE};
