//! The block-shared sample pool of Algorithm 1.
//!
//! Threads of a block draw sample tasks from a shared pool via an atomic
//! fetch (`FetchSampleTask`), so fast threads absorb the tail of slow ones
//! instead of idling — the block-level load-balancing layer beneath the
//! warp-level optimizations.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::warp::WarpSanitizer;
use gsword_sanitizer::Space;

/// An atomic pool of `total` sample tasks.
///
/// The cursor *saturates* at `total`: fetches from a drained pool do not
/// advance it, so arbitrarily long refill loops (every warp polling an
/// empty pool each iteration) can never overflow the counter or make
/// [`SamplePool::issued`] lie about how many tasks were handed out.
#[derive(Debug)]
pub struct SamplePool {
    next: AtomicU64,
    total: u64,
}

impl SamplePool {
    /// Create a pool holding `total` tasks.
    pub fn new(total: u64) -> Self {
        SamplePool {
            next: AtomicU64::new(0),
            total,
        }
    }

    /// Fetch the next task id, or `None` when the pool is drained.
    ///
    /// Models the shared-memory atomic increment of Algorithm 1 line 5.
    #[inline]
    pub fn fetch(&self) -> Option<u64> {
        // Relaxed is enough: ids only need to be unique, and the caller
        // joins all worker threads before reading results. CAS instead of
        // a blind fetch_add so the cursor saturates at `total`.
        self.next
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                (cur < self.total).then_some(cur + 1)
            })
            .ok()
    }

    /// Fetch up to `n` task ids at once (batch variant used when a warp
    /// refills all lanes together). Returns the first id and how many were
    /// actually granted.
    pub fn fetch_many(&self, n: u64) -> Option<(u64, u64)> {
        if n == 0 {
            return None;
        }
        let start = self
            .next
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                (cur < self.total).then(|| self.total.min(cur.saturating_add(n)))
            })
            .ok()?;
        Some((start, n.min(self.total - start)))
    }

    /// [`SamplePool::fetch`] with the atomic access made visible to the
    /// sanitizer's racecheck (the pool cursor of block `san.block()` is
    /// one shared word; atomics never race each other, but any plain
    /// access to the same word does).
    #[inline]
    pub fn fetch_sanitized(&self, san: &WarpSanitizer) -> Option<u64> {
        if san.enabled() {
            san.mem_atomic(Space::Pool(san.block() as u32), 0);
        }
        self.fetch()
    }

    /// A deliberately *non-atomic* read of the pool cursor — the bug
    /// pattern racecheck exists to catch (reading the cursor while other
    /// warps fetch). Returns a possibly-stale count of issued tasks.
    pub fn read_cursor_unsync(&self, san: &WarpSanitizer) -> u64 {
        if san.enabled() {
            san.mem_read(Space::Pool(san.block() as u32), 0);
        }
        self.next.load(Ordering::Relaxed)
    }

    /// Total tasks the pool was created with.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Tasks handed out so far (saturated at `total`).
    pub fn issued(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Whether all tasks have been handed out.
    pub fn is_drained(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_hands_out_each_task_once() {
        let p = SamplePool::new(5);
        let mut ids: Vec<u64> = std::iter::from_fn(|| p.fetch()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(p.fetch().is_none());
        assert!(p.is_drained());
    }

    #[test]
    fn fetch_many_clamps_to_remaining() {
        let p = SamplePool::new(10);
        assert_eq!(p.fetch_many(8), Some((0, 8)));
        assert_eq!(p.fetch_many(8), Some((8, 2)));
        assert_eq!(p.fetch_many(8), None);
        assert_eq!(p.fetch_many(0), None);
    }

    #[test]
    fn drained_pool_cursor_saturates() {
        // Regression: `fetch`/`fetch_many` used to blindly fetch_add, so a
        // long-running refill loop on a drained pool marched `next` toward
        // u64::MAX — overflow territory and a lying issued-count.
        let p = SamplePool::new(3);
        while p.fetch().is_some() {}
        for _ in 0..10_000 {
            assert!(p.fetch().is_none());
            assert!(p.fetch_many(32).is_none());
        }
        assert_eq!(p.issued(), 3);
        assert!(p.is_drained());
    }

    #[test]
    fn fetch_many_saturates_near_u64_max() {
        let p = SamplePool::new(4);
        assert_eq!(p.fetch_many(u64::MAX), Some((0, 4)));
        assert_eq!(p.issued(), 4);
        assert!(p.fetch_many(u64::MAX).is_none());
        assert_eq!(p.issued(), 4);
    }

    #[test]
    fn concurrent_fetch_is_exact() {
        let p = SamplePool::new(10_000);
        let count = std::sync::atomic::AtomicU64::new(0);
        crossbeam::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    while p.fetch().is_some() {
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
        assert_eq!(p.issued(), 10_000);
    }

    #[test]
    fn concurrent_drained_fetch_never_overshoots() {
        let p = SamplePool::new(64);
        crossbeam::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    for _ in 0..2_000 {
                        let _ = p.fetch();
                        let _ = p.fetch_many(7);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(p.issued(), 64);
    }

    #[test]
    fn empty_pool() {
        let p = SamplePool::new(0);
        assert!(p.fetch().is_none());
        assert!(p.fetch_many(4).is_none());
        assert!(p.is_drained());
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn sanitized_fetches_are_atomic_to_racecheck() {
        use gsword_sanitizer::{Sanitizer, SanitizerMode};
        let sz = Sanitizer::new(SanitizerMode::FULL, "pool-test");
        let p = SamplePool::new(100);
        let w0 = sz.warp(0, 0);
        let w1 = sz.warp(0, 1);
        assert!(p.fetch_sanitized(&w0).is_some());
        assert!(p.fetch_sanitized(&w1).is_some());
        assert!(sz.report().is_clean(), "atomic fetches never race");
        // A warp reading the cursor without the atomic races the previous
        // fetch (read-after-write) and the next one (write-after-read).
        p.read_cursor_unsync(&w0);
        assert!(p.fetch_sanitized(&w1).is_some());
        assert_eq!(sz.report().count_for("racecheck"), 2);
    }
}
