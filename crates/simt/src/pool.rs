//! The block-shared sample pool of Algorithm 1.
//!
//! Threads of a block draw sample tasks from a shared pool via an atomic
//! fetch (`FetchSampleTask`), so fast threads absorb the tail of slow ones
//! instead of idling — the block-level load-balancing layer beneath the
//! warp-level optimizations.

use std::sync::atomic::{AtomicU64, Ordering};

/// An atomic pool of `total` sample tasks.
#[derive(Debug)]
pub struct SamplePool {
    next: AtomicU64,
    total: u64,
}

impl SamplePool {
    /// Create a pool holding `total` tasks.
    pub fn new(total: u64) -> Self {
        SamplePool {
            next: AtomicU64::new(0),
            total,
        }
    }

    /// Fetch the next task id, or `None` when the pool is drained.
    ///
    /// Models the shared-memory atomic increment of Algorithm 1 line 5.
    #[inline]
    pub fn fetch(&self) -> Option<u64> {
        // Relaxed is enough: ids only need to be unique, and the caller
        // joins all worker threads before reading results.
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        (id < self.total).then_some(id)
    }

    /// Fetch up to `n` task ids at once (batch variant used when a warp
    /// refills all lanes together). Returns the first id and how many were
    /// actually granted.
    pub fn fetch_many(&self, n: u64) -> Option<(u64, u64)> {
        let start = self.next.fetch_add(n, Ordering::Relaxed);
        if start >= self.total {
            return None;
        }
        Some((start, n.min(self.total - start)))
    }

    /// Total tasks the pool was created with.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Whether all tasks have been handed out.
    pub fn is_drained(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_hands_out_each_task_once() {
        let p = SamplePool::new(5);
        let mut ids: Vec<u64> = std::iter::from_fn(|| p.fetch()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(p.fetch().is_none());
        assert!(p.is_drained());
    }

    #[test]
    fn fetch_many_clamps_to_remaining() {
        let p = SamplePool::new(10);
        assert_eq!(p.fetch_many(8), Some((0, 8)));
        assert_eq!(p.fetch_many(8), Some((8, 2)));
        assert_eq!(p.fetch_many(8), None);
    }

    #[test]
    fn concurrent_fetch_is_exact() {
        let p = SamplePool::new(10_000);
        let count = std::sync::atomic::AtomicU64::new(0);
        crossbeam::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    while p.fetch().is_some() {
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn empty_pool() {
        let p = SamplePool::new(0);
        assert!(p.fetch().is_none());
        assert!(p.fetch_many(4).is_none());
        assert!(p.is_drained());
    }
}
