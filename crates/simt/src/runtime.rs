//! The device runtime: N devices, per-device streams, and events.
//!
//! The paper evaluates gSWORD on two RTX 2080 Ti GPUs; this module is the
//! CUDA-runtime analogue that lets the workspace target that shape. A
//! [`Runtime`] owns a fixed set of [`Device`]s. Work is submitted to
//! *streams* — ordered asynchronous launch queues, one worker thread each —
//! and completion is observed through *events* (record / wait / elapsed),
//! mirroring `cudaStream_t`/`cudaEvent_t`. Counters charged by finished
//! launches accumulate on a per-device, per-stream board that feeds the
//! existing [`DeviceModel`]: modeled time for a multi-device run is the max
//! over devices, matching real multi-GPU wall-clock.
//!
//! Stream *submission* happens only inside [`Runtime::scope`], so launch
//! closures may borrow stack data (query contexts, estimators) without
//! `'static` gymnastics — the same shape as `std::thread::scope`. The
//! worker threads behind the streams, however, are *persistent*: the
//! runtime lazily creates one parked worker per (device, stream) on the
//! first scope entry and reuses it across every subsequent `scope` call,
//! so short launch batches don't pay thread creation on the hot path
//! (the standard fix in the simulator-parallelization literature). Workers
//! drain and join when the runtime drops.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use crate::counters::KernelCounters;
use crate::device::{Device, DeviceConfig, DeviceModel};
use gsword_prof::{Profiler, SpanKind, Track};
use gsword_sanitizer::{Sanitizer, SanitizerReport};

/// Runtime topology: how many devices, how many streams on each, and the
/// launch geometry every device shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Simulated GPUs (the paper's testbed has 2).
    pub num_devices: usize,
    /// Ordered launch queues per device.
    pub streams_per_device: usize,
    /// Per-device launch geometry.
    pub device: DeviceConfig,
    /// Intra-kernel block workers: how many host threads one launch fans
    /// its grid's blocks across. `0` = auto (the device's `host_threads`),
    /// `1` = serial in-stream execution, `n` = a persistent pool of `n`
    /// lockstep block workers shared by every stream. Functional results,
    /// counters, and sanitizer verdicts are bit-identical for every value
    /// (results merge in fixed block order; the sanitizer's detail cap is
    /// block-keyed), so this knob trades wall-clock only.
    pub sim_workers: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            num_devices: 1,
            streams_per_device: 1,
            device: DeviceConfig::default(),
            sim_workers: 0,
        }
    }
}

/// A recordable completion marker, the `cudaEvent_t` analogue. Cloned
/// handles observe the same underlying event.
#[derive(Clone, Debug, Default)]
pub struct Event {
    inner: Arc<EventInner>,
}

#[derive(Debug, Default)]
struct EventInner {
    stamp: Mutex<Option<Instant>>,
    cv: Condvar,
}

impl Event {
    /// A fresh, unrecorded event.
    pub fn new() -> Self {
        Event::default()
    }

    /// Record the event: stamp the current time and wake all waiters.
    /// Recording twice keeps the first stamp (a stream re-recording a
    /// completed marker is a no-op, as on hardware replaying a graph).
    pub fn record(&self) {
        let mut stamp = self.inner.stamp.lock().expect("event lock");
        if stamp.is_none() {
            *stamp = Some(Instant::now());
        }
        drop(stamp);
        self.inner.cv.notify_all();
    }

    /// Has the event been recorded yet? (`cudaEventQuery`.)
    pub fn is_complete(&self) -> bool {
        self.inner.stamp.lock().expect("event lock").is_some()
    }

    /// Block until the event records (`cudaEventSynchronize`).
    pub fn wait(&self) {
        let mut stamp = self.inner.stamp.lock().expect("event lock");
        while stamp.is_none() {
            stamp = self.inner.cv.wait(stamp).expect("event wait");
        }
    }

    /// Milliseconds between this event's record and `later`'s
    /// (`cudaEventElapsedTime`); `None` unless both have recorded.
    pub fn elapsed_ms(&self, later: &Event) -> Option<f64> {
        let a = (*self.inner.stamp.lock().expect("event lock"))?;
        let b = (*later.inner.stamp.lock().expect("event lock"))?;
        Some(b.saturating_duration_since(a).as_secs_f64() * 1e3)
    }
}

/// Result cell of an asynchronous launch: an [`Event`] that records on
/// completion plus the per-block outputs.
pub struct LaunchHandle<R> {
    slot: Arc<Mutex<Option<Vec<R>>>>,
    event: Event,
}

impl<R> LaunchHandle<R> {
    /// The completion event (recorded when the launch finishes).
    pub fn event(&self) -> &Event {
        &self.event
    }

    /// Has the launch finished?
    pub fn is_complete(&self) -> bool {
        self.event.is_complete()
    }

    /// Block until the launch finishes and take its per-block results
    /// (in block order).
    pub fn wait(self) -> Vec<R> {
        self.event.wait();
        self.slot
            .lock()
            .expect("launch slot")
            .take()
            .expect("launch result taken once")
    }
}

/// The device runtime: owns the devices, the counter board, and the
/// persistent stream worker pool. Streams accept work only inside
/// [`Runtime::scope`].
pub struct Runtime {
    devices: Vec<Device>,
    streams_per_device: usize,
    /// Counters charged by completed launches, `[device][stream]`.
    board: Mutex<Vec<Vec<KernelCounters>>>,
    /// Timeline/metrics recorder (the disabled handle when not profiling).
    profiler: Profiler,
    /// Set when any stream job panicked (surfaced when the scope joins).
    poisoned: AtomicBool,
    /// One parked worker thread per (device, stream), created on the first
    /// [`Runtime::scope`] entry, reused by every later scope, and joined
    /// when the runtime drops.
    pool: OnceLock<WorkerPool>,
    /// Resolved intra-kernel worker count ([`RuntimeConfig::sim_workers`]
    /// with `0` replaced by the device's `host_threads`).
    sim_workers: usize,
    /// Persistent block workers shared by every stream's launches, created
    /// lazily on the first parallel launch (only when `sim_workers > 1`).
    block_pool: OnceLock<BlockPool>,
}

/// The persistent stream workers: `senders[device * streams + stream]`
/// feeds the ordered queue its dedicated worker drains. Dropping the pool
/// closes every channel and joins the workers.
struct WorkerPool {
    senders: Vec<mpsc::Sender<Job<'static>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(workers: usize) -> Self {
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = mpsc::channel::<Job<'static>>();
            senders.push(tx);
            // The worker parks in `recv` between jobs and between scopes;
            // panic isolation happens in the submission wrapper, so a job
            // can never take its worker down.
            handles.push(std::thread::spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            }));
        }
        WorkerPool { senders, handles }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Profiler attribution of one parallel launch, carried by its batch so
/// each participating worker can record a [`Track::Worker`] span.
struct BatchProf {
    profiler: Profiler,
    name: String,
    device: u32,
    stream: u32,
}

/// One parallel launch in flight on the block pool: a shared cursor over
/// the block indices, a type-erased per-block body, and completion
/// tracking. Any thread (pool worker or the submitting stream worker) can
/// claim blocks; results land in per-block slots owned by the submitter,
/// so the merge order is the fixed ascending block order regardless of
/// which worker ran which block.
struct BlockBatch {
    /// Next unclaimed block index (0-based within the launch's range).
    cursor: AtomicUsize,
    nblocks: usize,
    /// Blocks not yet finished; the submitter blocks on it.
    remaining: Mutex<usize>,
    done: Condvar,
    /// Set when any block body panicked (the submitter re-panics after the
    /// whole batch completes, so sibling blocks still produce results).
    panicked: AtomicBool,
    /// Worker-slot allocator for profiler track attribution.
    participants: AtomicUsize,
    /// The per-block runner. Lifetime-erased: see the SAFETY note in
    /// [`BlockPool::run`].
    body: &'static (dyn Fn(usize) + Sync),
    prof: Option<BatchProf>,
}

impl BlockBatch {
    /// Claim and execute blocks until the cursor is exhausted. A thread
    /// that ran at least one block records one per-launch span on its
    /// [`Track::Worker`] track when profiling.
    fn participate(&self) {
        let mut joined: Option<(usize, u64)> = None;
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.nblocks {
                break;
            }
            if joined.is_none() {
                let w = self.participants.fetch_add(1, Ordering::Relaxed);
                let start = self.prof.as_ref().map_or(0, |p| p.profiler.now_us());
                joined = Some((w, start));
            }
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (self.body)(i))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            let mut rem = self.remaining.lock().expect("batch remaining");
            *rem -= 1;
            if *rem == 0 {
                self.done.notify_all();
            }
        }
        if let (Some((w, start)), Some(p)) = (joined, &self.prof) {
            let track = Track::Worker {
                device: p.device,
                stream: p.stream,
                worker: w as u32,
            };
            p.profiler
                .record_span(track, SpanKind::Launch, &p.name, start);
        }
    }

    fn exhausted(&self) -> bool {
        self.cursor.load(Ordering::Relaxed) >= self.nblocks
    }

    /// Block until every block of the batch has finished.
    fn wait(&self) {
        let mut rem = self.remaining.lock().expect("batch remaining");
        while *rem > 0 {
            rem = self.done.wait(rem).expect("batch wait");
        }
    }
}

struct BlockShared {
    queue: Mutex<VecDeque<Arc<BlockBatch>>>,
    cv: Condvar,
    shutdown: AtomicBool,
}

/// The persistent intra-kernel worker pool: `sim_workers - 1` parked
/// threads that drain block batches FIFO (the submitting stream worker is
/// the remaining participant, which also guarantees progress when every
/// pool thread is busy elsewhere). Threads are created once per runtime
/// and joined on drop.
struct BlockPool {
    shared: Arc<BlockShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl BlockPool {
    fn new(threads: usize) -> Self {
        let shared = Arc::new(BlockShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared))
            })
            .collect();
        BlockPool { shared, handles }
    }

    fn worker_loop(shared: &BlockShared) {
        loop {
            let batch = {
                let mut q = shared.queue.lock().expect("block queue");
                loop {
                    if shared.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    while q.front().is_some_and(|b| b.exhausted()) {
                        q.pop_front();
                    }
                    if let Some(b) = q.front() {
                        break Arc::clone(b);
                    }
                    q = shared.cv.wait(q).expect("block queue wait");
                }
            };
            batch.participate();
        }
    }

    /// Fan one launch's blocks across the pool (the calling thread
    /// participates too) and return the per-block results in ascending
    /// block order. Panicking blocks poison the batch; the panic is
    /// re-raised here once every sibling block has finished.
    fn run<R, F>(&self, blocks: Range<usize>, body: F, prof: Option<BatchProf>) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let base = blocks.start;
        let nb = blocks.len();
        if nb == 0 {
            return Vec::new();
        }
        let slots: Vec<crate::device::parking_slot::Slot<R>> = (0..nb)
            .map(|_| crate::device::parking_slot::Slot::new())
            .collect();
        let runner = |i: usize| slots[i].put(body(base + i));
        let runner_ref: &(dyn Fn(usize) + Sync) = &runner;
        // SAFETY: the body reference is erased to 'static so pool threads
        // can hold the batch, but every dereference happens between a
        // successful cursor claim (`i < nblocks`) and that block's
        // `remaining` decrement — and this function only returns after
        // `remaining` reaches zero, so `runner`, `slots`, and `body`
        // outlive every use. Workers touching the batch after completion
        // only read its owned fields (cursor, prof), never `body`.
        let body_static = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                runner_ref,
            )
        };
        let batch = Arc::new(BlockBatch {
            cursor: AtomicUsize::new(0),
            nblocks: nb,
            remaining: Mutex::new(nb),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
            participants: AtomicUsize::new(0),
            body: body_static,
            prof,
        });
        self.shared
            .queue
            .lock()
            .expect("block queue")
            .push_back(Arc::clone(&batch));
        self.shared.cv.notify_all();
        batch.participate();
        batch.wait();
        // Drop the finished batch from the queue (helpers also pop
        // exhausted fronts lazily).
        self.shared
            .queue
            .lock()
            .expect("block queue")
            .retain(|b| !Arc::ptr_eq(b, &batch));
        if batch.panicked.load(Ordering::Acquire) {
            panic!("a kernel block panicked inside a parallel launch");
        }
        slots
            .into_iter()
            .map(|s| s.take().expect("all blocks executed"))
            .collect()
    }
}

impl Drop for BlockPool {
    fn drop(&mut self) {
        {
            let _q = self.shared.queue.lock().expect("block queue");
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Per-scope completion tracking: how many submitted jobs have not yet
/// finished. The scope's drop blocks on it, which is what makes handing
/// `'env`-borrowing jobs to `'static` workers sound.
struct ScopeSync {
    pending: Mutex<usize>,
    cv: Condvar,
}

impl ScopeSync {
    fn new() -> Self {
        ScopeSync {
            pending: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    fn add(&self) {
        *self.pending.lock().expect("scope pending") += 1;
    }

    fn done(&self) {
        let mut pending = self.pending.lock().expect("scope pending");
        *pending -= 1;
        if *pending == 0 {
            self.cv.notify_all();
        }
    }

    fn wait_all(&self) {
        let mut pending = self.pending.lock().expect("scope pending");
        while *pending > 0 {
            pending = self.cv.wait(pending).expect("scope wait");
        }
    }
}

impl Runtime {
    /// Build a runtime with no sanitizers attached.
    pub fn new(config: RuntimeConfig) -> Self {
        Self::with_sanitizers(config, |_| Sanitizer::off())
    }

    /// Build a runtime with a per-device sanitizer instance produced by
    /// `make(device_index)` — the multi-GPU analogue of attaching
    /// `compute-sanitizer` to every device in the rig.
    pub fn with_sanitizers(config: RuntimeConfig, make: impl FnMut(usize) -> Sanitizer) -> Self {
        Self::with_instrumentation(config, make, Profiler::off())
    }

    /// Build a fully instrumented runtime: per-device sanitizers plus a
    /// profiler recording the launch timeline and counter boards (the
    /// Nsight analogue; pass [`Profiler::off`] when not profiling).
    pub fn with_instrumentation(
        config: RuntimeConfig,
        mut make: impl FnMut(usize) -> Sanitizer,
        profiler: Profiler,
    ) -> Self {
        assert!(config.num_devices > 0, "runtime needs at least one device");
        assert!(config.streams_per_device > 0, "each device needs a stream");
        let devices = (0..config.num_devices)
            .map(|d| Device::with_sanitizer(config.device, make(d)))
            .collect::<Vec<_>>();
        let board = (0..config.num_devices)
            .map(|_| vec![KernelCounters::default(); config.streams_per_device])
            .collect();
        let sim_workers = if config.sim_workers == 0 {
            config.device.host_threads.max(1)
        } else {
            config.sim_workers
        };
        Runtime {
            devices,
            streams_per_device: config.streams_per_device,
            board: Mutex::new(board),
            profiler,
            poisoned: AtomicBool::new(false),
            pool: OnceLock::new(),
            sim_workers,
            block_pool: OnceLock::new(),
        }
    }

    /// The persistent worker pool, spawned on first use.
    fn pool(&self) -> &WorkerPool {
        self.pool
            .get_or_init(|| WorkerPool::new(self.devices.len() * self.streams_per_device))
    }

    /// Resolved intra-kernel worker count (`1` = serial block execution).
    pub fn sim_workers(&self) -> usize {
        self.sim_workers
    }

    /// The persistent block-worker pool, or `None` when launches execute
    /// their blocks serially on the stream worker.
    fn block_pool(&self) -> Option<&BlockPool> {
        if self.sim_workers <= 1 {
            return None;
        }
        Some(
            self.block_pool
                .get_or_init(|| BlockPool::new(self.sim_workers - 1)),
        )
    }

    /// Number of devices in the runtime.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Streams per device.
    pub fn streams_per_device(&self) -> usize {
        self.streams_per_device
    }

    /// Device `d`.
    pub fn device(&self, d: usize) -> &Device {
        &self.devices[d]
    }

    /// The runtime's profiler handle (disabled unless built with
    /// [`Runtime::with_instrumentation`]).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Charge counters produced on `(device, stream)` to the board. The
    /// profiler mirrors every charge, so per-stream attribution survives
    /// the board being drained between batches.
    pub fn charge(&self, device: usize, stream: usize, counters: &KernelCounters) {
        let mut board = self.board.lock().expect("counter board");
        board[device][stream].merge(counters);
        drop(board);
        if self.profiler.enabled() {
            self.profiler
                .on_charge(device, stream, &counters.snapshot());
        }
    }

    /// Counters charged on one stream since the last [`Runtime::take_device_counters`].
    pub fn stream_counters(&self, device: usize, stream: usize) -> KernelCounters {
        self.board.lock().expect("counter board")[device][stream]
    }

    /// Counters of one device, merged across its streams.
    pub fn device_counters(&self, device: usize) -> KernelCounters {
        let board = self.board.lock().expect("counter board");
        let mut out = KernelCounters::default();
        for c in &board[device] {
            out.merge(c);
        }
        out
    }

    /// Drain the board: per-device counters (merged across streams), with
    /// every slot reset to zero. Lets one runtime serve successive batches
    /// that each want their own report.
    pub fn take_device_counters(&self) -> Vec<KernelCounters> {
        let mut board = self.board.lock().expect("counter board");
        board
            .iter_mut()
            .map(|streams| {
                let mut out = KernelCounters::default();
                for c in streams.iter_mut() {
                    out.merge(c);
                    *c = KernelCounters::default();
                }
                out
            })
            .collect()
    }

    /// Modeled milliseconds of the board's current charge: the max over
    /// devices, since devices run concurrently (real multi-GPU wall-clock).
    pub fn modeled_ms(&self, model: &DeviceModel) -> f64 {
        (0..self.num_devices())
            .map(|d| model.modeled_ms(&self.device_counters(d)))
            .fold(0.0, f64::max)
    }

    /// Whether any device carries an enabled sanitizer.
    pub fn sanitizing(&self) -> bool {
        self.devices.iter().any(|d| d.sanitizer.enabled())
    }

    /// Merged sanitizer findings across all devices (empty report when no
    /// device sanitizes).
    pub fn sanitizer_report(&self) -> SanitizerReport {
        let mut out = SanitizerReport::default();
        for d in &self.devices {
            if d.sanitizer.enabled() {
                out.merge(&d.sanitizer.report());
            }
        }
        out
    }

    /// Run `f` with live streams: the persistent worker behind each
    /// (device, stream) pair consumes submitted jobs in order. Jobs may
    /// borrow anything that outlives the runtime borrow (`'env`). All
    /// streams drain before `scope` returns; a panicked job poisons the
    /// scope and re-panics here. No threads are spawned per call — the
    /// workers park between scopes and are reused.
    pub fn scope<'env, T>(&'env self, f: impl FnOnce(&RuntimeScope<'env>) -> T) -> T {
        self.pool(); // spawn the workers before any submission races
        let rs = RuntimeScope {
            runtime: self,
            sync: Arc::new(ScopeSync::new()),
        };
        let out = f(&rs);
        // Dropping the scope blocks until every submitted job finished,
        // then surfaces any poisoning.
        drop(rs);
        out
    }
}

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Live streams of a [`Runtime::scope`] call: the submission surface.
/// Holds no threads of its own — submissions are forwarded to the
/// runtime's persistent workers, and dropping the scope waits for the jobs
/// it submitted (not for jobs of other concurrent scopes).
pub struct RuntimeScope<'env> {
    runtime: &'env Runtime,
    sync: Arc<ScopeSync>,
}

impl<'env> RuntimeScope<'env> {
    /// The runtime the streams belong to.
    pub fn runtime(&self) -> &'env Runtime {
        self.runtime
    }

    fn stream_index(&self, device: usize, stream: usize) -> usize {
        assert!(device < self.runtime.num_devices(), "device out of range");
        assert!(
            stream < self.runtime.streams_per_device,
            "stream out of range"
        );
        device * self.runtime.streams_per_device + stream
    }

    /// Submit a raw job to `(device, stream)`; jobs on one stream run in
    /// submission order, different streams run concurrently.
    pub fn submit(&self, device: usize, stream: usize, job: impl FnOnce() + Send + 'env) {
        let idx = self.stream_index(device, stream);
        let sync = Arc::clone(&self.sync);
        let poisoned = &self.runtime.poisoned;
        let wrapped: Job<'env> = Box::new(move || {
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(job)).is_err() {
                poisoned.store(true, Ordering::Release);
            }
            sync.done();
        });
        // SAFETY: the job is erased to 'static so the persistent workers
        // can hold it, but it never outlives 'env: callers only ever hold
        // `&RuntimeScope`, so the scope cannot be leaked, and its drop
        // blocks until `sync` reports every submitted job finished —
        // before any 'env borrow can end. The wrapper calls `sync.done()`
        // on both the success and the panic path.
        let wrapped = unsafe { std::mem::transmute::<Job<'env>, Job<'static>>(wrapped) };
        self.sync.add();
        if self.runtime.pool().senders[idx].send(wrapped).is_err() {
            self.sync.done();
            panic!("stream worker alive inside scope");
        }
    }

    /// Enqueue an event record on a stream: it records once every job
    /// submitted to that stream before it has finished (`cudaEventRecord`).
    pub fn record(&self, device: usize, stream: usize) -> Event {
        let event = Event::new();
        let e = event.clone();
        self.submit(device, stream, move || e.record());
        event
    }

    /// Asynchronously launch `body` over the global block ids in `blocks`
    /// on `(device, stream)`. Returns immediately; the handle's event
    /// records when the launch completes. Per-block results come back in
    /// block order, exactly as [`Device::launch_blocks`] returns them.
    pub fn launch<R, F>(
        &self,
        device: usize,
        stream: usize,
        blocks: Range<usize>,
        body: F,
    ) -> LaunchHandle<R>
    where
        R: Send + 'env,
        F: Fn(usize) -> R + Send + Sync + 'env,
    {
        self.launch_named(device, stream, blocks, "kernel", body)
    }

    /// [`RuntimeScope::launch`] with an explicit kernel name: the name
    /// labels the launch's span on the profiler timeline (and is ignored
    /// when the runtime is not profiling).
    pub fn launch_named<R, F>(
        &self,
        device: usize,
        stream: usize,
        blocks: Range<usize>,
        name: &str,
        body: F,
    ) -> LaunchHandle<R>
    where
        R: Send + 'env,
        F: Fn(usize) -> R + Send + Sync + 'env,
    {
        let rt: &'env Runtime = self.runtime;
        let profiler = self.runtime.profiler.clone();
        let name = name.to_string();
        let track = Track::Stream {
            device: device as u32,
            stream: stream as u32,
        };
        let slot: Arc<Mutex<Option<Vec<R>>>> = Arc::new(Mutex::new(None));
        let event = Event::new();
        let (slot2, event2) = (Arc::clone(&slot), event.clone());
        // `BlockPool::run` drains a *different* pool than the stream
        // workers: its threads only ever claim block batches (they never
        // submit to or wait on the stream pool), and the submitting stream
        // worker participates in the batch itself, so the batch completes
        // even with zero dedicated pool threads — no self-deadlock.
        // gsword: allow(scope-blocking)
        self.submit(device, stream, move || {
            let start = profiler.now_us();
            // Fan the blocks across the persistent intra-kernel pool when
            // one is configured; either way, results come back in
            // ascending block order, so downstream merges are identical.
            let out = match rt.block_pool() {
                Some(pool) => {
                    let prof = profiler.enabled().then(|| BatchProf {
                        profiler: profiler.clone(),
                        name: name.clone(),
                        device: device as u32,
                        stream: stream as u32,
                    });
                    pool.run(blocks, body, prof)
                }
                None => blocks.map(&body).collect(),
            };
            profiler.record_span(track, SpanKind::Launch, &name, start);
            *slot2.lock().expect("launch slot") = Some(out);
            event2.record();
        });
        LaunchHandle { slot, event }
    }
}

impl Drop for RuntimeScope<'_> {
    fn drop(&mut self) {
        // Block until every job this scope submitted has finished — the
        // workers outlive the scope, so this is what bounds the jobs'
        // borrows (see the SAFETY note in `submit`). Runs on the unwind
        // path too: a panicking scope body still may have live jobs
        // borrowing its stack.
        self.sync.wait_all();
        if !std::thread::panicking() && self.runtime.poisoned.swap(false, Ordering::Acquire) {
            panic!("a stream job panicked inside Runtime::scope");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(num_devices: usize, streams: usize) -> Runtime {
        Runtime::new(RuntimeConfig {
            num_devices,
            streams_per_device: streams,
            device: DeviceConfig {
                num_blocks: 4,
                threads_per_block: 32,
                host_threads: 1,
            },
            sim_workers: 0,
        })
    }

    #[test]
    fn launch_returns_blocks_in_order() {
        let rt = tiny(2, 2);
        let out = rt.scope(|rs| {
            let h = rs.launch(1, 1, 0..4, |b| b * 10);
            h.wait()
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn launch_accepts_global_block_ranges() {
        let rt = tiny(2, 1);
        let (a, b) = rt.scope(|rs| {
            let lo = rs.launch(0, 0, 0..2, |b| b);
            let hi = rs.launch(1, 0, 2..4, |b| b);
            (lo.wait(), hi.wait())
        });
        assert_eq!(a, vec![0, 1]);
        assert_eq!(b, vec![2, 3]);
    }

    #[test]
    fn stream_jobs_run_in_submission_order() {
        let rt = tiny(1, 1);
        let log = Mutex::new(Vec::new());
        rt.scope(|rs| {
            for i in 0..8 {
                let log = &log;
                rs.submit(0, 0, move || log.lock().unwrap().push(i));
            }
            rs.record(0, 0).wait();
        });
        assert_eq!(log.into_inner().unwrap(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn events_record_wait_and_elapse() {
        let rt = tiny(1, 2);
        rt.scope(|rs| {
            let start = rs.record(0, 0);
            rs.submit(0, 0, || {
                std::thread::sleep(std::time::Duration::from_millis(2))
            });
            let end = rs.record(0, 0);
            assert!(start.elapsed_ms(&end).is_none() || end.is_complete());
            end.wait();
            assert!(start.is_complete() && end.is_complete());
            let ms = start.elapsed_ms(&end).expect("both recorded");
            assert!(ms >= 1.0, "slept 2ms but elapsed {ms}");
        });
    }

    #[test]
    fn counter_board_charges_and_drains_per_device() {
        let rt = tiny(2, 2);
        let mut c = KernelCounters::default();
        c.warp_instruction(u32::MAX);
        rt.charge(0, 0, &c);
        rt.charge(0, 1, &c);
        rt.charge(1, 0, &c);
        assert_eq!(rt.stream_counters(0, 1), c);
        assert_eq!(
            rt.device_counters(0).alu_instructions,
            2 * c.alu_instructions
        );
        let drained = rt.take_device_counters();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].alu_instructions, 2 * c.alu_instructions);
        assert_eq!(drained[1], c);
        // Board is zeroed afterwards.
        assert_eq!(rt.device_counters(0), KernelCounters::default());
    }

    #[test]
    fn modeled_ms_takes_max_over_devices() {
        let rt = tiny(2, 1);
        let mut big = KernelCounters::default();
        let mut small = KernelCounters::default();
        for _ in 0..10_000 {
            big.warp_instruction(u32::MAX);
        }
        small.warp_instruction(u32::MAX);
        rt.charge(0, 0, &small);
        rt.charge(1, 0, &big);
        let model = DeviceModel::default();
        let expect = model.modeled_ms(&big);
        assert_eq!(rt.modeled_ms(&model), expect);
    }

    #[test]
    fn profiled_runtime_records_launch_spans_and_boards() {
        let rt = Runtime::with_instrumentation(
            RuntimeConfig {
                num_devices: 2,
                streams_per_device: 2,
                device: DeviceConfig {
                    num_blocks: 2,
                    threads_per_block: 32,
                    host_threads: 1,
                },
                sim_workers: 0,
            },
            |_| Sanitizer::off(),
            Profiler::new(2, 2),
        );
        rt.scope(|rs| {
            let mut handles = Vec::new();
            for d in 0..2 {
                for s in 0..2 {
                    handles.push(rs.launch_named(d, s, 0..2, "tiny", |b| b));
                }
            }
            for h in handles {
                h.wait();
            }
        });
        let mut c = KernelCounters::default();
        c.warp_load(32, 4);
        rt.charge(1, 0, &c);
        let report = rt.profiler().report();
        report.validate().expect("live profile is well-formed");
        assert_eq!(report.spans.len(), 4);
        assert!(report.spans.iter().all(|s| s.name == "tiny"));
        assert_eq!(report.streams.len(), 1);
        assert_eq!(report.streams[0].counters.mem_transactions, 4);
        // The charge also landed on the ordinary counter board.
        assert_eq!(rt.stream_counters(1, 0).mem_transactions, 4);
    }

    #[test]
    fn unprofiled_launch_records_nothing() {
        let rt = tiny(1, 1);
        rt.scope(|rs| {
            rs.launch(0, 0, 0..4, |b| b).wait();
        });
        assert!(!rt.profiler().enabled());
        assert_eq!(rt.profiler().report(), gsword_prof::ProfReport::default());
    }

    #[test]
    #[should_panic(expected = "stream job panicked")]
    fn stream_panic_poisons_the_scope() {
        let rt = tiny(1, 1);
        rt.scope(|rs| {
            rs.submit(0, 0, || panic!("kernel exploded"));
            rs.record(0, 0).wait();
        });
    }

    fn with_workers(workers: usize, blocks: usize) -> Runtime {
        Runtime::new(RuntimeConfig {
            num_devices: 1,
            streams_per_device: 1,
            device: DeviceConfig {
                num_blocks: blocks,
                threads_per_block: 32,
                host_threads: 1,
            },
            sim_workers: workers,
        })
    }

    #[test]
    fn sim_workers_auto_resolves_to_host_threads() {
        assert_eq!(tiny(1, 1).sim_workers(), 1);
        assert_eq!(with_workers(8, 4).sim_workers(), 8);
    }

    #[test]
    fn block_pool_matches_serial_results_on_any_worker_count() {
        let want: Vec<usize> = (0..37).map(|b| b * 3 + 1).collect();
        for workers in [1, 2, 3, 8] {
            let rt = with_workers(workers, 37);
            let out = rt.scope(|rs| rs.launch(0, 0, 0..37, |b| b * 3 + 1).wait());
            assert_eq!(out, want, "workers={workers}");
        }
    }

    #[test]
    fn block_pool_is_reused_across_scopes_and_launches() {
        let rt = with_workers(4, 16);
        for _ in 0..3 {
            let (a, b) = rt.scope(|rs| {
                let a = rs.launch(0, 0, 0..16, |b| b);
                let b = rs.launch(0, 0, 4..12, |b| b * 2);
                (a.wait(), b.wait())
            });
            assert_eq!(a, (0..16).collect::<Vec<_>>());
            assert_eq!(b, (4..12).map(|b| b * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_launch_records_worker_spans() {
        let rt = Runtime::with_instrumentation(
            RuntimeConfig {
                num_devices: 1,
                streams_per_device: 1,
                device: DeviceConfig {
                    num_blocks: 8,
                    threads_per_block: 32,
                    host_threads: 1,
                },
                sim_workers: 4,
            },
            |_| Sanitizer::off(),
            Profiler::new(1, 1),
        );
        rt.scope(|rs| {
            rs.launch_named(0, 0, 0..8, "par", |b| b).wait();
        });
        let report = rt.profiler().report();
        report.validate().expect("worker tracks stay well-formed");
        let stream_spans = report
            .spans
            .iter()
            .filter(|s| matches!(s.track, Track::Stream { .. }))
            .count();
        let worker_spans = report
            .spans
            .iter()
            .filter(|s| matches!(s.track, Track::Worker { .. }))
            .count();
        assert_eq!(stream_spans, 1);
        assert!(
            (1..=4).contains(&worker_spans),
            "every participating worker records exactly one span, got {worker_spans}"
        );
    }

    #[test]
    #[should_panic(expected = "stream job panicked")]
    fn parallel_block_panic_poisons_the_scope() {
        let rt = with_workers(4, 8);
        rt.scope(|rs| {
            // A panicked launch never records its event, so don't wait on
            // the handle — the scope's drop drains the stream and re-raises.
            let _h = rs.launch(0, 0, 0..8, |b| {
                if b == 5 {
                    panic!("block exploded");
                }
                b
            });
        });
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn rejects_zero_devices() {
        Runtime::new(RuntimeConfig {
            num_devices: 0,
            ..RuntimeConfig::default()
        });
    }
}
