//! The streaming refine kernel hoists its candidate-element loads out of
//! the per-step loop: one `warp_load_rounds` over each lane's remaining
//! candidate tail replaces the per-step `warp_load`. The rewrite is only
//! sound because it is charge-preserving — counters are additive and the
//! per-round active-lane sets are unchanged (a lane active in round `r`
//! was active in every earlier round, so the tail of lane `l` occupies
//! rounds `0..tail_len(l)` with no gaps). This test replays both
//! schedules on ragged tails and asserts bit-identical snapshots.

use gsword_simt::memory::{warp_load, warp_load_rounds, LaneAddr, Region};
use gsword_simt::warp::{Lanes, WarpSanitizer, WARP_SIZE};
use gsword_simt::KernelCounters;

#[test]
fn hoisted_candidate_loads_are_charge_identical() {
    // Ragged tails with the prefix-active property the kernel guarantees.
    let tail_lens: Vec<usize> = (0..WARP_SIZE).map(|l| (l * 7 + 3) % 23).collect();
    let addr_of = |lane: usize, r: usize| 64 * lane + 4 * r; // overlapping lines
    let probes_of = |lane: usize, r: usize| -> Vec<usize> {
        (0..(lane + r) % 4).map(|p| 4096 + 8 * lane + p).collect()
    };
    let rounds = tail_lens.iter().copied().max().unwrap();
    let san = WarpSanitizer::disabled();

    // Interleaved schedule — the shape the kernel had before the hoist:
    // per step, load the candidate element, then charge the membership
    // probes it triggered.
    let mut interleaved = KernelCounters::default();
    for r in 0..rounds {
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        let mut probe_bufs: Vec<Vec<usize>> = vec![Vec::new(); WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if r < tail_lens[lane] {
                addrs[lane] = Some((Region::LOCAL, addr_of(lane, r)));
                probe_bufs[lane] = probes_of(lane, r);
            }
        }
        warp_load(&mut interleaved, &san, &addrs);
        warp_load_rounds(&mut interleaved, &san, Region::LOCAL, &probe_bufs);
    }

    // Hoisted schedule — all candidate loads up front as lockstep rounds
    // over the per-lane tails, then the same per-step probe batches.
    let mut hoisted = KernelCounters::default();
    let tails: Vec<Vec<usize>> = (0..WARP_SIZE)
        .map(|lane| (0..tail_lens[lane]).map(|r| addr_of(lane, r)).collect())
        .collect();
    warp_load_rounds(&mut hoisted, &san, Region::LOCAL, &tails);
    for r in 0..rounds {
        let mut probe_bufs: Vec<Vec<usize>> = vec![Vec::new(); WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if r < tail_lens[lane] {
                probe_bufs[lane] = probes_of(lane, r);
            }
        }
        warp_load_rounds(&mut hoisted, &san, Region::LOCAL, &probe_bufs);
    }

    assert_eq!(hoisted.snapshot(), interleaved.snapshot());
    assert_eq!(hoisted.mem_transactions, interleaved.mem_transactions);
    assert_eq!(hoisted.tx_histogram, interleaved.tx_histogram);
}
