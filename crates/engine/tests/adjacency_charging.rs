//! Byte-granular adjacency charging: membership probes into the compressed
//! image report the byte offsets they touch (restart-table reads + decoded
//! varint entry starts), and `warp_load_bytes` coalesces them into 128-byte
//! line transactions under `Region::ADJ` exactly like word accesses into
//! the candidate arrays.

use gsword_graph::datasets;
use gsword_simt::memory::{warp_load_bytes, LaneAddr, Region};
use gsword_simt::warp::{Lanes, WarpSanitizer, WARP_SIZE};
use gsword_simt::KernelCounters;

#[test]
fn compressed_probe_offsets_charge_coalesced_adjacency_lines() {
    let g = datasets::dataset("yeast");
    let c = gsword_graph::CompressedGraph::from_graph(&g);

    // The hub's adjacency spans multiple blocks; 32 lanes each probe a
    // different target against it, recording every byte they touch.
    let hub = (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.degree(v))
        .unwrap();
    let nb = c.neighbors(hub);
    let mut probe_bufs: Vec<Vec<usize>> = vec![Vec::new(); WARP_SIZE];
    for (lane, buf) in probe_bufs.iter_mut().enumerate() {
        let target = (lane * 97) as u32 % g.num_vertices() as u32;
        nb.contains_with_probes(target, |byte_off| buf.push(byte_off));
        assert!(!buf.is_empty(), "every probe touches at least one byte");
    }

    // Charge in lockstep rounds, as the refine kernel does for candidate
    // probes: round r loads every lane's r-th recorded byte offset.
    let san = WarpSanitizer::disabled();
    let mut ctr = KernelCounters::default();
    let rounds = probe_bufs.iter().map(Vec::len).max().unwrap();
    let mut total_tx = 0u64;
    for r in 0..rounds {
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        for (lane, buf) in probe_bufs.iter().enumerate() {
            if let Some(&b) = buf.get(r) {
                addrs[lane] = Some((Region::ADJ, b));
            }
        }
        total_tx += warp_load_bytes(&mut ctr, &san, &addrs);
    }

    assert!(total_tx > 0);
    // Early rounds read the same restart table / first blocks, so the
    // charge must beat the fully-scattered worst case of one line per
    // probe per lane.
    let probes: usize = probe_bufs.iter().map(Vec::len).sum();
    assert!(
        total_tx < probes as u64,
        "byte probes must coalesce: {total_tx} transactions for {probes} probes"
    );
    assert_eq!(ctr.mem_instructions, rounds as u64);
}
