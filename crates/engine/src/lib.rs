//! The gSWORD device engine: RW-estimator kernels on the software SIMT
//! device.
//!
//! This crate is the paper's primary contribution:
//!
//! * **Algorithm 1** — the Refine–Sample–Validate kernel with block-shared
//!   sample pools and *sample synchronization* ([`kernel`]).
//! * **Algorithm 2** — *sample inheritance*: lanes whose samples are
//!   invalidated inherit a valid partial sample from a warp sibling, with
//!   the recursive-estimator probability adjustment that keeps the estimate
//!   unbiased (Theorem 1).
//! * **Algorithm 3** — *warp streaming*: large Refine workloads are
//!   streamed across the warp, one candidate per lane, feeding an A-Res
//!   weighted reservoir so the sampled vertex keeps the exact distribution
//!   (Theorem 2).
//! * The *iteration synchronization* alternative (Section 3.2's
//!   micro-benchmark) and the NextDoor-style GPU baseline (static per-lane
//!   sample assignment, no pool, no warp optimizations).
//!
//! Run any configuration through [`run_engine`]; ablation presets
//! ([`EngineConfig::o0`] / [`EngineConfig::o1`] / [`EngineConfig::o2`])
//! reproduce Figure 12.
//!
//! Execution is layered: [`kernel`] defines *what* runs — the RSV and
//! baseline kernels as first-class [`Kernel`] values — while [`runtime`]
//! decides *where and when*: it shards a fixed sample budget over the
//! devices and streams of a [`gsword_simt::Runtime`] via [`LaunchSpec`]
//! descriptors and merges per-device results back into one
//! [`EngineReport`]. All device launches go through the runtime module
//! (lint-enforced).

pub mod config;
pub mod kernel;
pub mod runtime;

pub use config::{EngineConfig, EngineReport, PoolMode, SyncMode};
pub use kernel::{kernel_for_config, BaselineKernel, EstimateKernel, RsvKernel};
pub use runtime::{
    plan_shards, run_engine, runtime_for, spawn_estimate, spawn_kernel, split_budget, EstimateRun,
    Kernel, KernelRun, LaunchSpec,
};
