//! The warp-level RSV kernels (Algorithms 1–3) as first-class values.
//!
//! Kernels are written at warp granularity: every "instruction" is a loop
//! over the 32-lane arrays, cross-lane communication goes through the warp
//! primitives, and every candidate-graph access is charged to the
//! coalescing memory model. Functional results (the HT estimate) are exact;
//! counters drive the modeled device time.
//!
//! This module defines *what* runs: [`RsvKernel`] (gSWORD's RSV kernel
//! under any flag combination) and [`BaselineKernel`] (the NextDoor-style
//! static/iteration-sync baseline), both implementing the
//! [`Kernel`](crate::runtime::Kernel) trait. *Where and when* they run —
//! devices, streams, shards — is the [`crate::runtime`] module's job.

use gsword_estimators::{Estimate, Estimator, QueryCtx, SampleState, Segment};
use gsword_graph::{intersect, VertexId};
use gsword_simt::memory::{warp_load, warp_load_rounds, warp_scan, LaneAddr};
use gsword_simt::warp::{self, Lanes, WarpMask};
use gsword_simt::{
    Device, DeviceConfig, KernelCounters, Region, SamplePool, WarpSanitizer, WARP_SIZE,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::config::{EngineConfig, PoolMode, SyncMode};
use crate::runtime::{split_budget, Kernel};

/// Kernel name reported by the sanitizer, derived from the configured
/// discipline and optimizations (mirrors compute-sanitizer's per-kernel
/// attribution).
pub(crate) fn kernel_name(cfg: &EngineConfig) -> String {
    let sync = match cfg.sync {
        SyncMode::SampleSync => "sample-sync",
        SyncMode::IterationSync => "iter-sync",
    };
    let mut name = format!("rsv_{sync}");
    if cfg.inheritance {
        name.push_str("+inherit");
    }
    if cfg.streaming {
        name.push_str("+stream");
    }
    name
}

/// The gSWORD RSV kernel as a first-class value: Algorithms 1–3 under the
/// configuration's sync/pool/optimization flags, bound to a query context
/// and estimator but to no particular device.
pub struct RsvKernel<'e, 'c, E: ?Sized> {
    ctx: &'e QueryCtx<'c>,
    est: &'e E,
    cfg: EngineConfig,
}

// Manual impls: `derive` would demand `E: Clone`/`E: Copy`, but only
// references to `E` are stored.
impl<E: ?Sized> Clone for RsvKernel<'_, '_, E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E: ?Sized> Copy for RsvKernel<'_, '_, E> {}

impl<'e, 'c, E: Estimator + ?Sized> RsvKernel<'e, 'c, E> {
    /// Bind the RSV kernel to a query context, estimator, and flags.
    pub fn new(ctx: &'e QueryCtx<'c>, est: &'e E, cfg: &EngineConfig) -> Self {
        RsvKernel {
            ctx,
            est,
            cfg: *cfg,
        }
    }
}

impl<E: Estimator + ?Sized> Kernel for RsvKernel<'_, '_, E> {
    type BlockOut = (Estimate, KernelCounters, u64);

    fn name(&self) -> String {
        kernel_name(&self.cfg)
    }

    fn grid(&self) -> DeviceConfig {
        self.cfg.device
    }

    fn run_block(&self, device: &Device, block: usize, samples: u64, seed: u64) -> Self::BlockOut {
        run_block(self.ctx, self.est, &self.cfg, device, block, samples, seed)
    }

    fn block_counters(out: &Self::BlockOut) -> KernelCounters {
        out.1
    }
}

/// The NextDoor-style GPU baseline as its own kernel value: static
/// per-lane sample assignment and iteration synchronization, no warp
/// optimizations — whatever the incoming flags said.
pub struct BaselineKernel<'e, 'c, E: ?Sized>(RsvKernel<'e, 'c, E>);

impl<E: ?Sized> Clone for BaselineKernel<'_, '_, E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E: ?Sized> Copy for BaselineKernel<'_, '_, E> {}

impl<'e, 'c, E: Estimator + ?Sized> BaselineKernel<'e, 'c, E> {
    /// Bind the baseline kernel; the discipline flags are forced to the
    /// NextDoor shape regardless of what `cfg` carries.
    pub fn new(ctx: &'e QueryCtx<'c>, est: &'e E, cfg: &EngineConfig) -> Self {
        let cfg = EngineConfig {
            pool: PoolMode::Static,
            sync: SyncMode::IterationSync,
            inheritance: false,
            streaming: false,
            ..*cfg
        };
        BaselineKernel(RsvKernel { ctx, est, cfg })
    }
}

impl<E: Estimator + ?Sized> Kernel for BaselineKernel<'_, '_, E> {
    type BlockOut = (Estimate, KernelCounters, u64);

    fn name(&self) -> String {
        "nextdoor_static+iter-sync".to_string()
    }

    fn grid(&self) -> DeviceConfig {
        self.0.cfg.device
    }

    fn run_block(&self, device: &Device, block: usize, samples: u64, seed: u64) -> Self::BlockOut {
        self.0.run_block(device, block, samples, seed)
    }

    fn block_counters(out: &Self::BlockOut) -> KernelCounters {
        out.1
    }
}

/// Either estimator kernel, selected from an [`EngineConfig`].
pub enum EstimateKernel<'e, 'c, E: ?Sized> {
    /// gSWORD's RSV kernel (any flag combination outside the baseline's).
    Rsv(RsvKernel<'e, 'c, E>),
    /// The NextDoor-style baseline.
    Baseline(BaselineKernel<'e, 'c, E>),
}

impl<E: ?Sized> Clone for EstimateKernel<'_, '_, E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E: ?Sized> Copy for EstimateKernel<'_, '_, E> {}

/// Pick the kernel a configuration describes: the exact NextDoor flag
/// shape routes to [`BaselineKernel`], everything else to [`RsvKernel`].
pub fn kernel_for_config<'e, 'c, E: Estimator + ?Sized>(
    ctx: &'e QueryCtx<'c>,
    est: &'e E,
    cfg: &EngineConfig,
) -> EstimateKernel<'e, 'c, E> {
    let baseline = cfg.pool == PoolMode::Static
        && cfg.sync == SyncMode::IterationSync
        && !cfg.inheritance
        && !cfg.streaming;
    if baseline {
        EstimateKernel::Baseline(BaselineKernel::new(ctx, est, cfg))
    } else {
        EstimateKernel::Rsv(RsvKernel::new(ctx, est, cfg))
    }
}

impl<E: Estimator + ?Sized> Kernel for EstimateKernel<'_, '_, E> {
    type BlockOut = (Estimate, KernelCounters, u64);

    fn name(&self) -> String {
        match self {
            EstimateKernel::Rsv(k) => k.name(),
            EstimateKernel::Baseline(k) => k.name(),
        }
    }

    fn grid(&self) -> DeviceConfig {
        match self {
            EstimateKernel::Rsv(k) => k.grid(),
            EstimateKernel::Baseline(k) => k.grid(),
        }
    }

    fn run_block(&self, device: &Device, block: usize, samples: u64, seed: u64) -> Self::BlockOut {
        match self {
            EstimateKernel::Rsv(k) => k.run_block(device, block, samples, seed),
            EstimateKernel::Baseline(k) => k.run_block(device, block, samples, seed),
        }
    }

    fn block_counters(out: &Self::BlockOut) -> KernelCounters {
        out.1
    }
}

fn run_block<E: Estimator + ?Sized>(
    ctx: &QueryCtx<'_>,
    est: &E,
    cfg: &EngineConfig,
    device: &Device,
    block: usize,
    block_samples: u64,
    seed: u64,
) -> (Estimate, KernelCounters, u64) {
    let warps = cfg.device.warps_per_block();
    let pool = SamplePool::new(block_samples);
    let mut estimate = Estimate::default();
    let mut counters = KernelCounters::default();
    let mut inherited = 0u64;

    // Static mode: pre-split the block's share across warps (and lanes
    // inside the warp executor) — the NextDoor-style assignment.
    let warp_quota = split_budget(block_samples, warps);

    for (w, &quota) in warp_quota.iter().enumerate() {
        let san = device.warp_sanitizer(block, w);
        let mut exec = WarpExec::new(ctx, est, cfg, san, block, w, seed);
        match cfg.pool {
            PoolMode::BlockPool => exec.run(Tasks::pool(&pool)),
            PoolMode::Static => exec.run(Tasks::static_split(quota)),
        }
        estimate.merge(&exec.finish_estimate());
        counters.merge(&exec.ctr);
        inherited += exec.inherited;
    }
    (estimate, counters, inherited)
}

/// Task source for a warp: the block pool or static per-lane quotas.
#[allow(clippy::large_enum_variant)] // short-lived, one per warp execution
enum Tasks<'p> {
    Pool(&'p SamplePool),
    Static { remaining: [u64; WARP_SIZE] },
}

impl<'p> Tasks<'p> {
    fn pool(p: &'p SamplePool) -> Self {
        Tasks::Pool(p)
    }

    fn static_split(quota: u64) -> Self {
        let per_lane = quota / WARP_SIZE as u64;
        let rem = (quota % WARP_SIZE as u64) as usize;
        let mut remaining = [per_lane; WARP_SIZE];
        for slot in remaining.iter_mut().take(rem) {
            *slot += 1;
        }
        Tasks::Static { remaining }
    }

    /// Try to hand lane `lane` a new sample task. The pool path goes
    /// through the sanitized atomic fetch so racecheck sees the shared
    /// cursor access.
    fn fetch(&mut self, lane: usize, san: &WarpSanitizer) -> bool {
        match self {
            Tasks::Pool(p) => p.fetch_sanitized(san).is_some(),
            Tasks::Static { remaining } => {
                if remaining[lane] > 0 {
                    remaining[lane] -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Iterate the set lane indices of a mask.
#[inline]
fn lanes_of(mask: WarpMask) -> impl Iterator<Item = usize> {
    (0..WARP_SIZE).filter(move |&i| mask & (1 << i) != 0)
}

/// Per-iteration candidate information of one lane.
#[derive(Clone, Copy)]
struct LaneCand<'a> {
    cand: &'a [VertexId],
    addr: usize,
    region: Region,
}

/// Warp executor: owns lane RNGs, scratch, and counter state for one warp.
struct WarpExec<'e, 'c, E: ?Sized> {
    ctx: &'e QueryCtx<'c>,
    est: &'e E,
    cfg: &'e EngineConfig,
    rng: Vec<SmallRng>,
    ctr: KernelCounters,
    /// Per-warp sanitizer handle (the disabled handle unless the engine
    /// was configured with a non-OFF [`gsword_simt::SanitizerMode`]).
    san: WarpSanitizer,
    weight_sum: f64,
    weight_sq_sum: f64,
    leaves: u64,
    fetched: u64,
    /// Inherited continuations started (Algorithm 2 events × idle lanes) —
    /// the paper counts these as collected samples.
    inherited: u64,
    /// Per-lane refined-candidate buffers (device "scratch" memory).
    scratch: Vec<Vec<VertexId>>,
    /// Per-lane backward segments, resolved once per iteration.
    segs: Vec<Vec<Segment<'c>>>,
    /// Per-lane gallop cursors, one per backward segment, reset at every
    /// refine call. Candidates scan in ascending order, so each cursor
    /// advances monotonically through its segment — the engine's actual
    /// probe pattern, which the memory model is charged with.
    cursors: Vec<Vec<usize>>,
    /// Per-lane probe element addresses recorded by the current refine or
    /// validate step, drained in lockstep rounds by
    /// [`WarpExec::charge_recorded_probes`].
    probe_bufs: Vec<Vec<usize>>,
}

impl<'e, 'c, E: Estimator + ?Sized> WarpExec<'e, 'c, E> {
    fn new(
        ctx: &'e QueryCtx<'c>,
        est: &'e E,
        cfg: &'e EngineConfig,
        san: WarpSanitizer,
        block: usize,
        warp: usize,
        seed: u64,
    ) -> Self {
        let rng = (0..WARP_SIZE)
            .map(|lane| {
                let stream = (block as u64) << 32 | (warp as u64) << 8 | lane as u64;
                SmallRng::seed_from_u64(seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
            })
            .collect();
        WarpExec {
            ctx,
            est,
            cfg,
            rng,
            ctr: KernelCounters::default(),
            san,
            weight_sum: 0.0,
            weight_sq_sum: 0.0,
            leaves: 0,
            fetched: 0,
            inherited: 0,
            scratch: (0..WARP_SIZE).map(|_| Vec::new()).collect(),
            segs: (0..WARP_SIZE).map(|_| Vec::new()).collect(),
            cursors: (0..WARP_SIZE).map(|_| Vec::new()).collect(),
            probe_bufs: (0..WARP_SIZE).map(|_| Vec::new()).collect(),
        }
    }

    fn finish_estimate(&self) -> Estimate {
        Estimate {
            weight_sum: self.weight_sum,
            weight_sq_sum: self.weight_sq_sum,
            samples: self.fetched,
            valid: self.leaves,
        }
    }

    fn run(&mut self, mut tasks: Tasks<'_>) {
        match self.cfg.sync {
            SyncMode::SampleSync => self.run_sample_sync(&mut tasks),
            SyncMode::IterationSync => self.run_iteration_sync(&mut tasks),
        }
    }

    // ------------------------------------------------------------------
    // Sample synchronization (Algorithm 1; + Algorithms 2 and 3 when the
    // inheritance/streaming flags are on).
    // ------------------------------------------------------------------
    fn run_sample_sync(&mut self, tasks: &mut Tasks<'_>) {
        loop {
            let mut s: Lanes<SampleState> = [SampleState::new(); WARP_SIZE];
            let mut mask: WarpMask = 0;
            for lane in 0..WARP_SIZE {
                if tasks.fetch(lane, &self.san) {
                    mask |= 1 << lane;
                    self.fetched += 1;
                }
            }
            if mask == 0 {
                break;
            }
            self.ctr.warp_instruction(mask); // the FetchSampleTask atomic

            for d in 0..self.ctx.len() {
                if mask == 0 {
                    break;
                }
                mask = self.rsv_iteration(&mut s, mask, d);
            }
            for lane in lanes_of(mask) {
                let w = s[lane].ht_weight();
                self.weight_sum += w;
                self.weight_sq_sum += w * w;
                self.leaves += 1;
            }
        }
    }

    /// One lockstep RSV iteration for all active lanes at position `d`.
    /// Returns the mask of lanes still alive afterwards.
    fn rsv_iteration(&mut self, s: &mut Lanes<SampleState>, mask: WarpMask, d: usize) -> WarpMask {
        // Declare warp convergence: `mask` is the executor's ground truth
        // for which lanes participate in this iteration's `*_sync` ops.
        self.san.set_active(mask);
        // --- GetMinCandidate: resolve backward segments per lane ---------
        let mut cand: Lanes<Option<LaneCand<'c>>> = [None; WARP_SIZE];
        for lane in lanes_of(mask) {
            self.segs[lane].clear();
            // Work around simultaneous &mut self.segs[lane] and &self.ctx.
            let mut seg_buf = std::mem::take(&mut self.segs[lane]);
            self.ctx
                .backward_segments(s[lane].prefix(), d, &mut seg_buf);
            let lc = if d == 0 {
                let (set, addr) = self.ctx.root_candidates();
                LaneCand {
                    cand: set,
                    addr,
                    region: Region::GLOBAL,
                }
            } else {
                let (set, addr) = QueryCtx::min_of_segments(&seg_buf);
                LaneCand {
                    cand: set,
                    addr,
                    region: Region::LOCAL,
                }
            };
            self.segs[lane] = seg_buf;
            cand[lane] = Some(lc);
        }
        self.charge_get_min(mask, d);

        // --- Refine + Sample ---------------------------------------------
        // Positions without backward constraints (the root) have an
        // identity Refine: sample straight from the candidate set.
        let mut chosen: Lanes<Option<(VertexId, f64)>> = [None; WARP_SIZE];
        if self.est.needs_refine() && !self.ctx.backward(d).is_empty() {
            if self.cfg.streaming {
                self.streaming_refine_sample(mask, &cand, &mut chosen);
            } else {
                self.serial_refine_sample(mask, &cand, &mut chosen);
            }
        } else {
            self.direct_sample(mask, &cand, &mut chosen);
        }

        // --- Validate ------------------------------------------------------
        let mut valid = [false; WARP_SIZE];
        for lane in lanes_of(mask) {
            if let Some((v, _)) = chosen[lane] {
                valid[lane] = self.est.validate(&self.segs[lane], &s[lane], v);
            }
        }
        self.charge_validate(mask, &chosen);
        for lane in lanes_of(mask) {
            if valid[lane] {
                let (v, p) = chosen[lane].expect("valid lane has a sampled vertex");
                s[lane].push(v, p);
            }
        }

        // --- Sample inheritance (Algorithm 2) -----------------------------
        let valid_ballot = warp::ballot(&mut self.ctr, &self.san, mask, &valid);
        if self.cfg.inheritance && valid_ballot != 0 && valid_ballot != mask {
            let parent = warp::first_lane(valid_ballot).expect("non-empty ballot");
            let idle = (mask & !valid_ballot).count_ones();
            // Recursive-estimator adjustment: idle+1 lanes continue from the
            // parent's partial instance, so each continuation is averaged
            // (the paper's Algorithm 2 line 5; see DESIGN.md for the
            // direction of the adjustment).
            s[parent].prob *= f64::from(idle + 1);
            self.inherited += u64::from(idle);
            let ps = warp::shfl(&mut self.ctr, &self.san, mask, s, parent);
            for lane in lanes_of(mask & !valid_ballot) {
                s[lane] = ps;
            }
            mask
        } else {
            valid_ballot
        }
    }

    /// WanderJoin's Sample step: uniform draw from the minimum candidate
    /// set, one element load per lane.
    fn direct_sample(
        &mut self,
        mask: WarpMask,
        cand: &Lanes<Option<LaneCand<'c>>>,
        chosen: &mut Lanes<Option<(VertexId, f64)>>,
    ) {
        let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
        for lane in lanes_of(mask) {
            let lc = cand[lane].expect("active lane has candidates resolved");
            if lc.cand.is_empty() {
                continue;
            }
            let idx = self.rng[lane].gen_range(0..lc.cand.len());
            chosen[lane] = Some((lc.cand[idx], 1.0 / lc.cand.len() as f64));
            addrs[lane] = Some((lc.region, lc.addr + idx));
        }
        warp_load(&mut self.ctr, &self.san, &addrs);
    }

    /// Alley's Refine without streaming: every lane scans its own candidate
    /// array serially; the warp advances in lockstep, so lanes with short
    /// arrays idle until the longest lane finishes (refine imbalance).
    fn serial_refine_sample(
        &mut self,
        mask: WarpMask,
        cand: &Lanes<Option<LaneCand<'c>>>,
        chosen: &mut Lanes<Option<(VertexId, f64)>>,
    ) {
        let max_clen = lanes_of(mask)
            .map(|lane| cand[lane].map_or(0, |c| c.cand.len()))
            .max()
            .unwrap_or(0);
        for lane in lanes_of(mask) {
            self.scratch[lane].clear();
        }
        self.reset_cursors(mask);
        for t in 0..max_clen {
            let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
            let mut step_mask: WarpMask = 0;
            for lane in lanes_of(mask) {
                let lc = cand[lane].expect("active lane");
                if t < lc.cand.len() {
                    step_mask |= 1 << lane;
                    addrs[lane] = Some((lc.region, lc.addr + t));
                }
            }
            if step_mask == 0 {
                break;
            }
            warp_load(&mut self.ctr, &self.san, &addrs);
            self.clear_probe_bufs();
            for lane in lanes_of(step_mask) {
                let lc = cand[lane].expect("active lane");
                self.record_lane_probes(lane, lc.cand[t]);
            }
            self.charge_recorded_probes();
            for lane in lanes_of(step_mask) {
                let lc = cand[lane].expect("active lane");
                let v = lc.cand[t];
                // Functional refine: engine scratch keeps survivors.
                let mut scratch = std::mem::take(&mut self.scratch[lane]);
                if self.est.refine_one(&self.segs[lane], v) {
                    scratch.push(v);
                }
                self.scratch[lane] = scratch;
            }
        }
        for lane in lanes_of(mask) {
            let refined = &self.scratch[lane];
            if !refined.is_empty() {
                let idx = self.rng[lane].gen_range(0..refined.len());
                chosen[lane] = Some((refined[idx], 1.0 / refined.len() as f64));
            }
        }
    }

    /// Warp streaming (Algorithm 3): collaborative phase streams any lane's
    /// ≥32-candidate workload across the whole warp feeding an A-Res
    /// weighted reservoir; the independent phase drains the rest per lane.
    fn streaming_refine_sample(
        &mut self,
        mask: WarpMask,
        cand: &Lanes<Option<LaneCand<'c>>>,
        chosen: &mut Lanes<Option<(VertexId, f64)>>,
    ) {
        let mut cur_iter = [0usize; WARP_SIZE];
        let mut cur_v: Lanes<Option<VertexId>> = [None; WARP_SIZE];
        let mut cur_total = [0.0f64; WARP_SIZE];

        let clen = |lane: usize| cand[lane].map_or(0, |c| c.cand.len());

        // --- Collaborative phase -------------------------------------------
        loop {
            let mut pred = [false; WARP_SIZE];
            for lane in lanes_of(mask) {
                pred[lane] = clen(lane) - cur_iter[lane] >= WARP_SIZE;
            }
            if !warp::any(&mut self.ctr, &self.san, mask, &pred) {
                break;
            }
            let leader = warp::first_lane(warp::ballot(&mut self.ctr, &self.san, mask, &pred))
                .expect("any() guaranteed a qualifying lane");
            let lc = cand[leader].expect("leader is active");
            let base = cur_iter[leader];

            // All 32 physical lanes serve as workers on the leader's chunk
            // (shfl of the leader's sample and candidate pointer). The warp
            // reconverges to the full mask for the collaborative section.
            self.san.set_active(u32::MAX);
            self.ctr.warp_instruction(u32::MAX); // the two shfl broadcasts
            warp_scan(
                &mut self.ctr,
                &self.san,
                u32::MAX,
                lc.region,
                lc.addr + base,
                WARP_SIZE,
            );
            self.charge_streaming_probes(leader, lc.cand, base);

            let mut keys = [0.0f64; WARP_SIZE];
            let mut pass = [false; WARP_SIZE];
            for t in 0..WARP_SIZE {
                let v = lc.cand[base + t];
                if self.est.refine_one(&self.segs[leader], v) {
                    pass[t] = true;
                    // A-Res key for unit weight: r^(1/1) = r.
                    keys[t] = self.rng[t].gen::<f64>();
                }
            }
            let total_w = f64::from(warp::reduce_count(
                &mut self.ctr,
                &self.san,
                u32::MAX,
                &pass,
            ));
            if total_w > 0.0 {
                let winner = warp::reduce_max_by_key(&mut self.ctr, &self.san, u32::MAX, &keys)
                    .expect("full mask reduction");
                let v_star = lc.cand[base + winner];
                cur_total[leader] += total_w;
                if self.rng[leader].gen::<f64>() < total_w / cur_total[leader] {
                    cur_v[leader] = Some(v_star);
                }
            } else {
                self.ctr.warp_instruction(u32::MAX);
            }
            // Back to the divergent per-sample mask for the next round's
            // `any`/`ballot`.
            self.san.set_active(mask);
            cur_iter[leader] = base + WARP_SIZE;
        }

        // --- Independent phase ---------------------------------------------
        self.reset_cursors(mask);
        // Candidate element loads, batched: lane `l` walks its remaining
        // `clen(l) - cur_iter[l]` candidates in consecutive rounds with no
        // gaps (a lane active in round `r` was active in every earlier
        // round), so one `warp_load_rounds` over the per-lane tails replays
        // the per-step `warp_load` sequence bit-identically. Streaming
        // refine only runs at positions with backward constraints, where
        // every lane's candidate set lives in the local-CSR region.
        debug_assert!(
            lanes_of(mask).all(|l| cand[l].expect("active lane").region == Region::LOCAL),
            "refine candidates come from backward segments (LOCAL)"
        );
        self.clear_probe_bufs();
        {
            let bufs = &mut self.probe_bufs;
            for lane in lanes_of(mask) {
                let lc = cand[lane].expect("active lane");
                for t in cur_iter[lane]..lc.cand.len() {
                    bufs[lane].push(lc.addr + t);
                }
            }
        }
        warp_load_rounds(&mut self.ctr, &self.san, Region::LOCAL, &self.probe_bufs);
        loop {
            let mut step_mask: WarpMask = 0;
            for lane in lanes_of(mask) {
                if cur_iter[lane] < clen(lane) {
                    step_mask |= 1 << lane;
                }
            }
            if step_mask == 0 {
                break;
            }
            self.clear_probe_bufs();
            for lane in lanes_of(step_mask) {
                let lc = cand[lane].expect("active lane");
                self.record_lane_probes(lane, lc.cand[cur_iter[lane]]);
            }
            self.charge_recorded_probes();
            for lane in lanes_of(step_mask) {
                let lc = cand[lane].expect("active lane");
                let v = lc.cand[cur_iter[lane]];
                if self.est.refine_one(&self.segs[lane], v) {
                    cur_total[lane] += 1.0;
                    if self.rng[lane].gen::<f64>() < 1.0 / cur_total[lane] {
                        cur_v[lane] = Some(v);
                    }
                }
                cur_iter[lane] += 1;
            }
        }

        for lane in lanes_of(mask) {
            if let Some(v) = cur_v[lane] {
                debug_assert!(cur_total[lane] >= 1.0);
                chosen[lane] = Some((v, 1.0 / cur_total[lane]));
            }
        }
    }

    // ------------------------------------------------------------------
    // Iteration synchronization (the Section 3.2 alternative): lanes
    // refill individually the moment their sample dies, so a warp mixes
    // depths — better utilization, scattered accesses.
    // ------------------------------------------------------------------
    fn run_iteration_sync(&mut self, tasks: &mut Tasks<'_>) {
        let mut s: Lanes<SampleState> = [SampleState::new(); WARP_SIZE];
        let mut depth = [0usize; WARP_SIZE];
        let mut mask: WarpMask = 0;
        loop {
            // Refill dead lanes.
            for lane in 0..WARP_SIZE {
                if mask & (1 << lane) == 0 && tasks.fetch(lane, &self.san) {
                    s[lane] = SampleState::new();
                    depth[lane] = 0;
                    mask |= 1 << lane;
                    self.fetched += 1;
                }
            }
            if mask == 0 {
                break;
            }
            self.ctr.warp_instruction(mask);
            mask = self.mixed_depth_iteration(&mut s, &mut depth, mask);
        }
    }

    /// One lockstep iteration where each lane works at its own depth.
    fn mixed_depth_iteration(
        &mut self,
        s: &mut Lanes<SampleState>,
        depth: &mut [usize; WARP_SIZE],
        mask: WarpMask,
    ) -> WarpMask {
        self.san.set_active(mask);
        // Resolve candidates per lane — segments now come from *different*
        // order positions, so the loads scatter across the candidate graph.
        let mut cand: Lanes<Option<LaneCand<'c>>> = [None; WARP_SIZE];
        for lane in lanes_of(mask) {
            let d = depth[lane];
            let mut seg_buf = std::mem::take(&mut self.segs[lane]);
            seg_buf.clear();
            self.ctx
                .backward_segments(s[lane].prefix(), d, &mut seg_buf);
            let lc = if d == 0 {
                let (set, addr) = self.ctx.root_candidates();
                LaneCand {
                    cand: set,
                    addr,
                    region: Region::GLOBAL,
                }
            } else {
                let (set, addr) = QueryCtx::min_of_segments(&seg_buf);
                LaneCand {
                    cand: set,
                    addr,
                    region: Region::LOCAL,
                }
            };
            self.segs[lane] = seg_buf;
            cand[lane] = Some(lc);
        }
        // Each lane resolves one local-CSR lookup per backward segment
        // (`segs[lane]` holds exactly the segments of its own depth);
        // replay the whole mixed-depth sequence in lockstep rounds.
        self.clear_probe_bufs();
        {
            let (segs, bufs) = (&self.segs, &mut self.probe_bufs);
            for lane in lanes_of(mask) {
                for &(_, addr) in &segs[lane] {
                    bufs[lane].push(addr);
                }
            }
        }
        warp_load_rounds(&mut self.ctr, &self.san, Region::LOCAL, &self.probe_bufs);

        // Refine + sample per lane (serial scans, mixed lengths).
        let mut chosen: Lanes<Option<(VertexId, f64)>> = [None; WARP_SIZE];
        let any_backward = lanes_of(mask).any(|lane| !self.ctx.backward(depth[lane]).is_empty());
        if self.est.needs_refine() && any_backward {
            self.serial_refine_sample_mixed(mask, &cand, &mut chosen);
        } else {
            self.direct_sample(mask, &cand, &mut chosen);
        }

        // Validate per lane.
        let mut next_mask = mask;
        for lane in lanes_of(mask) {
            let ok = match chosen[lane] {
                Some((v, p)) if self.est.validate(&self.segs[lane], &s[lane], v) => {
                    s[lane].push(v, p);
                    depth[lane] += 1;
                    if depth[lane] == self.ctx.len() {
                        let w = s[lane].ht_weight();
                        self.weight_sum += w;
                        self.weight_sq_sum += w * w;
                        self.leaves += 1;
                        false // completed; lane frees for a refill
                    } else {
                        true
                    }
                }
                _ => false,
            };
            if !ok {
                next_mask &= !(1 << lane);
            }
        }
        self.ctr.warp_instruction(mask);
        next_mask
    }

    /// Serial refine scan where each lane may be at a different depth.
    /// Lanes without backward constraints (position 0) sample directly
    /// under predication instead of scanning.
    fn serial_refine_sample_mixed(
        &mut self,
        mask: WarpMask,
        cand: &Lanes<Option<LaneCand<'c>>>,
        chosen: &mut Lanes<Option<(VertexId, f64)>>,
    ) {
        let mut direct: WarpMask = 0;
        for lane in lanes_of(mask) {
            if self.segs[lane].is_empty() {
                direct |= 1 << lane;
            }
        }
        if direct != 0 {
            self.direct_sample(direct, cand, chosen);
        }
        let mask = mask & !direct;
        let max_clen = lanes_of(mask)
            .map(|lane| cand[lane].map_or(0, |c| c.cand.len()))
            .max()
            .unwrap_or(0);
        for lane in lanes_of(mask) {
            self.scratch[lane].clear();
        }
        self.reset_cursors(mask);
        for t in 0..max_clen {
            let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
            let mut step_mask: WarpMask = 0;
            for lane in lanes_of(mask) {
                let lc = cand[lane].expect("active lane");
                if t < lc.cand.len() {
                    step_mask |= 1 << lane;
                    addrs[lane] = Some((lc.region, lc.addr + t));
                }
            }
            if step_mask == 0 {
                break;
            }
            warp_load(&mut self.ctr, &self.san, &addrs);
            // Probe loads at each lane's own depth: the actual gallop
            // traces into that lane's segments, which scatter further than
            // the sample-sync path because segment sets differ per lane.
            self.clear_probe_bufs();
            for lane in lanes_of(step_mask) {
                let lc = cand[lane].expect("active lane");
                self.record_lane_probes(lane, lc.cand[t]);
            }
            self.charge_recorded_probes();
            for lane in lanes_of(step_mask) {
                let lc = cand[lane].expect("active lane");
                let v = lc.cand[t];
                let mut scratch = std::mem::take(&mut self.scratch[lane]);
                if self.est.refine_one(&self.segs[lane], v) {
                    scratch.push(v);
                }
                self.scratch[lane] = scratch;
            }
        }
        for lane in lanes_of(mask) {
            let refined = &self.scratch[lane];
            if !refined.is_empty() {
                let idx = self.rng[lane].gen_range(0..refined.len());
                chosen[lane] = Some((refined[idx], 1.0 / refined.len() as f64));
            }
        }
    }

    // ------------------------------------------------------------------
    // Cost charging helpers.
    // ------------------------------------------------------------------

    /// GetMinCandidate loads: resolving each backward segment reads the
    /// per-edge candidate CSR (one lookup per backward edge, scattered
    /// across lanes because partial instances differ).
    fn charge_get_min(&mut self, mask: WarpMask, d: usize) {
        let k = self.ctx.backward(d).len();
        if k == 0 {
            self.ctr.warp_instruction(mask);
            return;
        }
        // All active lanes sit at depth `d`, so each holds exactly `k`
        // segments and the batched replay issues exactly `k` rounds.
        self.clear_probe_bufs();
        {
            let (segs, bufs) = (&self.segs, &mut self.probe_bufs);
            for lane in lanes_of(mask) {
                for &(_, base) in &segs[lane] {
                    bufs[lane].push(base);
                }
            }
        }
        warp_load_rounds(&mut self.ctr, &self.san, Region::CAND, &self.probe_bufs);
    }

    /// Reset every active lane's gallop cursors, one per backward segment.
    /// Called at the start of each refine scan so the following ascending
    /// candidate walk gallops forward from the segment heads.
    fn reset_cursors(&mut self, mask: WarpMask) {
        for lane in lanes_of(mask) {
            let k = self.segs[lane].len();
            self.cursors[lane].clear();
            self.cursors[lane].resize(k, 0);
        }
    }

    /// Clear the per-lane probe recordings of the previous step.
    fn clear_probe_bufs(&mut self) {
        for buf in &mut self.probe_bufs {
            buf.clear();
        }
    }

    /// Record the element addresses actually probed when testing `v`
    /// against every backward segment of `lane` except the minimum one the
    /// candidate was drawn from: a gallop (exponential probe + binary
    /// search) from the lane's persistent cursor into each segment.
    fn record_lane_probes(&mut self, lane: usize, v: VertexId) {
        let segs = &self.segs[lane];
        let min_idx = min_segment_index(segs);
        let cursors = &mut self.cursors[lane];
        let buf = &mut self.probe_bufs[lane];
        for (p, &(seg, base)) in segs.iter().enumerate() {
            if p == min_idx {
                continue;
            }
            intersect::gallop_member_probes(seg, &mut cursors[p], v, |off| buf.push(base + off));
        }
    }

    /// Charge the recorded per-lane probe addresses to the coalescing
    /// memory model in lockstep rounds: round `r` loads every lane's
    /// `r`-th probe, so cross-lane divergence in search depth shows up as
    /// partially-filled transactions exactly as it would on a device.
    fn charge_recorded_probes(&mut self) {
        warp_load_rounds(&mut self.ctr, &self.san, Region::LOCAL, &self.probe_bufs);
    }

    /// Collaborative-phase probes: the 32 worker lanes test 32 consecutive
    /// candidates of the leader against the *leader's* non-min backward
    /// segments — independent binary searches into shared segments, whose
    /// early probes land on the same midpoints and coalesce (the win
    /// streaming buys over per-lane scattered segments).
    fn charge_streaming_probes(&mut self, leader: usize, cand: &[VertexId], base: usize) {
        self.clear_probe_bufs();
        let segs = &self.segs[leader];
        let min_idx = min_segment_index(segs);
        let bufs = &mut self.probe_bufs;
        for (t, buf) in bufs.iter_mut().enumerate().take(WARP_SIZE) {
            let v = cand[base + t];
            for (p, &(seg, sbase)) in segs.iter().enumerate() {
                if p == min_idx {
                    continue;
                }
                intersect::member_with_probes(seg, v, |off| buf.push(sbase + off));
            }
        }
        self.charge_recorded_probes();
    }

    /// Validate loads: WanderJoin binary-searches every backward segment
    /// for the lane's sampled vertex (the actual search paths are
    /// charged); Alley's validate is a register-only duplicate check.
    fn charge_validate(&mut self, mask: WarpMask, chosen: &Lanes<Option<(VertexId, f64)>>) {
        if self.est.needs_refine() {
            self.ctr.warp_instruction(mask);
            return;
        }
        self.clear_probe_bufs();
        for lane in lanes_of(mask) {
            let Some((v, _)) = chosen[lane] else {
                continue;
            };
            let segs = &self.segs[lane];
            let buf = &mut self.probe_bufs[lane];
            for &(seg, base) in segs {
                intersect::member_with_probes(seg, v, |off| buf.push(base + off));
            }
        }
        self.charge_recorded_probes();
        self.ctr.warp_instruction(mask);
    }
}

/// Index of the first minimal-length backward segment — the one
/// GetMinCandidate drew the candidate set from, which Refine needn't
/// probe again.
#[inline]
fn min_segment_index(segs: &[Segment<'_>]) -> usize {
    let mut best = 0;
    for (i, (seg, _)) in segs.iter().enumerate() {
        if seg.len() < segs[best].0.len() {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineReport;
    use crate::runtime::run_engine;
    use gsword_candidate::{build_candidate_graph, BuildConfig, CandidateGraph};
    use gsword_estimators::{Alley, WanderJoin};
    use gsword_graph::{gen, GraphBuilder};
    use gsword_query::{quicksi_order, MatchingOrder, QueryGraph};
    use gsword_simt::DeviceConfig;

    fn small_device() -> DeviceConfig {
        DeviceConfig {
            num_blocks: 2,
            threads_per_block: 64,
            host_threads: 2,
        }
    }

    fn triangle_fixture() -> (CandidateGraph, QueryGraph) {
        let mut b = GraphBuilder::with_vertices(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let q = QueryGraph::new(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        (cg, q)
    }

    fn run(cfg: EngineConfig, alley: bool) -> EngineReport {
        let (cg, q) = triangle_fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        if alley {
            run_engine(&ctx, &Alley, &cfg)
        } else {
            run_engine(&ctx, &WanderJoin, &cfg)
        }
    }

    #[test]
    fn all_configs_estimate_triangles() {
        // Ground truth: 12 embeddings.
        for (name, cfg) in [
            ("baseline", EngineConfig::gpu_baseline(40_000)),
            ("o0", EngineConfig::o0(40_000)),
            ("o1", EngineConfig::o1(40_000)),
            ("o2", EngineConfig::o2(40_000)),
            ("itersync", EngineConfig::iteration_sync(40_000)),
        ] {
            for alley in [false, true] {
                let cfg = EngineConfig {
                    device: small_device(),
                    ..cfg
                };
                let rep = run(cfg, alley);
                let v = rep.value();
                assert!(
                    (10.0..14.5).contains(&v),
                    "{name}/alley={alley}: estimate {v} should be near 12"
                );
            }
        }
    }

    #[test]
    fn sample_counts_match_request() {
        let cfg = EngineConfig {
            device: small_device(),
            ..EngineConfig::o0(10_001)
        };
        let rep = run(cfg, true);
        assert_eq!(rep.estimate.samples, 10_001);
        let cfg = EngineConfig {
            device: small_device(),
            ..EngineConfig::gpu_baseline(10_001)
        };
        let rep = run(cfg, true);
        assert_eq!(rep.estimate.samples, 10_001);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = EngineConfig {
            device: small_device(),
            ..EngineConfig::gsword(5_000)
        };
        let a = run(cfg, true);
        let b = run(cfg, true);
        assert_eq!(a.estimate.weight_sum, b.estimate.weight_sum);
        assert_eq!(a.counters, b.counters);
        let c = run(
            EngineConfig {
                device: small_device(),
                ..EngineConfig::gsword(5_000).with_seed(1234)
            },
            true,
        );
        assert_ne!(a.estimate.weight_sum, c.estimate.weight_sum);
    }

    #[test]
    fn inheritance_improves_warp_efficiency() {
        let g = gen::barabasi_albert(800, 6, gen::zipf_labels(800, 6, 0.9, 4), 4);
        let q = QueryGraph::extract(&g, 6, 11).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let dev = small_device();
        let o0 = run_engine(
            &ctx,
            &WanderJoin,
            &EngineConfig {
                device: dev,
                ..EngineConfig::o0(20_000)
            },
        );
        let o1 = run_engine(
            &ctx,
            &WanderJoin,
            &EngineConfig {
                device: dev,
                ..EngineConfig::o1(20_000)
            },
        );
        assert!(
            o1.counters.warp_efficiency() > o0.counters.warp_efficiency(),
            "inheritance should raise efficiency: O0 {:.3} vs O1 {:.3}",
            o0.counters.warp_efficiency(),
            o1.counters.warp_efficiency()
        );
    }

    #[test]
    fn inheritance_estimate_remains_unbiased() {
        // Skewed graph where samples die often — the regime inheritance
        // reweighting must keep unbiased.
        let g = gen::barabasi_albert(300, 4, gen::zipf_labels(300, 4, 0.8, 9), 9);
        let q = QueryGraph::extract(&g, 4, 21).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let truth =
            gsword_enumeration::count_instances(&ctx, gsword_enumeration::EnumLimits::unlimited())
                .count as f64;
        assert!(truth > 0.0);
        let rep = run_engine(
            &ctx,
            &Alley,
            &EngineConfig {
                device: small_device(),
                ..EngineConfig::o1(120_000)
            },
        );
        let rel = (rep.value() - truth).abs() / truth;
        assert!(
            rel < 0.25,
            "inherited estimate {} vs truth {truth} (rel {rel:.3})",
            rep.value()
        );
    }

    #[test]
    fn streaming_matches_serial_distribution() {
        // Streaming must keep the estimate unbiased too.
        let g = gen::barabasi_albert(500, 20, gen::zipf_labels(500, 3, 0.5, 2), 2);
        let q = QueryGraph::extract(&g, 4, 5).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let truth =
            gsword_enumeration::count_instances(&ctx, gsword_enumeration::EnumLimits::unlimited())
                .count as f64;
        assert!(truth > 0.0);
        let o2 = run_engine(
            &ctx,
            &Alley,
            &EngineConfig {
                device: small_device(),
                ..EngineConfig::o2(60_000)
            },
        );
        let rel = (o2.value() - truth).abs() / truth;
        assert!(
            rel < 0.3,
            "streaming estimate {} vs {truth} (rel {rel:.3})",
            o2.value()
        );
    }

    #[test]
    fn streaming_reduces_modeled_time_for_alley_on_skewed_graphs() {
        let g = gen::barabasi_albert(2_000, 24, gen::zipf_labels(2_000, 3, 0.4, 7), 7);
        let q = QueryGraph::extract(&g, 5, 3).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let dev = small_device();
        let o1 = run_engine(
            &ctx,
            &Alley,
            &EngineConfig {
                device: dev,
                ..EngineConfig::o1(10_000)
            },
        );
        let o2 = run_engine(
            &ctx,
            &Alley,
            &EngineConfig {
                device: dev,
                ..EngineConfig::o2(10_000)
            },
        );
        assert!(
            o2.modeled_ms < o1.modeled_ms,
            "streaming should cut modeled time: O1 {:.3}ms vs O2 {:.3}ms",
            o1.modeled_ms,
            o2.modeled_ms
        );
    }

    #[test]
    fn iteration_sync_costs_more_memory() {
        let g = gen::barabasi_albert(1_000, 8, gen::zipf_labels(1_000, 5, 0.8, 3), 3);
        let q = QueryGraph::extract(&g, 6, 17).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let dev = small_device();
        let ss = run_engine(
            &ctx,
            &Alley,
            &EngineConfig {
                device: dev,
                ..EngineConfig::o0(20_000)
            },
        );
        let is = run_engine(
            &ctx,
            &Alley,
            &EngineConfig {
                device: dev,
                ..EngineConfig::iteration_sync(20_000)
            },
        );
        // The paper's Figure 5 headline: iteration sync pays more memory
        // stalls per sample and loses overall despite better utilization.
        let ss_long = ss.counters.stall_long() as f64 / ss.estimate.samples as f64;
        let is_long = is.counters.stall_long() as f64 / is.estimate.samples as f64;
        assert!(
            is_long > ss_long,
            "iteration sync should cost more memory stalls: {is_long:.1} vs {ss_long:.1}"
        );
        let ss_ms = ss.modeled_ms / ss.estimate.samples as f64;
        let is_ms = is.modeled_ms / is.estimate.samples as f64;
        assert!(
            is_ms > ss_ms,
            "iteration sync should be slower end to end: {is_ms:.6} vs {ss_ms:.6}"
        );
    }

    #[test]
    fn inheritance_collects_more_samples_per_launch() {
        let g = gen::barabasi_albert(1_000, 8, gen::zipf_labels(1_000, 5, 0.8, 3), 3);
        let q = QueryGraph::extract(&g, 6, 17).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let dev = small_device();
        let o0 = run_engine(
            &ctx,
            &WanderJoin,
            &EngineConfig {
                device: dev,
                ..EngineConfig::o0(20_000)
            },
        );
        let o1 = run_engine(
            &ctx,
            &WanderJoin,
            &EngineConfig {
                device: dev,
                ..EngineConfig::o1(20_000)
            },
        );
        assert_eq!(
            o0.samples_collected, o0.estimate.samples,
            "no inheritance, no extras"
        );
        assert!(
            o1.samples_collected > o1.estimate.samples,
            "inheritance should add collected samples"
        );
        // The Figure 12 metric: modeled time per fixed sample budget drops.
        assert!(
            o1.modeled_ms_for_samples(1_000_000) < o0.modeled_ms_for_samples(1_000_000),
            "O1 should beat O0 per collected sample"
        );
    }
}
