//! The engine's execution layer: kernels as first-class values, launch
//! descriptors, and the sharded multi-device driver.
//!
//! A [`Kernel`] is *what* runs (name, grid shape, per-block body, counter
//! extraction); a [`LaunchSpec`] is *where and when* it runs (device,
//! stream, block range, shard budget, seed). [`spawn_kernel`] plans one
//! global grid into shards — contiguous global-block ranges spread over
//! every `(device, stream)` pair — and launches them asynchronously on the
//! [`Runtime`]'s streams.
//!
//! Determinism across topologies is load-bearing: per-block sample quotas
//! come from [`split_budget`] over the *global* grid, per-lane RNG streams
//! are keyed on *global* block ids, and results merge in ascending global
//! block order. A budget run on 2 devices × 4 streams therefore produces
//! bit-identical estimates to the same budget on 1 device × 1 stream.

use std::ops::Range;
use std::time::Instant;

use gsword_estimators::{Estimate, Estimator, QueryCtx};
use gsword_simt::{
    Device, DeviceConfig, Event, KernelCounters, LaunchHandle, Profiler, Runtime, RuntimeConfig,
    RuntimeScope, Sanitizer, SpanKind, Track,
};

use crate::config::{EngineConfig, EngineReport};
use crate::kernel::{kernel_for_config, EstimateKernel};

/// Split `total` into `parts` near-equal shares: the first `total % parts`
/// shares get one extra. The single source of truth for every
/// budget-splitting site in the workspace (blocks, warps, lanes, batches).
pub fn split_budget(total: u64, parts: usize) -> Vec<u64> {
    assert!(parts > 0, "cannot split a budget into zero parts");
    let per = total / parts as u64;
    let rem = (total % parts as u64) as usize;
    (0..parts).map(|i| per + u64::from(i < rem)).collect()
}

/// Launch descriptor: one shard of a kernel's global grid, bound to a
/// device and stream with its sample budget and base seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchSpec {
    /// Target device index.
    pub device: usize,
    /// Target stream on that device.
    pub stream: usize,
    /// Global block ids this shard executes.
    pub blocks: Range<usize>,
    /// Samples this shard draws (the sum of its blocks' quotas).
    pub samples: u64,
    /// Base RNG seed; per-lane streams derive from it and the *global*
    /// block id, so the seed is deterministic per shard by construction.
    pub seed: u64,
}

/// A kernel the runtime can launch: the "what" of an execution, decoupled
/// from the devices and streams it lands on.
pub trait Kernel: Sync {
    /// Per-block result type.
    type BlockOut: Send;

    /// Kernel name, as attributed by the sanitizer and reports.
    fn name(&self) -> String;

    /// Grid geometry of the global launch.
    fn grid(&self) -> DeviceConfig;

    /// Execute one block: `block` is the *global* block id, `samples` the
    /// block's quota from the global [`split_budget`], `seed` the base seed.
    fn run_block(&self, device: &Device, block: usize, samples: u64, seed: u64) -> Self::BlockOut;

    /// Extract the counters a block charged (zero for kernels whose cost
    /// is not modeled, e.g. host-side task generation).
    fn block_counters(out: &Self::BlockOut) -> KernelCounters;
}

/// Plan a global grid of `num_blocks` into contiguous shards over
/// `num_devices × streams_per_device` (device-major, so each device owns
/// one contiguous span of the grid). Shard sample budgets are the sums of
/// the global per-block quotas, so they always total `samples`.
pub fn plan_shards(
    num_blocks: usize,
    num_devices: usize,
    streams_per_device: usize,
    samples: u64,
    seed: u64,
) -> Vec<LaunchSpec> {
    assert!(num_blocks > 0 && num_devices > 0 && streams_per_device > 0);
    let quotas = split_budget(samples, num_blocks);
    let shard_count = (num_devices * streams_per_device).min(num_blocks);
    let shard_sizes = split_budget(num_blocks as u64, shard_count);
    // Device-major: each device owns one contiguous span of the grid, its
    // streams contiguous sub-spans of that. When the grid has fewer blocks
    // than streams, shards still spread across as many devices as possible.
    let shards_per_device = split_budget(shard_count as u64, num_devices);
    let mut specs = Vec::with_capacity(shard_count);
    let mut start = 0usize;
    let mut shard = 0usize;
    for (device, &n) in shards_per_device.iter().enumerate() {
        for stream in 0..n as usize {
            let size = shard_sizes[shard] as usize;
            let blocks = start..start + size;
            specs.push(LaunchSpec {
                device,
                stream,
                samples: quotas[blocks.clone()].iter().sum(),
                seed,
                blocks,
            });
            start += size;
            shard += 1;
        }
    }
    specs
}

/// An in-flight sharded kernel: per-shard launch handles plus the events
/// needed to observe completion without blocking.
pub struct KernelRun<'env, K: Kernel> {
    runtime: &'env Runtime,
    name: String,
    shards: Vec<(LaunchSpec, LaunchHandle<K::BlockOut>)>,
    start: Event,
}

impl<'env, K: Kernel> KernelRun<'env, K> {
    /// Have all shards completed? (Non-blocking, event-based.)
    pub fn is_complete(&self) -> bool {
        self.shards.iter().all(|(_, h)| h.is_complete())
    }

    /// The launch descriptors this run was planned into.
    pub fn specs(&self) -> Vec<LaunchSpec> {
        self.shards.iter().map(|(s, _)| s.clone()).collect()
    }

    /// Wall milliseconds from spawn to the last shard's completion event,
    /// once every shard has recorded (`None` while still running).
    pub fn elapsed_ms(&self) -> Option<f64> {
        self.shards
            .iter()
            .map(|(_, h)| self.start.elapsed_ms(h.event()))
            .try_fold(0.0f64, |acc, ms| ms.map(|m| acc.max(m)))
    }

    /// Block until every shard finishes; charge each shard's counters to
    /// the runtime's `(device, stream)` board and return the per-block
    /// outputs in ascending *global* block order. When the runtime
    /// profiles, the host-side block shows up as an event-wait span on the
    /// timeline's host track.
    pub fn wait(self) -> Vec<K::BlockOut> {
        let profiler = self.runtime.profiler();
        let wait_start = profiler.now_us();
        let mut shards: Vec<(LaunchSpec, Vec<K::BlockOut>)> = self
            .shards
            .into_iter()
            .map(|(spec, handle)| {
                let blocks = handle.wait();
                let mut counters = KernelCounters::default();
                for out in &blocks {
                    counters.merge(&K::block_counters(out));
                }
                self.runtime.charge(spec.device, spec.stream, &counters);
                (spec, blocks)
            })
            .collect();
        profiler.record_span(
            Track::Host,
            SpanKind::EventWait,
            &format!("wait {}", self.name),
            wait_start,
        );
        shards.sort_by_key(|(spec, _)| spec.blocks.start);
        shards.into_iter().flat_map(|(_, blocks)| blocks).collect()
    }
}

/// Launch `kernel` over its full grid, sharded across every device and
/// stream of the runtime, without blocking. `samples` is the *global*
/// budget; `seed` the base seed shared by all shards.
pub fn spawn_kernel<'env, K>(
    rs: &RuntimeScope<'env>,
    kernel: K,
    samples: u64,
    seed: u64,
) -> KernelRun<'env, K>
where
    K: Kernel + Clone + Send + 'env,
    K::BlockOut: 'env,
{
    let runtime = rs.runtime();
    let grid = kernel.grid();
    let name = kernel.name();
    let specs = plan_shards(
        grid.num_blocks,
        runtime.num_devices(),
        runtime.streams_per_device(),
        samples,
        seed,
    );
    let quotas = std::sync::Arc::new(split_budget(samples, grid.num_blocks));
    let start = Event::new();
    start.record();
    let shards = specs
        .into_iter()
        .map(|spec| {
            let k = kernel.clone();
            let q = std::sync::Arc::clone(&quotas);
            let dev: &'env Device = runtime.device(spec.device);
            let shard_seed = spec.seed;
            // `run_block` only reaches `WarpExec::run`, which never drains
            // the pool; the analyzer's name-keyed summaries conflate it
            // with `SamplingRunBuilder::run`, which does block.
            // gsword: allow(scope-blocking)
            let handle = rs.launch_named(
                spec.device,
                spec.stream,
                spec.blocks.clone(),
                &name,
                move |b| k.run_block(dev, b, q[b], shard_seed),
            );
            (spec, handle)
        })
        .collect();
    KernelRun {
        runtime,
        name,
        shards,
        start,
    }
}

/// Build the runtime an [`EngineConfig`] asks for: `num_devices` devices ×
/// `streams_per_device` streams, each device carrying its own sanitizer
/// instance (attributed to the same kernel name, as one rig-wide
/// `compute-sanitizer` session would).
pub fn runtime_for(cfg: &EngineConfig, kernel_name: &str) -> Runtime {
    let num_devices = cfg.num_devices.max(1);
    let streams_per_device = cfg.streams_per_device.max(1);
    let profiler = if cfg.profile {
        Profiler::new(num_devices, streams_per_device)
    } else {
        Profiler::off()
    };
    Runtime::with_instrumentation(
        RuntimeConfig {
            num_devices,
            streams_per_device,
            device: cfg.device,
            sim_workers: cfg.sim_workers,
        },
        |_| Sanitizer::new(cfg.sanitize, kernel_name),
        profiler,
    )
}

/// An in-flight estimate run: a [`KernelRun`] plus the bookkeeping to
/// assemble an [`EngineReport`] on completion.
pub struct EstimateRun<'env, 'e, 'c, E: Estimator + ?Sized> {
    inner: KernelRun<'env, EstimateKernel<'e, 'c, E>>,
    t0: Instant,
}

impl<'env, 'e, 'c, E: Estimator + ?Sized> EstimateRun<'env, 'e, 'c, E> {
    /// Has the whole launch completed? (Event-backed, non-blocking.)
    pub fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    /// The shards this run was planned into.
    pub fn specs(&self) -> Vec<LaunchSpec> {
        self.inner.specs()
    }

    /// Block until done and assemble the report. The estimate merges in
    /// global block order (bit-stable across topologies); counters drain
    /// from the runtime's board per device, and modeled time is the max
    /// over devices — concurrent silicon, one clock. The report's
    /// `sanitizer` is left `None`: per-run attribution belongs to whoever
    /// owns the runtime (see [`run_engine`]), since device sanitizers
    /// accumulate across launches.
    pub fn wait_report(self, cfg: &EngineConfig) -> EngineReport {
        let event_ms = self.inner.elapsed_ms();
        let runtime = self.inner.runtime;
        let kernel_name = self.inner.name.clone();
        let blocks = self.inner.wait();
        let mut estimate = Estimate::default();
        let mut inherited = 0u64;
        for (e, _, inh) in &blocks {
            estimate.merge(e);
            inherited += inh;
        }
        let per_device = runtime.take_device_counters();
        let mut counters = KernelCounters::default();
        for c in &per_device {
            counters.merge(c);
        }
        let modeled_ms = per_device
            .iter()
            .map(|c| cfg.model.modeled_ms(c))
            .fold(0.0, f64::max);
        let wall_ms = event_ms.unwrap_or_else(|| self.t0.elapsed().as_secs_f64() * 1e3);
        runtime.profiler().on_kernel(
            &kernel_name,
            &counters.snapshot(),
            modeled_ms,
            wall_ms,
            estimate.samples,
            inherited,
        );
        EngineReport {
            samples_collected: estimate.samples + inherited,
            estimate,
            counters,
            modeled_ms,
            per_device_modeled_ms: per_device.iter().map(|c| cfg.model.modeled_ms(c)).collect(),
            wall_ms,
            sanitizer: None,
            prof: None,
        }
    }
}

/// Asynchronously launch the estimator kernel `cfg` selects (RSV or the
/// NextDoor-style baseline) across the runtime's devices and streams.
pub fn spawn_estimate<'env, 'e: 'env, 'c: 'e, E: Estimator + ?Sized>(
    rs: &RuntimeScope<'env>,
    ctx: &'e QueryCtx<'c>,
    est: &'e E,
    cfg: &EngineConfig,
) -> EstimateRun<'env, 'e, 'c, E> {
    let kernel = kernel_for_config(ctx, est, cfg);
    EstimateRun {
        inner: spawn_kernel(rs, kernel, cfg.samples, cfg.seed),
        t0: Instant::now(),
    }
}

/// Run the configured kernel for one query and return the aggregated
/// report. Deterministic in `(cfg.seed, cfg.device, cfg.samples)` — and
/// invariant in `(cfg.num_devices, cfg.streams_per_device)`, which only
/// change where the global grid's shards execute.
pub fn run_engine<E: Estimator + ?Sized>(
    ctx: &QueryCtx<'_>,
    est: &E,
    cfg: &EngineConfig,
) -> EngineReport {
    let t0 = Instant::now();
    let kernel = kernel_for_config(ctx, est, cfg);
    let name = kernel.name();
    let runtime = runtime_for(cfg, &name);
    let mut report = runtime.scope(|rs| {
        EstimateRun {
            inner: spawn_kernel(rs, kernel, cfg.samples, cfg.seed),
            t0,
        }
        .wait_report(cfg)
    });
    report.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    if runtime.sanitizing() {
        report.sanitizer = Some(runtime.sanitizer_report());
    }
    if runtime.profiler().enabled() {
        report.prof = Some(runtime.profiler().report());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_budget_exact_division() {
        assert_eq!(split_budget(12, 4), vec![3, 3, 3, 3]);
    }

    #[test]
    fn split_budget_spreads_remainder_to_leading_parts() {
        assert_eq!(split_budget(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(split_budget(7, 3), vec![3, 2, 2]);
    }

    #[test]
    fn split_budget_off_by_one_edges() {
        // total < parts: exactly `total` parts get one.
        assert_eq!(split_budget(2, 5), vec![1, 1, 0, 0, 0]);
        // total == parts - 1 and total == parts + 1.
        assert_eq!(split_budget(3, 4), vec![1, 1, 1, 0]);
        assert_eq!(split_budget(5, 4), vec![2, 1, 1, 1]);
        // Zero total, single part.
        assert_eq!(split_budget(0, 3), vec![0, 0, 0]);
        assert_eq!(split_budget(9, 1), vec![9]);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn split_budget_rejects_zero_parts() {
        split_budget(1, 0);
    }

    #[test]
    fn shards_cover_the_grid_exactly_once() {
        for (nb, nd, spd) in [(46, 2, 4), (8, 1, 1), (3, 2, 4), (5, 2, 2), (1, 3, 3)] {
            let specs = plan_shards(nb, nd, spd, 10_001, 7);
            let mut covered = vec![false; nb];
            for s in &specs {
                for b in s.blocks.clone() {
                    assert!(!covered[b], "block {b} double-covered");
                    covered[b] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "grid not fully covered");
            assert_eq!(
                specs.iter().map(|s| s.samples).sum::<u64>(),
                10_001,
                "shard budgets must sum to the request ({nb}/{nd}/{spd})"
            );
        }
    }

    #[test]
    fn shards_are_device_major_and_contiguous() {
        let specs = plan_shards(8, 2, 2, 800, 0);
        assert_eq!(specs.len(), 4);
        // Each device owns a contiguous span, ascending in block order.
        for w in specs.windows(2) {
            assert_eq!(w[0].blocks.end, w[1].blocks.start);
            assert!(w[0].device <= w[1].device);
        }
        assert_eq!(specs[0].device, 0);
        assert_eq!(specs.last().unwrap().device, 1);
    }

    #[test]
    fn fewer_blocks_than_shards_degrades_gracefully() {
        let specs = plan_shards(3, 2, 4, 99, 0);
        assert_eq!(specs.len(), 3);
        assert_eq!(specs.iter().map(|s| s.blocks.len()).sum::<usize>(), 3);
        assert_eq!(specs.iter().map(|s| s.samples).sum::<u64>(), 99);
    }
}
