//! Engine configuration, presets, and run reports.

use gsword_estimators::Estimate;
use gsword_simt::{
    DeviceConfig, DeviceModel, KernelCounters, ProfReport, SanitizerMode, SanitizerReport,
};

/// Thread synchronization discipline (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Warp lanes refill together after all current samples finish — the
    /// discipline gSWORD adopts (better memory locality).
    SampleSync,
    /// A lane starts a new sample the moment its current one dies — better
    /// lane utilization, scattered memory accesses. 1.3× slower on average
    /// in the paper.
    IterationSync,
}

/// How sample tasks are distributed to lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Block-shared atomic pool (Algorithm 1, lines 4–5).
    BlockPool,
    /// Static per-thread quotas — the NextDoor-style baseline.
    Static,
}

/// Full engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Launch geometry and host parallelism.
    pub device: DeviceConfig,
    /// Device-time model used to convert counters into milliseconds.
    pub model: DeviceModel,
    /// Total samples across the launch.
    pub samples: u64,
    /// Base RNG seed (runs are deterministic in the seed and geometry).
    pub seed: u64,
    /// Synchronization discipline.
    pub sync: SyncMode,
    /// Sample distribution mode.
    pub pool: PoolMode,
    /// Enable sample inheritance (Algorithm 2) — the O1 optimization.
    pub inheritance: bool,
    /// Enable warp streaming (Algorithm 3) — the O2 optimization.
    pub streaming: bool,
    /// Sanitizer tools to run the kernel under (the `compute-sanitizer`
    /// analogue; off by default — the disabled handle is one branch per
    /// hook).
    pub sanitize: SanitizerMode,
    /// Attach the profiler (the Nsight analogue): record a launch timeline
    /// and per-kernel metrics into `EngineReport::prof`. Off by default —
    /// the disabled handle is one branch per hook.
    pub profile: bool,
    /// Software devices the launch is sharded over (the paper's testbed has
    /// two RTX 2080 Ti cards). Results are seed-deterministic regardless of
    /// the topology: blocks keep their global ids and per-block quotas.
    pub num_devices: usize,
    /// Ordered async launch queues per device (CUDA-stream analogue).
    pub streams_per_device: usize,
    /// Intra-kernel simulation workers: how many host threads one launch
    /// fans its blocks over. `0` = auto (the device's `host_threads`),
    /// `1` = serial in-stream execution, `n` = a persistent pool of `n`.
    /// Results are bit-identical for every value — blocks merge in fixed
    /// ascending order regardless of which worker simulated them.
    pub sim_workers: usize,
}

impl EngineConfig {
    fn base(samples: u64) -> Self {
        EngineConfig {
            device: DeviceConfig::default(),
            model: DeviceModel::default(),
            samples,
            seed: 0x5D0D,
            sync: SyncMode::SampleSync,
            pool: PoolMode::BlockPool,
            inheritance: false,
            streaming: false,
            sanitize: SanitizerMode::OFF,
            profile: false,
            num_devices: 1,
            streams_per_device: 1,
            sim_workers: 1,
        }
    }

    /// Full gSWORD: block pool + sample sync + inheritance + streaming.
    pub fn gsword(samples: u64) -> Self {
        EngineConfig {
            inheritance: true,
            streaming: true,
            ..Self::base(samples)
        }
    }

    /// The NextDoor-style GPU baseline: static assignment, iteration
    /// synchronization (the discipline common to GPU sampling frameworks —
    /// a thread starts its next sample the moment the current one ends;
    /// Section 3.2), and no warp optimizations.
    pub fn gpu_baseline(samples: u64) -> Self {
        EngineConfig {
            pool: PoolMode::Static,
            sync: SyncMode::IterationSync,
            ..Self::base(samples)
        }
    }

    /// Ablation O0: gSWORD framework with both warp optimizations off.
    pub fn o0(samples: u64) -> Self {
        Self::base(samples)
    }

    /// Ablation O1: sample inheritance only.
    pub fn o1(samples: u64) -> Self {
        EngineConfig {
            inheritance: true,
            ..Self::base(samples)
        }
    }

    /// Ablation O2: sample inheritance + warp streaming (= full gSWORD).
    pub fn o2(samples: u64) -> Self {
        Self::gsword(samples)
    }

    /// The iteration-synchronization variant of the micro-benchmark
    /// (Figure 5).
    pub fn iteration_sync(samples: u64) -> Self {
        EngineConfig {
            sync: SyncMode::IterationSync,
            ..Self::base(samples)
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style device override.
    pub fn with_device(mut self, device: DeviceConfig) -> Self {
        self.device = device;
        self
    }

    /// Builder-style sanitizer override.
    pub fn with_sanitize(mut self, sanitize: SanitizerMode) -> Self {
        self.sanitize = sanitize;
        self
    }

    /// Builder-style profiler override.
    pub fn with_profile(mut self, profile: bool) -> Self {
        self.profile = profile;
        self
    }

    /// Builder-style runtime topology override: devices × streams.
    pub fn with_topology(mut self, num_devices: usize, streams_per_device: usize) -> Self {
        self.num_devices = num_devices;
        self.streams_per_device = streams_per_device;
        self
    }

    /// Builder-style intra-kernel worker override (`0` = auto, `1` =
    /// serial, `n` = a pool of `n`). Purely a wall-clock knob: estimates,
    /// counters, and sanitizer verdicts are identical for every value.
    pub fn with_sim_workers(mut self, sim_workers: usize) -> Self {
        self.sim_workers = sim_workers;
        self
    }
}

/// Outcome of one engine launch.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Aggregated HT estimate (denominator = fetched initial samples).
    pub estimate: Estimate,
    /// Samples collected in the paper's accounting: fetched initial samples
    /// plus inherited continuations (Algorithm 2 keeps idle lanes
    /// productive, so a launch "collects more samples while executing the
    /// same number of iterations").
    pub samples_collected: u64,
    /// Merged execution counters of all blocks.
    pub counters: KernelCounters,
    /// Modeled device milliseconds (see `DeviceModel`). For a multi-device
    /// launch this is the *makespan*: the max over the per-device modeled
    /// times, since devices run concurrently.
    pub modeled_ms: f64,
    /// Modeled milliseconds charged to each device of the launch (one entry
    /// per device; a single-device run has one entry equal to `modeled_ms`).
    pub per_device_modeled_ms: Vec<f64>,
    /// Host wall-clock milliseconds of the functional simulation (not the
    /// reproduction target; reported for transparency).
    pub wall_ms: f64,
    /// Sanitizer findings when the launch ran under a non-OFF
    /// [`SanitizerMode`]; `None` when sanitizing was disabled.
    pub sanitizer: Option<SanitizerReport>,
    /// Profiler output (timeline + per-kernel metrics) when the launch ran
    /// with `profile`; `None` when profiling was disabled.
    pub prof: Option<ProfReport>,
}

impl EngineReport {
    /// Convenience: the estimated subgraph count.
    pub fn value(&self) -> f64 {
        self.estimate.value()
    }

    /// Modeled device milliseconds normalized to a per-collected-sample
    /// budget of `n` samples — the runtime metric of Table 2 and Figure 12
    /// (a kernel that inherits aggressively completes a fixed sample budget
    /// in proportionally fewer launches).
    pub fn modeled_ms_for_samples(&self, n: u64) -> f64 {
        if self.samples_collected == 0 {
            return self.modeled_ms;
        }
        self.modeled_ms * n as f64 / self.samples_collected as f64
    }

    /// Merge per-device reports from one logical launch into the report of
    /// the whole launch.
    ///
    /// Totals (estimate, collected samples, counters) are *summed* before
    /// any normalization — averaging per-device `modeled_ms_for_samples`
    /// values would weight devices equally even when their collected-sample
    /// counts differ, biasing the per-sample cost. Modeled time is the
    /// makespan (max over devices, which run concurrently); wall time
    /// likewise. Sanitizer reports are merged when any part carries one.
    pub fn merge_devices(parts: &[EngineReport]) -> EngineReport {
        assert!(!parts.is_empty(), "cannot merge zero device reports");
        let mut estimate = Estimate::default();
        let mut counters = KernelCounters::default();
        let mut samples_collected = 0u64;
        let mut per_device_modeled_ms = Vec::new();
        let mut wall_ms = 0.0f64;
        let mut sanitizer: Option<SanitizerReport> = None;
        let mut prof: Option<ProfReport> = None;
        for p in parts {
            estimate.merge(&p.estimate);
            counters.merge(&p.counters);
            samples_collected += p.samples_collected;
            if p.per_device_modeled_ms.is_empty() {
                per_device_modeled_ms.push(p.modeled_ms);
            } else {
                per_device_modeled_ms.extend_from_slice(&p.per_device_modeled_ms);
            }
            wall_ms = wall_ms.max(p.wall_ms);
            if let Some(s) = &p.sanitizer {
                match &mut sanitizer {
                    Some(acc) => acc.merge(s),
                    None => sanitizer = Some(s.clone()),
                }
            }
            if let Some(pr) = &p.prof {
                match &mut prof {
                    Some(acc) => acc.merge(pr),
                    None => prof = Some(pr.clone()),
                }
            }
        }
        let modeled_ms = per_device_modeled_ms.iter().copied().fold(0.0, f64::max);
        EngineReport {
            estimate,
            samples_collected,
            counters,
            modeled_ms,
            per_device_modeled_ms,
            wall_ms,
            sanitizer,
            prof,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_wire_flags() {
        let g = EngineConfig::gsword(100);
        assert!(g.inheritance && g.streaming);
        assert_eq!(g.pool, PoolMode::BlockPool);
        assert_eq!(g.sync, SyncMode::SampleSync);

        let b = EngineConfig::gpu_baseline(100);
        assert!(!b.inheritance && !b.streaming);
        assert_eq!(b.pool, PoolMode::Static);
        assert_eq!(b.sync, SyncMode::IterationSync);

        let o1 = EngineConfig::o1(100);
        assert!(o1.inheritance && !o1.streaming);

        let it = EngineConfig::iteration_sync(100);
        assert_eq!(it.sync, SyncMode::IterationSync);
    }

    #[test]
    fn builder_overrides() {
        let c = EngineConfig::gsword(10).with_seed(99);
        assert_eq!(c.seed, 99);
    }
}
