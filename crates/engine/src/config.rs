//! Engine configuration, presets, and run reports.

use gsword_estimators::Estimate;
use gsword_simt::{DeviceConfig, DeviceModel, KernelCounters, SanitizerMode, SanitizerReport};

/// Thread synchronization discipline (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Warp lanes refill together after all current samples finish — the
    /// discipline gSWORD adopts (better memory locality).
    SampleSync,
    /// A lane starts a new sample the moment its current one dies — better
    /// lane utilization, scattered memory accesses. 1.3× slower on average
    /// in the paper.
    IterationSync,
}

/// How sample tasks are distributed to lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Block-shared atomic pool (Algorithm 1, lines 4–5).
    BlockPool,
    /// Static per-thread quotas — the NextDoor-style baseline.
    Static,
}

/// Full engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Launch geometry and host parallelism.
    pub device: DeviceConfig,
    /// Device-time model used to convert counters into milliseconds.
    pub model: DeviceModel,
    /// Total samples across the launch.
    pub samples: u64,
    /// Base RNG seed (runs are deterministic in the seed and geometry).
    pub seed: u64,
    /// Synchronization discipline.
    pub sync: SyncMode,
    /// Sample distribution mode.
    pub pool: PoolMode,
    /// Enable sample inheritance (Algorithm 2) — the O1 optimization.
    pub inheritance: bool,
    /// Enable warp streaming (Algorithm 3) — the O2 optimization.
    pub streaming: bool,
    /// Sanitizer tools to run the kernel under (the `compute-sanitizer`
    /// analogue; off by default — the disabled handle is one branch per
    /// hook).
    pub sanitize: SanitizerMode,
}

impl EngineConfig {
    fn base(samples: u64) -> Self {
        EngineConfig {
            device: DeviceConfig::default(),
            model: DeviceModel::default(),
            samples,
            seed: 0x5D0D,
            sync: SyncMode::SampleSync,
            pool: PoolMode::BlockPool,
            inheritance: false,
            streaming: false,
            sanitize: SanitizerMode::OFF,
        }
    }

    /// Full gSWORD: block pool + sample sync + inheritance + streaming.
    pub fn gsword(samples: u64) -> Self {
        EngineConfig {
            inheritance: true,
            streaming: true,
            ..Self::base(samples)
        }
    }

    /// The NextDoor-style GPU baseline: static assignment, iteration
    /// synchronization (the discipline common to GPU sampling frameworks —
    /// a thread starts its next sample the moment the current one ends;
    /// Section 3.2), and no warp optimizations.
    pub fn gpu_baseline(samples: u64) -> Self {
        EngineConfig {
            pool: PoolMode::Static,
            sync: SyncMode::IterationSync,
            ..Self::base(samples)
        }
    }

    /// Ablation O0: gSWORD framework with both warp optimizations off.
    pub fn o0(samples: u64) -> Self {
        Self::base(samples)
    }

    /// Ablation O1: sample inheritance only.
    pub fn o1(samples: u64) -> Self {
        EngineConfig {
            inheritance: true,
            ..Self::base(samples)
        }
    }

    /// Ablation O2: sample inheritance + warp streaming (= full gSWORD).
    pub fn o2(samples: u64) -> Self {
        Self::gsword(samples)
    }

    /// The iteration-synchronization variant of the micro-benchmark
    /// (Figure 5).
    pub fn iteration_sync(samples: u64) -> Self {
        EngineConfig {
            sync: SyncMode::IterationSync,
            ..Self::base(samples)
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style device override.
    pub fn with_device(mut self, device: DeviceConfig) -> Self {
        self.device = device;
        self
    }

    /// Builder-style sanitizer override.
    pub fn with_sanitize(mut self, sanitize: SanitizerMode) -> Self {
        self.sanitize = sanitize;
        self
    }
}

/// Outcome of one engine launch.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Aggregated HT estimate (denominator = fetched initial samples).
    pub estimate: Estimate,
    /// Samples collected in the paper's accounting: fetched initial samples
    /// plus inherited continuations (Algorithm 2 keeps idle lanes
    /// productive, so a launch "collects more samples while executing the
    /// same number of iterations").
    pub samples_collected: u64,
    /// Merged execution counters of all blocks.
    pub counters: KernelCounters,
    /// Modeled device milliseconds (see `DeviceModel`).
    pub modeled_ms: f64,
    /// Host wall-clock milliseconds of the functional simulation (not the
    /// reproduction target; reported for transparency).
    pub wall_ms: f64,
    /// Sanitizer findings when the launch ran under a non-OFF
    /// [`SanitizerMode`]; `None` when sanitizing was disabled.
    pub sanitizer: Option<SanitizerReport>,
}

impl EngineReport {
    /// Convenience: the estimated subgraph count.
    pub fn value(&self) -> f64 {
        self.estimate.value()
    }

    /// Modeled device milliseconds normalized to a per-collected-sample
    /// budget of `n` samples — the runtime metric of Table 2 and Figure 12
    /// (a kernel that inherits aggressively completes a fixed sample budget
    /// in proportionally fewer launches).
    pub fn modeled_ms_for_samples(&self, n: u64) -> f64 {
        if self.samples_collected == 0 {
            return self.modeled_ms;
        }
        self.modeled_ms * n as f64 / self.samples_collected as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_wire_flags() {
        let g = EngineConfig::gsword(100);
        assert!(g.inheritance && g.streaming);
        assert_eq!(g.pool, PoolMode::BlockPool);
        assert_eq!(g.sync, SyncMode::SampleSync);

        let b = EngineConfig::gpu_baseline(100);
        assert!(!b.inheritance && !b.streaming);
        assert_eq!(b.pool, PoolMode::Static);
        assert_eq!(b.sync, SyncMode::IterationSync);

        let o1 = EngineConfig::o1(100);
        assert!(o1.inheritance && !o1.streaming);

        let it = EngineConfig::iteration_sync(100);
        assert_eq!(it.sync, SyncMode::IterationSync);
    }

    #[test]
    fn builder_overrides() {
        let c = EngineConfig::gsword(10).with_seed(99);
        assert_eq!(c.seed, 99);
    }
}
