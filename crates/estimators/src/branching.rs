//! Alley's *branching* optimization — CPU-side.
//!
//! The paper's Section 2.2 describes branching: "given a branching factor
//! b, branching samples b vertices at each step, and therefore a sample
//! generates a tree consisting of multiple paths … candidate sets
//! generated in a tree can be shared by multiple paths". gSWORD excludes
//! it from the GPU kernels ("complex control flows and frequent random
//! accesses, making it unsuitable for SIMT"); this module implements it on
//! the CPU, both as the natural companion baseline and as a working
//! demonstration of the dynamic tree bookkeeping that motivated the
//! exclusion.
//!
//! ## Estimator
//!
//! At a tree node with refined candidate set of size `n`, branching draws
//! `min(b, n)` distinct candidates and recurses into each. Drawing `c` of
//! `n` uniformly without replacement and averaging with multiplier `n/c`
//! keeps the Horvitz–Thompson recursion unbiased:
//!
//! ```text
//! R(s) = (n/c) · Σ_{chosen v} R(s ∪ {v})        E[R(s)] = Σ_all R(s ∪ v)
//! ```
//!
//! One tree = one sample in the denominator; its value is the sum of leaf
//! contributions with the per-level `n/c` factors folded into the leaf
//! weights (the same push-down evaluation as Algorithm 2's recursive
//! estimator).

use gsword_graph::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ctx::QueryCtx;
use crate::estimate::Estimate;
use crate::estimators::Estimator;
use crate::sample::SampleState;

/// Configuration of the branching sampler.
#[derive(Debug, Clone, Copy)]
pub struct BranchingConfig {
    /// Branching factor `b` (Alley's default expands when the candidate
    /// set exceeds 8; we branch whenever the refined set allows it).
    pub factor: usize,
    /// Only branch when the refined set has at least this many candidates
    /// (Alley's threshold of 8).
    pub min_set_for_branch: usize,
    /// Hard cap on terminated paths per tree, bounding the per-sample work
    /// and memory the paper's SIMT discussion worries about.
    pub max_leaves: usize,
}

impl Default for BranchingConfig {
    fn default() -> Self {
        BranchingConfig {
            factor: 4,
            min_set_for_branch: 8,
            max_leaves: 4_096,
        }
    }
}

/// Statistics of one branching run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchingStats {
    /// Tree samples executed.
    pub trees: u64,
    /// Total root-to-leaf paths explored.
    pub paths: u64,
    /// Refine-set computations performed (shared across sibling paths —
    /// compare with `paths × depth` for the flat sampler).
    pub refines: u64,
}

/// Run `trees` branching tree-samples and aggregate the HT estimate.
pub fn run_branching<E: Estimator + ?Sized>(
    ctx: &QueryCtx<'_>,
    est: &E,
    cfg: &BranchingConfig,
    trees: u64,
    seed: u64,
) -> (Estimate, BranchingStats) {
    assert!(cfg.factor >= 1, "branching factor must be at least 1");
    let mut estimate = Estimate::default();
    let mut stats = BranchingStats::default();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scratch = Vec::new();
    for _ in 0..trees {
        stats.trees += 1;
        let mut tree = TreeWalk {
            ctx,
            est,
            cfg,
            rng: &mut rng,
            scratch: &mut scratch,
            leaves_left: cfg.max_leaves,
            value: 0.0,
            paths: 0,
            refines: 0,
        };
        let s = SampleState::new();
        tree.descend(s, 0);
        if tree.value > 0.0 {
            estimate.record_valid(tree.value);
        } else {
            estimate.record_invalid();
        }
        stats.paths += tree.paths;
        stats.refines += tree.refines;
    }
    (estimate, stats)
}

struct TreeWalk<'a, 'c, E: ?Sized> {
    ctx: &'a QueryCtx<'c>,
    est: &'a E,
    cfg: &'a BranchingConfig,
    rng: &'a mut SmallRng,
    scratch: &'a mut Vec<VertexId>,
    leaves_left: usize,
    value: f64,
    paths: u64,
    refines: u64,
}

impl<'a, 'c, E: Estimator + ?Sized> TreeWalk<'a, 'c, E> {
    /// Extend `s` from depth `d`; accumulates leaf contributions into
    /// `self.value` (with `1/ℙ` weights carried inside `s.prob`).
    fn descend(&mut self, s: SampleState, d: usize) {
        if self.leaves_left == 0 {
            return;
        }
        if d == self.ctx.len() {
            self.leaves_left -= 1;
            self.paths += 1;
            self.value += s.ht_weight();
            return;
        }
        let mut segs = Vec::with_capacity(8);
        self.ctx.backward_segments(s.prefix(), d, &mut segs);
        let (cand, _) = if d == 0 {
            self.ctx.root_candidates()
        } else {
            QueryCtx::min_of_segments(&segs)
        };
        if cand.is_empty() {
            self.leaves_left = self.leaves_left.saturating_sub(1);
            self.paths += 1;
            return;
        }
        // Refine once; shared by all branches below this node — the
        // sharing that motivates branching.
        let refined: Vec<VertexId> = if self.est.needs_refine() && !segs.is_empty() {
            self.refines += 1;
            self.scratch.clear();
            self.est.refine_into(&segs, cand, self.scratch);
            self.scratch.clone()
        } else {
            cand.to_vec()
        };
        let n = refined.len();
        if n == 0 {
            self.leaves_left = self.leaves_left.saturating_sub(1);
            self.paths += 1;
            return;
        }
        let branch = if n >= self.cfg.min_set_for_branch {
            self.cfg.factor.min(n)
        } else {
            1
        };
        // Draw `branch` distinct indices (partial Fisher–Yates).
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..branch {
            let j = self.rng.gen_range(i..n);
            pool.swap(i, j);
        }
        for &idx in pool.iter().take(branch) {
            let v = refined[idx];
            if !self.est.validate(&segs, &s, v) {
                self.leaves_left = self.leaves_left.saturating_sub(1);
                self.paths += 1;
                continue;
            }
            let mut child = s;
            // Probability of v continuing through this node: c/n, so the
            // HT weight gains n/c (see the module docs).
            child.push(v, branch as f64 / n as f64);
            self.descend(child, d + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::{Alley, WanderJoin};
    use crate::runner::run_sequential;
    use gsword_candidate::{build_candidate_graph, BuildConfig};
    use gsword_graph::gen;
    use gsword_query::{quicksi_order, QueryGraph};

    fn fixture() -> (
        gsword_candidate::CandidateGraph,
        QueryGraph,
        gsword_graph::Graph,
    ) {
        let g = gen::erdos_renyi(80, 600, vec![0; 80], 13);
        let q = QueryGraph::new(vec![0; 4], &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        (cg, q, g)
    }

    #[test]
    fn branching_is_unbiased() {
        let (cg, q, g) = fixture();
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let truth = gsword_enumeration_stub::exact(&ctx);
        assert!(truth > 0.0);
        let (est, _) = run_branching(&ctx, &Alley, &BranchingConfig::default(), 8_000, 3);
        let rel = (est.value() - truth).abs() / truth;
        assert!(
            rel < 0.2,
            "branching estimate {} vs truth {truth}",
            est.value()
        );
    }

    #[test]
    fn factor_one_matches_flat_sampler_distribution() {
        let (cg, q, g) = fixture();
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let cfg = BranchingConfig {
            factor: 1,
            ..BranchingConfig::default()
        };
        let (branched, stats) = run_branching(&ctx, &Alley, &cfg, 20_000, 9);
        let flat = run_sequential(&ctx, &Alley, 20_000, 9).estimate;
        // Same estimator, independent streams: estimates agree statistically.
        let ratio = branched.value() / flat.value();
        assert!(
            (0.8..1.25).contains(&ratio),
            "b=1 {} vs flat {}",
            branched.value(),
            flat.value()
        );
        assert_eq!(stats.paths, 20_000, "b=1 trees are single paths");
    }

    #[test]
    fn branching_shares_refines_across_paths() {
        let (cg, q, g) = fixture();
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let cfg = BranchingConfig {
            factor: 4,
            min_set_for_branch: 2,
            max_leaves: 1_000,
        };
        let (_, stats) = run_branching(&ctx, &Alley, &cfg, 2_000, 5);
        assert!(stats.paths > stats.trees, "trees must branch on this graph");
        // The efficiency claim: refine computations per path are below the
        // flat sampler's one-refine-per-path-per-level.
        let refines_per_path = stats.refines as f64 / stats.paths as f64;
        assert!(
            refines_per_path < (ctx.len() - 1) as f64,
            "sharing should cut refines/path below depth: {refines_per_path}"
        );
    }

    #[test]
    fn leaf_cap_bounds_tree_size() {
        let (cg, q, g) = fixture();
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let cfg = BranchingConfig {
            factor: 8,
            min_set_for_branch: 2,
            max_leaves: 16,
        };
        let (_, stats) = run_branching(&ctx, &WanderJoin, &cfg, 100, 1);
        // Each tree stops within factor slack of the cap (siblings already
        // scheduled when the cap trips still terminate).
        assert!(
            stats.paths <= 100 * (16 + 8 * 4),
            "cap keeps trees bounded: {}",
            stats.paths
        );
    }

    #[test]
    #[should_panic(expected = "branching factor")]
    fn zero_factor_rejected() {
        let (cg, q, g) = fixture();
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let cfg = BranchingConfig {
            factor: 0,
            ..BranchingConfig::default()
        };
        run_branching(&ctx, &Alley, &cfg, 1, 1);
    }

    /// Tiny local exact counter so this crate's tests stay independent of
    /// the enumeration crate (which depends on this one).
    mod gsword_enumeration_stub {
        use super::*;

        pub fn exact(ctx: &QueryCtx<'_>) -> f64 {
            let mut prefix = Vec::new();
            let mut count = 0u64;
            rec(ctx, &mut prefix, 0, &mut count);
            count as f64
        }

        fn rec(ctx: &QueryCtx<'_>, prefix: &mut Vec<VertexId>, d: usize, count: &mut u64) {
            if d == ctx.len() {
                *count += 1;
                return;
            }
            let (cand, _, _) = ctx.min_candidate_prefix(prefix, d);
            for &v in cand {
                if prefix.contains(&v) {
                    continue;
                }
                let ok = ctx.backward(d).iter().all(|be| {
                    ctx.cg
                        .has_local(be.edge as usize, prefix[be.pos as usize], v)
                });
                if ok {
                    prefix.push(v);
                    rec(ctx, prefix, d + 1, count);
                    prefix.pop();
                }
            }
        }
    }
}
