//! Sampling-based matching-order selection.
//!
//! The paper's appendix describes how Alley and WanderJoin "determine the
//! best matching order in a round-robin fashion, evaluating each order
//! using a heuristic and selecting the one with the smallest variance",
//! under a maximum execution time. This module implements that selection:
//! candidate orders are probed with a small batch of samples each, and the
//! order with the smallest empirical estimator variance wins (ties break
//! toward higher success ratios, then lower candidate-set sizes).

use std::time::{Duration, Instant};

use gsword_candidate::CandidateGraph;
use gsword_graph::GraphStorage;
use gsword_query::{gcare_order, quicksi_order, MatchingOrder, QueryGraph, QueryVertex};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ctx::QueryCtx;
use crate::estimators::Estimator;
use crate::runner::run_sequential;

/// Configuration of the order selection probe.
#[derive(Debug, Clone, Copy)]
pub struct OrderSelectConfig {
    /// Samples per probed order.
    pub probe_samples: u64,
    /// Extra randomized greedy orders beyond QuickSI and G-CARE.
    pub random_orders: usize,
    /// Wall-clock cap for the whole selection (the paper caps at 10
    /// minutes at full scale; scale this down accordingly).
    pub time_budget: Duration,
    /// RNG seed for probing and randomized orders.
    pub seed: u64,
}

impl Default for OrderSelectConfig {
    fn default() -> Self {
        OrderSelectConfig {
            probe_samples: 2_000,
            random_orders: 4,
            time_budget: Duration::from_secs(10),
            seed: 0x0B5E,
        }
    }
}

/// Probe statistics of one candidate order.
#[derive(Debug, Clone)]
pub struct OrderScore {
    /// The probed order.
    pub order: MatchingOrder,
    /// Empirical variance of the probe's per-sample contribution.
    pub variance: f64,
    /// Probe success ratio.
    pub success_ratio: f64,
}

/// Select the best matching order for `query` on the candidate graph by
/// round-robin probing. Returns the winner and all probe scores (best
/// first).
pub fn select_order<E: Estimator + ?Sized, S: GraphStorage>(
    cg: &CandidateGraph,
    data: &S,
    query: &QueryGraph,
    est: &E,
    cfg: &OrderSelectConfig,
) -> (MatchingOrder, Vec<OrderScore>) {
    let deadline = Instant::now() + cfg.time_budget;
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    let mut candidates: Vec<MatchingOrder> =
        vec![quicksi_order(query, data), gcare_order(query, data)];
    for _ in 0..cfg.random_orders {
        if let Some(o) = random_greedy_order(query, &mut rng) {
            candidates.push(o);
        }
    }
    candidates.dedup();

    let mut scores: Vec<OrderScore> = Vec::with_capacity(candidates.len());
    for (i, order) in candidates.into_iter().enumerate() {
        // Always probe at least the first candidate, then respect the cap.
        if i > 0 && Instant::now() >= deadline {
            break;
        }
        let ctx = QueryCtx::new(cg, &order);
        let report = run_sequential(&ctx, est, cfg.probe_samples, cfg.seed ^ (i as u64) << 17);
        scores.push(OrderScore {
            order,
            variance: report.estimate.variance(),
            success_ratio: report.estimate.success_ratio(),
        });
    }
    scores.sort_by(|a, b| {
        a.variance
            .partial_cmp(&b.variance)
            .unwrap()
            .then(b.success_ratio.partial_cmp(&a.success_ratio).unwrap())
    });
    let best = scores[0].order.clone();
    (best, scores)
}

/// A randomized connected greedy order: random start, then uniformly
/// random frontier extension. Returns `None` only for pathological inputs.
fn random_greedy_order(query: &QueryGraph, rng: &mut SmallRng) -> Option<MatchingOrder> {
    let n = query.num_vertices();
    let start = rng.gen_range(0..n as QueryVertex);
    let mut phi = vec![start];
    let mut in_order = 1u32 << start;
    while phi.len() < n {
        let frontier: Vec<QueryVertex> = (0..n as QueryVertex)
            .filter(|&u| in_order & (1 << u) == 0)
            .filter(|&u| query.adjacency_mask(u) & in_order != 0)
            .collect();
        let &next = frontier.get(rng.gen_range(0..frontier.len().max(1)))?;
        phi.push(next);
        in_order |= 1 << next;
    }
    MatchingOrder::new(query, phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::Alley;
    use gsword_candidate::{build_candidate_graph, BuildConfig};
    use gsword_graph::{gen, Graph};

    fn fixture() -> (Graph, QueryGraph) {
        let g = gen::barabasi_albert(400, 5, gen::zipf_labels(400, 5, 0.9, 3), 3);
        let q = QueryGraph::extract(&g, 5, 7).expect("query");
        (g, q)
    }

    #[test]
    fn selection_returns_valid_order() {
        let (g, q) = fixture();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let (best, scores) = select_order(&cg, &g, &q, &Alley, &OrderSelectConfig::default());
        assert_eq!(best.len(), q.num_vertices());
        assert!(!scores.is_empty());
        // Scores sorted by variance ascending.
        for w in scores.windows(2) {
            assert!(w[0].variance <= w[1].variance);
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let (g, q) = fixture();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let cfg = OrderSelectConfig::default();
        let (a, _) = select_order(&cg, &g, &q, &Alley, &cfg);
        let (b, _) = select_order(&cg, &g, &q, &Alley, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn time_budget_still_probes_one_order() {
        let (g, q) = fixture();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let cfg = OrderSelectConfig {
            time_budget: Duration::ZERO,
            ..OrderSelectConfig::default()
        };
        let (_, scores) = select_order(&cg, &g, &q, &Alley, &cfg);
        assert_eq!(scores.len(), 1, "deadline hit after the first probe");
    }

    #[test]
    fn random_orders_have_connected_prefixes() {
        let (_, q) = fixture();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..16 {
            let o = random_greedy_order(&q, &mut rng).expect("connected query");
            for i in 1..o.len() {
                assert!(!o.backward_positions(i).is_empty());
            }
        }
    }
}
