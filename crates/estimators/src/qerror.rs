//! The q-error metric (Section 6.4).

/// q-error between an estimate and the ground truth:
/// `max(max(1,c)/max(1,ĉ), max(1,ĉ)/max(1,c))`. Always ≥ 1; 1 is exact.
pub fn q_error(estimate: f64, truth: f64) -> f64 {
    let c = truth.max(1.0);
    let e = estimate.max(1.0);
    (c / e).max(e / c)
}

/// Signed q-error for the paper's up/down plots (Figure 13): positive for
/// overestimation, negative for underestimation, magnitude = q-error.
pub fn signed_q_error(estimate: f64, truth: f64) -> f64 {
    let q = q_error(estimate, truth);
    if estimate.max(1.0) >= truth.max(1.0) {
        q
    } else {
        -q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimate_is_one() {
        assert_eq!(q_error(100.0, 100.0), 1.0);
        assert_eq!(signed_q_error(100.0, 100.0), 1.0);
    }

    #[test]
    fn symmetric_ratio() {
        assert_eq!(q_error(50.0, 100.0), 2.0);
        assert_eq!(q_error(200.0, 100.0), 2.0);
        assert_eq!(signed_q_error(50.0, 100.0), -2.0);
        assert_eq!(signed_q_error(200.0, 100.0), 2.0);
    }

    #[test]
    fn zero_estimate_clamps_to_one() {
        // The empty-estimate case of WordNet: q-error = truth.
        assert_eq!(q_error(0.0, 1e6), 1e6);
        assert_eq!(signed_q_error(0.0, 1e6), -1e6);
    }

    #[test]
    fn zero_truth_clamps_to_one() {
        assert_eq!(q_error(5.0, 0.0), 5.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }
}
