//! RW estimators for subgraph counting: the Refine–Sample–Validate (RSV)
//! abstraction, WanderJoin, Alley, and the Horvitz–Thompson aggregation.
//!
//! A sample grows a partial instance one data vertex per iteration along a
//! matching order. At each iteration (Section 3.1):
//!
//! 1. **Refine** — prune the minimum local candidate set,
//! 2. **Sample** — draw a vertex uniformly from the refined set, extending
//!    the inclusion probability,
//! 3. **Validate** — check the grown instance is still a valid partial
//!    embedding; otherwise the sample terminates with indicator 0.
//!
//! A completed sample contributes `1/ℙ(s)` to the Horvitz–Thompson
//! estimator (Equation 1). WanderJoin and Alley differ only in how much
//! work Refine does versus Validate (Figure 19), which is exactly the
//! degree of freedom the RSV abstraction exposes.

pub mod branching;
pub mod ctx;
pub mod estimate;
pub mod estimators;
pub mod order_select;
pub mod qerror;
pub mod runner;
pub mod sample;

pub use branching::{run_branching, BranchingConfig, BranchingStats};
pub use ctx::{BackwardEdge, QueryCtx, Segment};
pub use estimate::Estimate;
pub use estimators::{with_estimator, Alley, Estimator, EstimatorKind, WanderJoin};
pub use order_select::{select_order, OrderScore, OrderSelectConfig};
pub use qerror::{q_error, signed_q_error};
pub use runner::{
    run_one_sample, run_parallel_cpu, run_partial_sample, run_sequential, CpuRunReport,
};
pub use sample::{SampleState, MAX_QUERY};
