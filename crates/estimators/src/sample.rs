//! Per-sample state: the partial instance and its inclusion probability.

use gsword_graph::VertexId;

/// Maximum query size supported by the fixed-size sample state. Matches
/// [`gsword_query::QueryGraph::MAX_VERTICES`]; fixed sizing keeps the state
/// `Copy` — the property that makes warp-level `_shfl` inheritance cheap
/// (static memory management, Section 4.1's discussion).
pub const MAX_QUERY: usize = 32;

/// A partial instance under construction: the data vertices matched at each
/// matching-order position, the current depth, and the accumulated
/// inclusion probability `ℙ(s) = ∏ 1/|Cᵢ|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleState {
    /// `ins[i]` = data vertex matched at order position `i` (`i < depth`).
    pub ins: [VertexId; MAX_QUERY],
    /// Number of matched positions.
    pub depth: u8,
    /// Inclusion probability of the partial instance so far.
    pub prob: f64,
}

impl Default for SampleState {
    fn default() -> Self {
        Self::new()
    }
}

impl SampleState {
    /// Fresh sample: empty instance, probability 1.
    #[inline]
    pub fn new() -> Self {
        SampleState {
            ins: [0; MAX_QUERY],
            depth: 0,
            prob: 1.0,
        }
    }

    /// The matched prefix as a slice.
    #[inline]
    pub fn prefix(&self) -> &[VertexId] {
        &self.ins[..self.depth as usize]
    }

    /// Whether `v` already appears in the prefix (`DupCheck` of Fig. 19 —
    /// embeddings are injective).
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.prefix().contains(&v)
    }

    /// Extend with `v`, multiplying the inclusion probability by
    /// `step_prob` (the probability of drawing `v` at this iteration).
    #[inline]
    pub fn push(&mut self, v: VertexId, step_prob: f64) {
        debug_assert!((self.depth as usize) < MAX_QUERY);
        self.ins[self.depth as usize] = v;
        self.depth += 1;
        self.prob *= step_prob;
    }

    /// Horvitz–Thompson weight of a *completed* sample: `1/ℙ(s)`.
    #[inline]
    pub fn ht_weight(&self) -> f64 {
        1.0 / self.prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tracks_depth_and_prob() {
        let mut s = SampleState::new();
        assert_eq!(s.depth, 0);
        assert_eq!(s.prob, 1.0);
        s.push(7, 0.5);
        s.push(9, 1.0 / 3.0);
        assert_eq!(s.prefix(), &[7, 9]);
        assert!((s.prob - 1.0 / 6.0).abs() < 1e-15);
        assert!((s.ht_weight() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn contains_checks_prefix_only() {
        let mut s = SampleState::new();
        s.push(3, 1.0);
        assert!(s.contains(3));
        assert!(!s.contains(0), "untouched slots must not leak");
    }

    #[test]
    fn state_is_copy_for_shfl() {
        fn assert_copy<T: Copy>() {}
        assert_copy::<SampleState>();
        assert!(std::mem::size_of::<SampleState>() <= 160);
    }
}
