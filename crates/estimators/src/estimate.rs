//! Horvitz–Thompson aggregation (Equation 1), with variance tracking.

/// Accumulated Horvitz–Thompson estimate over a set of samples.
///
/// Each completed sample contributes its HT weight `1/ℙ(s)`; invalid
/// samples contribute 0 but still count toward `n`. The estimate of the
/// subgraph count is the mean contribution. The sum of squared
/// contributions is tracked so callers can derive sampling variance and
/// confidence intervals (an extension over the paper, which reports
/// point estimates; the CI is exact for independent samples and a
/// heuristic under sample inheritance, where leaf contributions within a
/// warp round are correlated).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Estimate {
    /// Sum of HT weights of valid samples.
    pub weight_sum: f64,
    /// Sum of squared HT weights of valid samples.
    pub weight_sq_sum: f64,
    /// Total samples executed (valid + invalid).
    pub samples: u64,
    /// Samples that completed a full instance.
    pub valid: u64,
}

impl Estimate {
    /// Record one completed (valid) sample with HT weight `w`.
    #[inline]
    pub fn record_valid(&mut self, w: f64) {
        self.weight_sum += w;
        self.weight_sq_sum += w * w;
        self.samples += 1;
        self.valid += 1;
    }

    /// Record one invalid sample (indicator 0).
    #[inline]
    pub fn record_invalid(&mut self) {
        self.samples += 1;
    }

    /// The HT estimate `Σ wᵢ / n` (0 when no samples ran).
    pub fn value(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.weight_sum / self.samples as f64
        }
    }

    /// Unbiased sample variance of the per-sample contribution
    /// (`Σwᵢ²/n − mean²`, Bessel-corrected). 0 with fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.samples < 2 {
            return 0.0;
        }
        let n = self.samples as f64;
        let mean = self.value();
        ((self.weight_sq_sum / n) - mean * mean).max(0.0) * n / (n - 1.0)
    }

    /// Standard error of the estimate (`√(variance/n)`).
    pub fn std_error(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            (self.variance() / self.samples as f64).sqrt()
        }
    }

    /// Half-width of a normal-approximation 95% confidence interval,
    /// relative to the estimate. `f64::INFINITY` when the estimate is 0.
    pub fn rel_ci95(&self) -> f64 {
        let v = self.value();
        if v <= 0.0 {
            return f64::INFINITY;
        }
        1.96 * self.std_error() / v
    }

    /// Fraction of samples that found a full instance (Figure 14's
    /// "sample success ratio").
    pub fn success_ratio(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.valid as f64 / self.samples as f64
        }
    }

    /// Merge a partial estimate from another thread/block.
    pub fn merge(&mut self, other: &Estimate) {
        self.weight_sum += other.weight_sum;
        self.weight_sq_sum += other.weight_sq_sum;
        self.samples += other.samples;
        self.valid += other.valid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimate_is_zero() {
        let e = Estimate::default();
        assert_eq!(e.value(), 0.0);
        assert_eq!(e.success_ratio(), 0.0);
        assert_eq!(e.variance(), 0.0);
        assert_eq!(e.std_error(), 0.0);
        assert_eq!(e.rel_ci95(), f64::INFINITY);
    }

    #[test]
    fn mean_of_contributions() {
        let mut e = Estimate::default();
        e.record_valid(24.0);
        e.record_invalid();
        // The paper's Example 2: one valid (weight 24) + one invalid → 12.
        assert_eq!(e.value(), 12.0);
        assert_eq!(e.success_ratio(), 0.5);
    }

    #[test]
    fn variance_of_known_sample() {
        let mut e = Estimate::default();
        e.record_valid(2.0);
        e.record_valid(4.0);
        // Sample variance of {2,4} with Bessel correction = 2.
        assert!((e.variance() - 2.0).abs() < 1e-12);
        assert!((e.std_error() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_contributions_have_zero_variance() {
        let mut e = Estimate::default();
        for _ in 0..10 {
            e.record_valid(5.0);
        }
        assert!(e.variance().abs() < 1e-9);
        assert!(e.rel_ci95().abs() < 1e-9);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = Estimate::default();
        let mut large = Estimate::default();
        for i in 0..20u64 {
            let w = if i % 2 == 0 { 10.0 } else { 0.0 };
            if w > 0.0 {
                small.record_valid(w);
            } else {
                small.record_invalid();
            }
        }
        for i in 0..2000u64 {
            let w = if i % 2 == 0 { 10.0 } else { 0.0 };
            if w > 0.0 {
                large.record_valid(w);
            } else {
                large.record_invalid();
            }
        }
        assert!(large.rel_ci95() < small.rel_ci95());
    }

    #[test]
    fn merge_matches_sequential() {
        let mut a = Estimate::default();
        a.record_valid(10.0);
        a.record_invalid();
        let mut b = Estimate::default();
        b.record_valid(20.0);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.samples, 3);
        assert_eq!(merged.valid, 2);
        assert_eq!(merged.value(), 10.0);
        assert_eq!(merged.weight_sq_sum, 100.0 + 400.0);
    }
}
