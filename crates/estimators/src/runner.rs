//! Sequential and multi-threaded CPU sampling drivers.
//!
//! The parallel driver is the reproduction's stand-in for the paper's
//! CPU baseline (G-CARE with dynamic scheduling): every sample is a task
//! unit; workers grab fixed-size batches off an atomic counter so skewed
//! samples don't imbalance threads. Results are deterministic in the seed
//! because each batch derives its RNG from the batch index, not the worker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gsword_graph::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ctx::QueryCtx;
use crate::estimate::Estimate;
use crate::estimators::Estimator;
use crate::sample::SampleState;

/// Samples per scheduling batch in the parallel driver.
const BATCH: u64 = 512;

/// Outcome of a CPU sampling run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuRunReport {
    /// Aggregated HT estimate.
    pub estimate: Estimate,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
}

/// Execute one full RSV sample (the inner loop of Algorithm 1), returning
/// `Some(ht_weight)` for a valid full instance and `None` otherwise.
pub fn run_one_sample<E: Estimator + ?Sized>(
    ctx: &QueryCtx<'_>,
    est: &E,
    rng: &mut SmallRng,
    scratch: &mut Vec<VertexId>,
) -> Option<f64> {
    run_partial_sample(ctx, est, rng, scratch, ctx.len()).map(|s| s.ht_weight())
}

/// Execute an RSV sample truncated at `depth` matched vertices, returning
/// the partial instance with its inclusion probability — the GPU-side half
/// of the trawling strategy (Algorithm 4 line 4).
pub fn run_partial_sample<E: Estimator + ?Sized>(
    ctx: &QueryCtx<'_>,
    est: &E,
    rng: &mut SmallRng,
    scratch: &mut Vec<VertexId>,
    depth: usize,
) -> Option<SampleState> {
    let mut s = SampleState::new();
    let mut segs = Vec::with_capacity(8);
    for d in 0..depth.min(ctx.len()) {
        segs.clear();
        ctx.backward_segments(s.prefix(), d, &mut segs);
        let (cand, _) = if d == 0 {
            ctx.root_candidates()
        } else {
            QueryCtx::min_of_segments(&segs)
        };
        if cand.is_empty() {
            return None;
        }
        let (v, rlen) = if est.needs_refine() && !segs.is_empty() {
            scratch.clear();
            est.refine_into(&segs, cand, scratch);
            if scratch.is_empty() {
                return None;
            }
            (scratch[rng.gen_range(0..scratch.len())], scratch.len())
        } else {
            (cand[rng.gen_range(0..cand.len())], cand.len())
        };
        if !est.validate(&segs, &s, v) {
            return None;
        }
        s.push(v, 1.0 / rlen as f64);
    }
    Some(s)
}

/// Run `n` samples sequentially with the given seed.
pub fn run_sequential<E: Estimator + ?Sized>(
    ctx: &QueryCtx<'_>,
    est: &E,
    n: u64,
    seed: u64,
) -> CpuRunReport {
    let t0 = Instant::now();
    let mut estimate = Estimate::default();
    let mut scratch = Vec::new();
    let batches = n.div_ceil(BATCH);
    for b in 0..batches {
        let count = BATCH.min(n - b * BATCH);
        run_batch(ctx, est, b, count, seed, &mut scratch, &mut estimate);
    }
    CpuRunReport {
        estimate,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

/// Run `n` samples across `threads` workers with dynamic batch scheduling.
///
/// Deterministic: produces the same estimate as [`run_sequential`] for the
/// same `(n, seed)` regardless of thread count.
pub fn run_parallel_cpu<E: Estimator + ?Sized>(
    ctx: &QueryCtx<'_>,
    est: &E,
    n: u64,
    seed: u64,
    threads: usize,
) -> CpuRunReport {
    let threads = threads.max(1);
    if threads == 1 {
        return run_sequential(ctx, est, n, seed);
    }
    let t0 = Instant::now();
    let batches = n.div_ceil(BATCH);
    let next = AtomicU64::new(0);
    let partials: Vec<Estimate> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move |_| {
                    let mut local = Estimate::default();
                    let mut scratch = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= batches {
                            break;
                        }
                        let count = BATCH.min(n - b * BATCH);
                        run_batch(ctx, est, b, count, seed, &mut scratch, &mut local);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope panicked");

    let mut estimate = Estimate::default();
    for p in &partials {
        estimate.merge(p);
    }
    CpuRunReport {
        estimate,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

fn run_batch<E: Estimator + ?Sized>(
    ctx: &QueryCtx<'_>,
    est: &E,
    batch: u64,
    count: u64,
    seed: u64,
    scratch: &mut Vec<VertexId>,
    out: &mut Estimate,
) {
    // Per-batch RNG keyed by batch index → thread-count independence.
    let mut rng = SmallRng::seed_from_u64(seed ^ batch.wrapping_mul(0x9E3779B97F4A7C15));
    for _ in 0..count {
        match run_one_sample(ctx, est, &mut rng, scratch) {
            Some(w) => out.record_valid(w),
            None => out.record_invalid(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::{Alley, WanderJoin};
    use gsword_candidate::{build_candidate_graph, BuildConfig, CandidateGraph};
    use gsword_graph::GraphBuilder;
    use gsword_query::{MatchingOrder, QueryGraph};

    /// Double triangle (0-1-2, 1-2-3). A triangle query has exactly 12
    /// embeddings (2 triangles × 3! orderings).
    fn fixture() -> (CandidateGraph, QueryGraph) {
        let mut b = GraphBuilder::with_vertices(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let q = QueryGraph::new(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        (cg, q)
    }

    #[test]
    fn estimators_are_unbiased_on_triangles() {
        let (cg, q) = fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        for (name, r) in [
            ("WJ", run_sequential(&ctx, &WanderJoin, 40_000, 7)),
            ("AL", run_sequential(&ctx, &Alley, 40_000, 7)),
        ] {
            let v = r.estimate.value();
            assert!(
                (10.0..14.0).contains(&v),
                "{name}: estimate {v} should be near 12"
            );
        }
    }

    #[test]
    fn alley_success_ratio_at_least_wj() {
        let (cg, q) = fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let wj = run_sequential(&ctx, &WanderJoin, 10_000, 3).estimate;
        let al = run_sequential(&ctx, &Alley, 10_000, 3).estimate;
        assert!(
            al.success_ratio() >= wj.success_ratio(),
            "Alley ({}) should not trail WanderJoin ({})",
            al.success_ratio(),
            wj.success_ratio()
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let (cg, q) = fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let a = run_sequential(&ctx, &Alley, 5_000, 11).estimate;
        let b = run_sequential(&ctx, &Alley, 5_000, 11).estimate;
        assert_eq!(a, b);
        let c = run_sequential(&ctx, &Alley, 5_000, 12).estimate;
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn parallel_matches_sequential() {
        let (cg, q) = fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let seq = run_sequential(&ctx, &Alley, 13_000, 5).estimate;
        for threads in [2, 4, 8] {
            let par = run_parallel_cpu(&ctx, &Alley, 13_000, 5, threads).estimate;
            assert_eq!(seq.weight_sum, par.weight_sum, "threads={threads}");
            assert_eq!(seq.samples, par.samples);
            assert_eq!(seq.valid, par.valid);
        }
    }

    #[test]
    fn sample_count_is_exact() {
        let (cg, q) = fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        // Non-multiple of the batch size exercises the tail batch.
        let r = run_parallel_cpu(&ctx, &WanderJoin, 1_234, 9, 4);
        assert_eq!(r.estimate.samples, 1_234);
    }
}
