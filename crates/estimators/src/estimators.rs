//! WanderJoin and Alley as instances of the RSV abstraction (Fig. 19).

use gsword_graph::{intersect, VertexId};

use crate::ctx::Segment;
use crate::sample::{SampleState, MAX_QUERY};

/// Which built-in estimator to run — the paper's two state-of-the-art RW
/// estimators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// WanderJoin [Li et al.]: pass-through Refine, edge checks in Validate.
    WanderJoin,
    /// Alley [Kim et al.]: full intersection Refine, duplicate check in
    /// Validate.
    Alley,
}

impl EstimatorKind {
    /// Short display name used in experiment tables ("WJ"/"AL").
    pub fn short(&self) -> &'static str {
        match self {
            EstimatorKind::WanderJoin => "WJ",
            EstimatorKind::Alley => "AL",
        }
    }
}

/// The user-facing RSV interface of gSWORD (Fig. 19).
///
/// At each iteration the engine resolves the backward constraints of the
/// current position into local candidate [`Segment`]s, then consults the
/// estimator:
///
/// * [`Estimator::refine_one`] decides whether one candidate survives the
///   Refine step (evaluated per candidate so warp streaming can assign one
///   candidate per lane);
/// * [`Estimator::validate`] checks the sampled vertex (duplicate checks
///   and any edge checks the estimator deferred out of Refine).
///
/// The split between the two is the estimator's design space: WanderJoin
/// defers everything to Validate, Alley pulls everything into Refine, and
/// users can implement anything in between (see the `custom_estimator`
/// example).
pub trait Estimator: Sync {
    /// Whether Refine filters at all. When `false` the engine samples
    /// straight from the minimum candidate segment (WanderJoin).
    fn needs_refine(&self) -> bool;

    /// Refine one candidate `v` against the backward segments.
    fn refine_one(&self, segs: &[Segment<'_>], v: VertexId) -> bool;

    /// Refine a whole candidate segment at once, appending survivors to
    /// `out` in `cand` order (`cand` is sorted ascending, as every
    /// candidate segment in the system is).
    ///
    /// The default forwards to [`Estimator::refine_one`] per element, so
    /// custom estimators get set-refinement for free; built-ins with
    /// set-level structure override it with a batched strategy (Alley uses
    /// the k-way adaptive intersection). Overrides must return exactly the
    /// per-element result — the engine's bit-identical-estimates guarantee
    /// rides on it.
    fn refine_into(&self, segs: &[Segment<'_>], cand: &[VertexId], out: &mut Vec<VertexId>) {
        out.extend(cand.iter().copied().filter(|&v| self.refine_one(segs, v)));
    }

    /// Validate the sampled vertex `v` against the backward segments and
    /// the partial instance.
    fn validate(&self, segs: &[Segment<'_>], s: &SampleState, v: VertexId) -> bool;

    /// The kind tag (for reports). Custom estimators may pick whichever
    /// built-in kind they behave most like.
    fn kind(&self) -> EstimatorKind;
}

/// WanderJoin: samples from the minimum local candidate set directly and
/// validates all backward edges afterwards. Cheap iterations, more invalid
/// samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct WanderJoin;

impl Estimator for WanderJoin {
    #[inline]
    fn needs_refine(&self) -> bool {
        false
    }

    #[inline]
    fn refine_one(&self, _segs: &[Segment<'_>], _v: VertexId) -> bool {
        true
    }

    #[inline]
    fn validate(&self, segs: &[Segment<'_>], s: &SampleState, v: VertexId) -> bool {
        // Duplicate check plus *all* backward edges (not just the minimum
        // segment the vertex was drawn from).
        !s.contains(v) && segs.iter().all(|(seg, _)| intersect::member(seg, v))
    }

    #[inline]
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::WanderJoin
    }
}

/// Alley: refines the candidate set by intersecting with *all* backward
/// constraints before sampling, so every refined candidate yields a valid
/// partial instance (up to duplicates). Expensive iterations, fewer invalid
/// samples, lower variance.
#[derive(Debug, Clone, Copy, Default)]
pub struct Alley;

impl Estimator for Alley {
    #[inline]
    fn needs_refine(&self) -> bool {
        true
    }

    #[inline]
    fn refine_one(&self, segs: &[Segment<'_>], v: VertexId) -> bool {
        segs.iter().all(|(seg, _)| intersect::member(seg, v))
    }

    /// Batched Refine: one ascending pass over `cand` with a monotone
    /// gallop cursor per backward segment (smallest segment probed first),
    /// instead of `|cand| × |segs|` independent binary searches. Same
    /// survivors in the same order as the per-element path — the
    /// intersection of sorted sets doesn't depend on strategy.
    fn refine_into(&self, segs: &[Segment<'_>], cand: &[VertexId], out: &mut Vec<VertexId>) {
        if segs.is_empty() {
            out.extend_from_slice(cand);
            return;
        }
        let mut buf: [&[VertexId]; MAX_QUERY] = [&[]; MAX_QUERY];
        if segs.len() <= MAX_QUERY {
            for (slot, (seg, _)) in buf.iter_mut().zip(segs) {
                *slot = seg;
            }
            intersect::filter_by_all_into(cand, &buf[..segs.len()], out);
        } else {
            let probes: Vec<&[VertexId]> = segs.iter().map(|&(seg, _)| seg).collect();
            intersect::filter_by_all_into(cand, &probes, out);
        }
    }

    #[inline]
    fn validate(&self, _segs: &[Segment<'_>], s: &SampleState, v: VertexId) -> bool {
        !s.contains(v)
    }

    #[inline]
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Alley
    }
}

/// Dispatch an [`EstimatorKind`] to a monomorphized call of `f`.
pub fn with_estimator<R>(kind: EstimatorKind, f: impl FnOnce(&dyn Estimator) -> R) -> R {
    match kind {
        EstimatorKind::WanderJoin => f(&WanderJoin),
        EstimatorKind::Alley => f(&Alley),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segs<'a>(a: &'a [VertexId], b: &'a [VertexId]) -> Vec<Segment<'a>> {
        vec![(a, 0), (b, 100)]
    }

    #[test]
    fn wanderjoin_validate_checks_all_segments() {
        let s1 = [1u32, 2, 5];
        let s2 = [2u32, 3, 5];
        let state = SampleState::new();
        let segs = segs(&s1, &s2);
        assert!(WanderJoin.validate(&segs, &state, 2));
        assert!(WanderJoin.validate(&segs, &state, 5));
        assert!(
            !WanderJoin.validate(&segs, &state, 1),
            "1 missing from second"
        );
        assert!(
            !WanderJoin.validate(&segs, &state, 3),
            "3 missing from first"
        );
    }

    #[test]
    fn wanderjoin_validate_rejects_duplicates() {
        let s1 = [1u32, 2];
        let mut state = SampleState::new();
        state.push(2, 1.0);
        assert!(!WanderJoin.validate(&[(&s1, 0)], &state, 2));
        assert!(WanderJoin.validate(&[(&s1, 0)], &state, 1));
    }

    #[test]
    fn alley_refine_equals_wj_edge_checks() {
        let s1 = [1u32, 2, 5];
        let s2 = [2u32, 3, 5];
        let state = SampleState::new();
        let segs = segs(&s1, &s2);
        for v in 0..6u32 {
            let alley = Alley.refine_one(&segs, v) && Alley.validate(&segs, &state, v);
            let wj = WanderJoin.validate(&segs, &state, v);
            assert_eq!(alley, wj, "estimators must agree on validity of v{v}");
        }
    }

    #[test]
    fn wj_refine_is_identity() {
        assert!(WanderJoin.refine_one(&[(&[], 0)], 7));
        assert!(!WanderJoin.needs_refine());
        assert!(Alley.needs_refine());
    }

    #[test]
    fn empty_segments_accept_everything() {
        // Root position: no backward constraints.
        let state = SampleState::new();
        assert!(WanderJoin.validate(&[], &state, 3));
        assert!(Alley.refine_one(&[], 3));
    }

    #[test]
    fn alley_refine_into_matches_per_element() {
        // The batched k-way Refine must keep the bit-identity guarantee:
        // same survivors, same order, as filtering with refine_one.
        let s1: Vec<VertexId> = (0..300).filter(|v| v % 2 == 0).collect();
        let s2: Vec<VertexId> = (0..300).filter(|v| v % 3 == 0).collect();
        let s3: Vec<VertexId> = (100..200).collect();
        let cand: Vec<VertexId> = (0..300).filter(|v| v % 5 == 0).collect();
        for segs in [
            vec![(&s1[..], 0)],
            vec![(&s1[..], 0), (&s2[..], 10)],
            vec![(&s1[..], 0), (&s2[..], 10), (&s3[..], 20)],
            vec![(&[][..], 0), (&s1[..], 0)],
            vec![],
        ] {
            let mut batched = Vec::new();
            Alley.refine_into(&segs, &cand, &mut batched);
            let want: Vec<VertexId> = cand
                .iter()
                .copied()
                .filter(|&v| Alley.refine_one(&segs, v))
                .collect();
            assert_eq!(batched, want, "segs={}", segs.len());
        }
    }

    #[test]
    fn default_refine_into_uses_refine_one() {
        // WanderJoin doesn't override refine_into: the provided method
        // passes everything through because WJ's refine_one always
        // accepts.
        let s1 = [1u32, 5];
        let cand = [0u32, 1, 5, 9];
        let mut out = Vec::new();
        WanderJoin.refine_into(&[(&s1, 0)], &cand, &mut out);
        assert_eq!(out, cand);
    }

    #[test]
    fn kinds() {
        assert_eq!(EstimatorKind::WanderJoin.short(), "WJ");
        assert_eq!(EstimatorKind::Alley.short(), "AL");
        with_estimator(EstimatorKind::Alley, |e| {
            assert_eq!(e.kind(), EstimatorKind::Alley);
        });
        with_estimator(EstimatorKind::WanderJoin, |e| {
            assert_eq!(e.kind(), EstimatorKind::WanderJoin);
        });
    }
}
