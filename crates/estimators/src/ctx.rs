//! Per-query execution context: candidate graph + matching order with
//! precomputed backward-edge tables, and `GetMinCandidate`.

use gsword_candidate::CandidateGraph;
use gsword_graph::VertexId;
use gsword_query::{MatchingOrder, QueryVertex};

use crate::sample::SampleState;

/// A backward constraint of an order position: the earlier position `pos`
/// and the directed candidate-graph edge index `edge` from that position's
/// query vertex to the current one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackwardEdge {
    /// Earlier matching-order position.
    pub pos: u8,
    /// Directed edge index `φ[pos] → φ[i]` in the candidate graph.
    pub edge: u32,
}

/// A resolved backward constraint at sampling time: the local candidate
/// set (`C(u', u, v')`) plus its element offset inside the backing array
/// (for the SIMT memory model).
pub type Segment<'a> = (&'a [VertexId], usize);

/// Everything a sampler needs to execute one query: the candidate graph,
/// the matching order, and per-position backward edges resolved to
/// candidate-graph edge indices.
#[derive(Debug, Clone)]
pub struct QueryCtx<'a> {
    /// The candidate graph being sampled.
    pub cg: &'a CandidateGraph,
    /// The matching order `φ`.
    pub order: &'a MatchingOrder,
    backward: Vec<Vec<BackwardEdge>>,
}

impl<'a> QueryCtx<'a> {
    /// Build the context. Panics if `order` and `cg` disagree on the query
    /// (an edge of the order's query is missing from the candidate graph).
    pub fn new(cg: &'a CandidateGraph, order: &'a MatchingOrder) -> Self {
        assert_eq!(cg.num_query_vertices(), order.len());
        let backward = (0..order.len())
            .map(|i| {
                order
                    .backward_positions(i)
                    .iter()
                    .map(|&j| {
                        let u_from = order.vertex_at(j as usize);
                        let u_to = order.vertex_at(i);
                        let edge = cg
                            .edge_index(u_from, u_to)
                            .expect("order edge must exist in candidate graph")
                            as u32;
                        BackwardEdge { pos: j, edge }
                    })
                    .collect()
            })
            .collect();
        QueryCtx {
            cg,
            order,
            backward,
        }
    }

    /// Number of matching-order positions (query vertices).
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the query is empty (never for valid queries).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Query vertex at position `i`.
    #[inline]
    pub fn vertex_at(&self, i: usize) -> QueryVertex {
        self.order.vertex_at(i)
    }

    /// The backward constraints of position `i`.
    #[inline]
    pub fn backward(&self, i: usize) -> &[BackwardEdge] {
        &self.backward[i]
    }

    /// Resolve the backward constraints of position `d` against a matched
    /// prefix into local candidate segments, appended to `out` in
    /// [`QueryCtx::backward`] order. Empty for `d == 0`.
    #[inline]
    pub fn backward_segments(&self, prefix: &[VertexId], d: usize, out: &mut Vec<Segment<'a>>) {
        for be in &self.backward[d] {
            out.push(
                self.cg
                    .local_with_addr(be.edge as usize, prefix[be.pos as usize]),
            );
        }
    }

    /// The global candidate segment of the root position (`d == 0`).
    #[inline]
    pub fn root_candidates(&self) -> Segment<'a> {
        self.cg.global_with_addr(self.vertex_at(0))
    }

    /// `GetMinCandidate` (Algorithm 1, line 8): the smallest candidate set
    /// for extending `s` at position `d`, together with the element offset
    /// of the set inside its backing array and whether it is a global set
    /// (`d == 0`) or a local one.
    ///
    /// Returns an empty slice when some backward constraint has no
    /// compatible neighbors — the sample is then invalid.
    pub fn min_candidate(&self, s: &SampleState, d: usize) -> (&'a [VertexId], usize, bool) {
        self.min_candidate_prefix(s.prefix(), d)
    }

    /// [`QueryCtx::min_candidate`] over a bare matched prefix (used by the
    /// exact enumerator, which carries no probability state).
    pub fn min_candidate_prefix(
        &self,
        prefix: &[VertexId],
        d: usize,
    ) -> (&'a [VertexId], usize, bool) {
        if d == 0 {
            let (set, addr) = self.root_candidates();
            return (set, addr, true);
        }
        let mut best: Option<Segment<'a>> = None;
        for be in &self.backward[d] {
            let v = prefix[be.pos as usize];
            let (set, addr) = self.cg.local_with_addr(be.edge as usize, v);
            match best {
                Some((b, _)) if b.len() <= set.len() => {}
                _ => best = Some((set, addr)),
            }
            if set.is_empty() {
                break; // cannot do better than empty
            }
        }
        let (set, addr) = best.expect("every position d ≥ 1 has a backward edge");
        (set, addr, false)
    }

    /// Pick the minimum segment out of resolved backward segments (the
    /// engine resolves segments once and reuses them for Refine and
    /// Validate).
    pub fn min_of_segments<'s>(segs: &'s [Segment<'a>]) -> Segment<'a> {
        *segs
            .iter()
            .min_by_key(|(seg, _)| seg.len())
            .expect("positions d ≥ 1 always have a backward segment")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsword_candidate::{build_candidate_graph, BuildConfig};
    use gsword_graph::{Graph, GraphBuilder};
    use gsword_query::QueryGraph;

    fn setup() -> (Graph, QueryGraph) {
        // Two triangles sharing an edge: 0-1-2, 1-2-3; labels all 0.
        let mut b = GraphBuilder::with_vertices(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let q = QueryGraph::new(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        (g, q)
    }

    #[test]
    fn backward_edges_resolve() {
        let (g, q) = setup();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        assert_eq!(ctx.backward(0).len(), 0);
        assert_eq!(ctx.backward(1).len(), 1);
        assert_eq!(ctx.backward(2).len(), 2);
        assert_eq!(ctx.backward(1)[0].pos, 0);
    }

    #[test]
    fn min_candidate_global_at_root() {
        let (g, q) = setup();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let s = SampleState::new();
        let (set, _, is_global) = ctx.min_candidate(&s, 0);
        assert!(is_global);
        assert_eq!(set, cg.global(0));
    }

    #[test]
    fn min_candidate_picks_smallest_local() {
        let (g, q) = setup();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let mut s = SampleState::new();
        s.push(0, 1.0); // match φ[0]=u0 → v0
        s.push(1, 1.0); // match φ[1]=u1 → v1
        let (set, _, is_global) = ctx.min_candidate(&s, 2);
        assert!(!is_global);
        assert!(set.len() <= 2, "min candidate should pick the smaller set");
        assert!(!set.is_empty());
    }

    #[test]
    fn segments_match_min_candidate() {
        let (g, q) = setup();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let mut s = SampleState::new();
        s.push(0, 1.0);
        s.push(1, 1.0);
        let mut segs = Vec::new();
        ctx.backward_segments(s.prefix(), 2, &mut segs);
        assert_eq!(segs.len(), 2);
        let (min_seg, _) = QueryCtx::min_of_segments(&segs);
        let (direct, _, _) = ctx.min_candidate(&s, 2);
        assert_eq!(min_seg.len(), direct.len());
    }
}
