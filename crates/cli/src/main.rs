//! `gsword` — command-line subgraph counting.
//!
//! ```text
//! gsword stats    <graph>
//! gsword generate <dataset> -o <file>
//! gsword estimate <graph> -q <query> [options]
//! gsword exact    <graph> -q <query> [--budget N] [--threads N]
//! gsword motifs   <graph> [--samples N]
//! gsword orders   <graph> -q <query> [--probe N]
//! ```
//!
//! `<graph>` is a suite dataset name (`yeast`, …, `uk2002`), a `t/v/e`
//! file, or a SNAP edge list (`.el`). `<query>` is a `t/v/e` query file or
//! `extract:<k>[:<seed>]` to extract one from the data graph.

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
