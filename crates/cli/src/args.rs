//! Minimal flag parser — no external dependencies.

use std::collections::HashMap;

/// Parsed command line: positional arguments and `--flag [value]` options.
#[derive(Debug, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["--trawl", "--profile", "--help"];

impl Args {
    /// Parse `argv` (after the subcommand). Short `-q`/`-o` aliases map to
    /// `--query`/`--output`.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut out = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            let a = match a.as_str() {
                "-q" => "--query".to_string(),
                "-o" => "--output".to_string(),
                other => other.to_string(),
            };
            if let Some(name) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&a.as_str()) {
                    out.flags.insert(name.to_string(), "true".to_string());
                } else {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("flag --{name} needs a value"))?;
                    out.flags.insert(name.to_string(), v.clone());
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// Positional argument `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(|s| s.as_str())
    }

    /// String flag value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// Boolean flag presence.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// Parsed numeric flag with a default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value for --{name}: {v}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_mixed() {
        let a = Args::parse(&sv(&[
            "yeast",
            "-q",
            "q.txt",
            "--samples",
            "500",
            "--trawl",
        ]))
        .unwrap();
        assert_eq!(a.positional(0), Some("yeast"));
        assert_eq!(a.get("query"), Some("q.txt"));
        assert_eq!(a.num::<u64>("samples", 0).unwrap(), 500);
        assert!(a.has("trawl"));
        assert!(!a.has("output"));
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Args::parse(&sv(&["--samples"])).is_err());
    }

    #[test]
    fn bad_number_is_error() {
        let a = Args::parse(&sv(&["--samples", "xyz"])).unwrap();
        assert!(a.num::<u64>("samples", 0).is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&sv(&[])).unwrap();
        assert_eq!(a.num::<u64>("samples", 7).unwrap(), 7);
    }
}
