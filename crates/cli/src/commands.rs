//! Subcommand implementations.

use gsword_core::prelude::*;
use gsword_core::{datasets, estimators, graph, query};

use crate::args::Args;

/// Usage text shown on errors and `--help`.
pub const USAGE: &str = "\
usage:
  gsword stats    <graph> [--storage csr|compressed]
  gsword generate <dataset> -o <file>
  gsword pack     <dataset|all> -o <file|dir> [--scale N]
  gsword estimate <graph> -q <query> [--samples N] [--estimator wj|alley]
                  [--backend cpu|gpu-baseline|gsword] [--seed N] [--trawl]
                  [--storage csr|compressed] [--decode-cache BYTES]
                  [--sanitize full|sync,race,init]
                  [--devices N] [--streams N] [--sim-workers N]
                  [--profile [--trace-out <file>]]
  gsword exact    <graph> -q <query> [--budget N] [--threads N]
  gsword motifs   <graph> [--samples N] [--label L]
  gsword orders   <graph> -q <query> [--probe N]

<graph>: dataset name (yeast hprd wordnet patents dblp orkut eu2005 uk2002),
         a t/v/e file, a SNAP edge list (*.el), or a packed image
         (written by `gsword pack`; detected by magic, loaded via mmap)
<query>: a t/v/e query file, or extract:<k>[:<seed>]
--storage picks the data-graph backend: csr (in-memory, default) or
compressed (succinct gap-coded adjacency; the default for packed images).
Estimates are bit-identical across backends.
--decode-cache sets the compressed backend's per-thread decoded-adjacency
budget in bytes (0 disables; default 16 MiB). Purely a wall-clock knob:
results and modeled counters are identical with the cache on or off.
--sim-workers fans each kernel launch's blocks over N host threads
(0 = auto, 1 = serial; default 1). Results are bit-identical for every N.
pack writes a dataset as a compressed mmap-able image; --scale N divides
the paper's |V| (default: the suite scale; --scale 1 = full paper size).
--sanitize runs the device kernels under the compute-sanitizer analogue
(synccheck/racecheck/initcheck); any violation fails the run.
--devices/--streams shard device launches over N software devices with N
streams each (estimates are invariant in the topology; default 1x1).
--profile records a kernel timeline and per-kernel metrics (the Nsight
analogue); --trace-out writes the timeline as Chrome chrome://tracing JSON.";

/// Route a parsed command line to its subcommand.
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err("missing subcommand".to_string());
    };
    let args = Args::parse(&argv[1..])?;
    if args.has("help") {
        println!("{USAGE}");
        return Ok(());
    }
    match cmd.as_str() {
        "stats" => cmd_stats(&args),
        "generate" => cmd_generate(&args),
        "pack" => cmd_pack(&args),
        "estimate" => cmd_estimate(&args),
        "exact" => cmd_exact(&args),
        "motifs" => cmd_motifs(&args),
        "orders" => cmd_orders(&args),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

/// Whether `path` starts with the packed-image magic.
fn is_packed_file(path: &str) -> bool {
    use std::io::Read;
    let Ok(mut f) = std::fs::File::open(path) else {
        return false;
    };
    let mut head = [0u8; 8];
    f.read_exact(&mut head).is_ok() && head == graph::compressed::MAGIC
}

fn load_data(
    spec: &str,
    storage: Option<&str>,
    decode_cache: Option<usize>,
) -> Result<AnyGraph, String> {
    let tune = |c: CompressedGraph| match decode_cache {
        Some(bytes) => c.with_decode_cache(bytes),
        None => c,
    };
    let into_backend = |g: Graph| -> Result<AnyGraph, String> {
        match storage.unwrap_or("csr") {
            "csr" => Ok(AnyGraph::Csr(g)),
            "compressed" => Ok(AnyGraph::Compressed(tune(CompressedGraph::from_graph(&g)))),
            other => Err(format!(
                "unknown storage '{other}' (expected csr|compressed)"
            )),
        }
    };
    if datasets::dataset_names().contains(&spec) {
        return into_backend(datasets::dataset(spec));
    }
    if is_packed_file(spec) {
        let c = CompressedGraph::load(spec)
            .map_err(|e| format!("cannot load packed graph '{spec}': {e}"))?;
        // Packed images stay compressed unless CSR is asked for explicitly.
        return match storage {
            None | Some("compressed") => Ok(AnyGraph::Compressed(tune(c))),
            Some("csr") => Ok(AnyGraph::Csr(c.to_csr())),
            Some(other) => Err(format!(
                "unknown storage '{other}' (expected csr|compressed)"
            )),
        };
    }
    let loaded = if spec.ends_with(".el") {
        graph::io::load_edge_list(spec)
    } else {
        graph::io::load_graph(spec)
    };
    into_backend(loaded.map_err(|e| format!("cannot load graph '{spec}': {e}"))?)
}

fn load_query_spec(data: &AnyGraph, spec: &str) -> Result<QueryGraph, String> {
    if let Some(rest) = spec.strip_prefix("extract:") {
        let mut parts = rest.split(':');
        let k: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or("extract needs a size, e.g. extract:8")?;
        let seed: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(42);
        return QueryGraph::extract(data, k, seed)
            .ok_or_else(|| format!("could not extract a {k}-vertex query (seed {seed})"));
    }
    query::io::load_query(spec).map_err(|e| format!("cannot load query '{spec}': {e}"))
}

fn data_arg(args: &Args) -> Result<AnyGraph, String> {
    let decode_cache = match args.get("decode-cache") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad --decode-cache: {v}"))?),
    };
    load_data(
        args.positional(0).ok_or("missing <graph> argument")?,
        args.get("storage"),
        decode_cache,
    )
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    let g = data_arg(args)?;
    println!("backend: {}", g.backend_name());
    println!("{}", GraphStats::of(&g));
    let lh = graph::ops::label_histogram(&g);
    let mut top: Vec<(usize, usize)> = lh.into_iter().enumerate().collect();
    top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    print!("top labels:");
    for (l, c) in top.iter().take(5).filter(|&&(_, c)| c > 0) {
        print!(" {l}×{c}");
    }
    println!();
    let (_, comps) = graph::ops::connected_components(&g);
    println!("connected components: {comps}");
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let name = args.positional(0).ok_or("missing <dataset> argument")?;
    let out = args.get("output").ok_or("missing -o <file>")?;
    if !datasets::dataset_names().contains(&name) {
        return Err(format!("unknown dataset '{name}'"));
    }
    let g = datasets::dataset(name);
    graph::io::save_graph(&g, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} vertices, {} edges)",
        out,
        g.num_vertices(),
        g.num_edges()
    );
    Ok(())
}

fn cmd_pack(args: &Args) -> Result<(), String> {
    let name = args.positional(0).ok_or("missing <dataset|all> argument")?;
    let out = args.get("output").ok_or("missing -o <file|dir>")?;
    let scale: Option<u32> = match args.get("scale") {
        None => None,
        Some(v) => Some(v.parse().map_err(|_| format!("bad --scale: {v}"))?),
    };
    if name == "all" {
        std::fs::create_dir_all(out).map_err(|e| format!("cannot create '{out}': {e}"))?;
        for spec in &datasets::SPECS {
            let path = std::path::Path::new(out).join(format!("{}.gsw", spec.name));
            pack_one(spec, scale, path.to_str().expect("utf-8 path"))?;
        }
        return Ok(());
    }
    let spec = datasets::spec(name).ok_or_else(|| format!("unknown dataset '{name}'"))?;
    pack_one(spec, scale, out)
}

fn pack_one(spec: &datasets::DatasetSpec, scale: Option<u32>, out: &str) -> Result<(), String> {
    let div = scale.unwrap_or(spec.scale);
    let g = spec.generate_at(div);
    let c = CompressedGraph::from_graph(&g);
    c.save(out)
        .map_err(|e| format!("cannot write '{out}': {e}"))?;
    let csr = g.mem_bytes();
    let packed = GraphStorage::mem_bytes(&c);
    println!(
        "{}: scale 1/{div} |V|={} |E|={} csr={}B packed={}B ({:.1}% of csr) -> {out}",
        spec.name,
        g.num_vertices(),
        g.num_edges(),
        csr,
        packed,
        100.0 * packed as f64 / csr as f64
    );
    Ok(())
}

fn parse_backend(args: &Args) -> Result<Backend, String> {
    match args.get("backend").unwrap_or("gsword") {
        "cpu" => Ok(Backend::Cpu { threads: 0 }),
        "gpu-baseline" => Ok(Backend::GpuBaseline),
        "gsword" => Ok(Backend::Gsword),
        other => Err(format!("unknown backend '{other}'")),
    }
}

fn parse_estimator(args: &Args) -> Result<EstimatorKind, String> {
    match args.get("estimator").unwrap_or("alley") {
        "wj" | "wanderjoin" => Ok(EstimatorKind::WanderJoin),
        "al" | "alley" => Ok(EstimatorKind::Alley),
        other => Err(format!("unknown estimator '{other}'")),
    }
}

fn cmd_estimate(args: &Args) -> Result<(), String> {
    let data = data_arg(args)?;
    let q = load_query_spec(&data, args.get("query").ok_or("missing -q <query>")?)?;
    let samples: u64 = args.num("samples", 100_000)?;
    let seed: u64 = args.num("seed", 42)?;
    let devices: usize = args.num("devices", 1)?;
    let streams: usize = args.num("streams", 1)?;
    let sim_workers: usize = args.num("sim-workers", 1)?;
    if devices == 0 || streams == 0 {
        return Err("--devices and --streams must be at least 1".to_string());
    }
    let sanitize = match args.get("sanitize") {
        None => SanitizerMode::OFF,
        Some(spec) => SanitizerMode::parse(spec)?,
    };
    let profile = args.has("profile");
    if args.get("trace-out").is_some() && !profile {
        return Err("--trace-out needs --profile".to_string());
    }
    let mut b = Gsword::builder(&data, &q)
        .samples(samples)
        .seed(seed)
        .estimator(parse_estimator(args)?)
        .backend(parse_backend(args)?)
        .num_devices(devices)
        .streams_per_device(streams)
        .sim_workers(sim_workers)
        .sanitize(sanitize)
        .profile(profile);
    if args.has("trawl") {
        b = b.trawling(TrawlConfig::default());
    }
    let r = b.run().map_err(|e| e.to_string())?;
    println!("estimate: {:.1}", r.estimate);
    println!(
        "samples: {} (valid {}, success ratio {:.2e}, ±95% CI {:.1}%)",
        r.sampler.samples,
        r.sampler.valid,
        r.sampler.success_ratio(),
        r.sampler.rel_ci95() * 100.0
    );
    if let Some(t) = r.trawl {
        println!(
            "trawling estimate: {t:.1} ({} enumerations completed)",
            r.trawl_completed
        );
    }
    if let Some(ms) = r.modeled_ms {
        println!("modeled device time: {ms:.2} ms");
    }
    println!("wall time: {:.1} ms", r.wall_ms);
    if let Some(sr) = &r.sanitizer {
        println!("{sr}");
        if !sr.is_clean() {
            return Err(format!("sanitizer found {} violation(s)", sr.total));
        }
    } else if sanitize.any() {
        println!("sanitizer: no device launch to check (cpu backend)");
    }
    match &r.prof {
        Some(prof) => {
            print!("{prof}");
            prof.validate()
                .map_err(|e| format!("profiler invariant violated: {e}"))?;
            if let Some(path) = args.get("trace-out") {
                let json = prof.to_chrome_trace();
                // Self-check the export before writing: a trace that does
                // not parse is worse than no trace.
                gsword_core::simt::prof::json::validate_chrome_trace(&json)
                    .map_err(|e| format!("trace export failed validation: {e}"))?;
                std::fs::write(path, &json)
                    .map_err(|e| format!("cannot write trace to '{path}': {e}"))?;
                println!("chrome trace written to {path} (load in chrome://tracing)");
            }
        }
        None if profile => println!("profiler: no device launch to profile (cpu backend)"),
        None => {}
    }
    Ok(())
}

fn cmd_exact(args: &Args) -> Result<(), String> {
    let data = data_arg(args)?;
    let q = load_query_spec(&data, args.get("query").ok_or("missing -q <query>")?)?;
    let budget: u64 = args.num("budget", 0)?;
    let threads: usize = args.num("threads", 0)?;
    match gsword_core::exact_count(&data, &q, budget, threads) {
        Some(c) => println!("exact count: {c}"),
        None => println!("enumeration budget exhausted (raise --budget)"),
    }
    Ok(())
}

fn cmd_motifs(args: &Args) -> Result<(), String> {
    let data = data_arg(args)?;
    let samples: u64 = args.num("samples", 100_000)?;
    let label: Label = match args.get("label") {
        Some(v) => v.parse().map_err(|_| "bad --label")?,
        None => (0..data.label_count() as Label)
            .max_by_key(|&l| data.vertices_with_label(l).len())
            .unwrap_or(0),
    };
    println!(
        "census over label {label} ({} vertices)",
        data.vertices_with_label(label).len()
    );
    for (name, motif) in query::motifs::census_motifs(label) {
        let r = Gsword::builder(&data, &motif)
            .samples(samples)
            .run()
            .map_err(|e| e.to_string())?;
        println!("{name:<16} {:>14.0}", r.estimate);
    }
    Ok(())
}

fn cmd_orders(args: &Args) -> Result<(), String> {
    let data = data_arg(args)?;
    let q = load_query_spec(&data, args.get("query").ok_or("missing -q <query>")?)?;
    let probe: u64 = args.num("probe", 2_000)?;
    let (cg, _) = build_candidate_graph(&data, &q, &BuildConfig::default());
    let (best, scores) = estimators::select_order(
        &cg,
        &data,
        &q,
        &Alley,
        &estimators::OrderSelectConfig {
            probe_samples: probe,
            ..Default::default()
        },
    );
    println!("probed {} orders; best: {:?}", scores.len(), best.phi());
    for (i, s) in scores.iter().enumerate() {
        println!(
            "#{i}: variance {:.3e}, success ratio {:.3e}, order {:?}",
            s.variance,
            s.success_ratio,
            s.order.phi()
        );
    }
    Ok(())
}
