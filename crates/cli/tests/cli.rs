//! End-to-end tests of the `gsword` CLI binary: every subcommand, file
//! round-trips, and error paths.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_gsword"))
        .args(args)
        .output()
        .expect("spawn gsword CLI");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
    )
}

#[test]
fn stats_subcommand() {
    let (ok, stdout, _) = run(&["stats", "yeast"]);
    assert!(ok);
    assert!(stdout.contains("|V|=3112"), "{stdout}");
    assert!(stdout.contains("connected components"), "{stdout}");
}

#[test]
fn estimate_and_exact_agree() {
    let (ok, est_out, _) = run(&[
        "estimate",
        "yeast",
        "-q",
        "extract:4:7",
        "--samples",
        "40000",
        "--seed",
        "1",
    ]);
    assert!(ok, "{est_out}");
    let (ok2, exact_out, _) = run(&["exact", "yeast", "-q", "extract:4:7"]);
    assert!(ok2);
    let est: f64 = est_out
        .lines()
        .find_map(|l| l.strip_prefix("estimate: "))
        .expect("estimate line")
        .parse()
        .expect("parse estimate");
    let exact: f64 = exact_out
        .lines()
        .find_map(|l| l.strip_prefix("exact count: "))
        .expect("exact line")
        .parse()
        .expect("parse exact");
    let q = est.max(1.0) / exact.max(1.0);
    assert!((0.5..2.0).contains(&q), "estimate {est} vs exact {exact}");
}

#[test]
fn generate_then_load_round_trip() {
    let dir = std::env::temp_dir().join(format!("gsword-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("yeast.graph");
    let (ok, _, stderr) = run(&["generate", "yeast", "-o", file.to_str().unwrap()]);
    assert!(ok, "{stderr}");
    let (ok2, stdout, _) = run(&["stats", file.to_str().unwrap()]);
    assert!(ok2);
    assert!(stdout.contains("|V|=3112"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn orders_subcommand() {
    let (ok, stdout, _) = run(&["orders", "yeast", "-q", "extract:5:3", "--probe", "500"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("best:"), "{stdout}");
    assert!(stdout.contains("variance"), "{stdout}");
}

#[test]
fn error_paths() {
    let (ok, _, stderr) = run(&["unknown-subcommand"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"), "{stderr}");

    let (ok, _, stderr) = run(&["estimate", "yeast"]);
    assert!(!ok);
    assert!(stderr.contains("missing -q"), "{stderr}");

    let (ok, _, stderr) = run(&["stats", "nonexistent-dataset"]);
    assert!(!ok);
    assert!(stderr.contains("cannot load graph"), "{stderr}");

    let (ok, _, stderr) = run(&["estimate", "yeast", "-q", "extract:4", "--backend", "tpu"]);
    assert!(!ok);
    assert!(stderr.contains("unknown backend"), "{stderr}");
}

#[test]
fn trawl_flag_runs() {
    let (ok, stdout, stderr) = run(&[
        "estimate",
        "yeast",
        "-q",
        "extract:4:9",
        "--samples",
        "6000",
        "--trawl",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("trawling estimate"), "{stdout}");
}

#[test]
fn pack_then_stats_round_trip() {
    let out = std::env::temp_dir().join(format!("gsword-cli-pack-{}.gsw", std::process::id()));
    let path = out.to_str().unwrap();
    let (ok, stdout, _) = run(&["pack", "yeast", "-o", path]);
    assert!(ok, "pack failed");
    assert!(stdout.contains("yeast"), "pack output: {stdout}");
    assert!(stdout.contains("% of csr"), "pack output: {stdout}");

    // Packed images are detected by magic and load via the compressed backend.
    let (ok, stdout, _) = run(&["stats", path]);
    assert!(ok, "stats on packed image failed");
    assert!(stdout.contains("backend: compressed"), "stats: {stdout}");
    assert!(stdout.contains("|V|=3112"), "stats: {stdout}");

    // --storage csr decompresses to the in-memory backend.
    let (ok, stdout, _) = run(&["stats", path, "--storage", "csr"]);
    assert!(ok);
    assert!(stdout.contains("backend: csr"), "stats: {stdout}");
    assert!(stdout.contains("|V|=3112"), "stats: {stdout}");

    std::fs::remove_file(&out).ok();
}

#[test]
fn storage_backends_agree_on_estimates() {
    let args = [
        "estimate",
        "yeast",
        "-q",
        "extract:4:7",
        "--samples",
        "200",
        "--seed",
        "11",
    ];
    let (ok_a, out_a, _) = run(&args);
    let mut with_storage: Vec<&str> = args.to_vec();
    with_storage.extend(["--storage", "compressed"]);
    let (ok_b, out_b, _) = run(&with_storage);
    assert!(ok_a && ok_b);
    let est = |s: &str| {
        s.lines()
            .find(|l| l.contains("estimate"))
            .map(str::to_owned)
            .unwrap_or_default()
    };
    assert_eq!(est(&out_a), est(&out_b), "backends must be bit-identical");
    assert!(!est(&out_a).is_empty());
}

#[test]
fn pack_rejects_unknown_dataset_and_bad_scale() {
    let (ok, _, err) = run(&["pack", "livejournal", "-o", "/tmp/x.gsw"]);
    assert!(!ok);
    assert!(err.contains("unknown dataset"), "stderr: {err}");
    let (ok, _, err) = run(&["pack", "yeast", "-o", "/tmp/x.gsw", "--scale", "zero"]);
    assert!(!ok);
    assert!(err.contains("bad --scale"), "stderr: {err}");
}
