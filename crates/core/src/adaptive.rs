//! Adaptive sampling: run device batches until a target confidence is
//! reached or a budget is exhausted.
//!
//! The paper's system model is "gather more samples within a given time
//! budget" (Section 3.1). This extension closes the loop: batches of
//! samples run until the normal-approximation 95% confidence interval of
//! the HT estimate is tighter than `target_rel_ci`, or the sample/time
//! budget runs out. The CI is exact for independent samples and a
//! heuristic under sample inheritance (leaf contributions within a warp
//! round are correlated).

use std::time::Instant;

use gsword_engine::{kernel_for_config, runtime_for, spawn_estimate, EngineConfig, Kernel};
use gsword_estimators::{Estimate, Estimator, QueryCtx};
use gsword_simt::{KernelCounters, ProfReport};

/// Stopping rules for [`run_adaptive`].
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Target relative half-width of the 95% CI (e.g. 0.05 = ±5%).
    pub target_rel_ci: f64,
    /// Samples per batch.
    pub batch: u64,
    /// Hard cap on total samples (0 = unlimited).
    pub max_samples: u64,
    /// Hard cap on wall-clock milliseconds (0 = unlimited).
    pub max_wall_ms: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            target_rel_ci: 0.05,
            batch: 50_000,
            max_samples: 10_000_000,
            max_wall_ms: 0.0,
        }
    }
}

/// Outcome of an adaptive run.
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Merged estimate across batches.
    pub estimate: Estimate,
    /// Whether the CI target was met (false ⇒ a budget stopped the run).
    pub converged: bool,
    /// Batches executed.
    pub batches: u32,
    /// Merged device counters.
    pub counters: KernelCounters,
    /// Total modeled device milliseconds.
    pub modeled_ms: f64,
    /// Total wall-clock milliseconds.
    pub wall_ms: f64,
    /// Profiler output across every batch, when the engine configuration
    /// ran with `profile` (the shared runtime records all batches on one
    /// timeline).
    pub prof: Option<ProfReport>,
}

/// Run sampling batches until the estimate's relative 95% CI falls below
/// the target or a budget trips. Each batch derives its seed from the
/// batch index, so the run is deterministic — and invariant in the device
/// runtime topology, which only changes where batches execute.
///
/// All batches share one device [`Runtime`](gsword_simt::Runtime): its
/// stream workers stay warm across the adaptive loop instead of being
/// re-created per batch.
pub fn run_adaptive<E: Estimator + ?Sized>(
    ctx: &QueryCtx<'_>,
    est: &E,
    engine: &EngineConfig,
    cfg: &AdaptiveConfig,
) -> AdaptiveReport {
    assert!(cfg.target_rel_ci > 0.0, "CI target must be positive");
    assert!(cfg.batch > 0, "batch size must be positive");
    let t0 = Instant::now();
    let mut estimate = Estimate::default();
    let mut counters = KernelCounters::default();
    let mut modeled_ms = 0.0;
    let mut batches = 0u32;
    let mut converged = false;
    let kernel_name = kernel_for_config(ctx, est, engine).name();
    let runtime = runtime_for(engine, &kernel_name);
    runtime.scope(|rs| loop {
        let batch_cfg = EngineConfig {
            samples: cfg.batch,
            seed: engine.seed.wrapping_add(0xADA0 + batches as u64),
            ..*engine
        };
        let r = spawn_estimate(rs, ctx, est, &batch_cfg).wait_report(&batch_cfg);
        estimate.merge(&r.estimate);
        counters.merge(&r.counters);
        modeled_ms += r.modeled_ms;
        batches += 1;

        if estimate.valid > 0 && estimate.rel_ci95() <= cfg.target_rel_ci {
            converged = true;
            break;
        }
        if cfg.max_samples > 0 && estimate.samples >= cfg.max_samples {
            break;
        }
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        if cfg.max_wall_ms > 0.0 && wall >= cfg.max_wall_ms {
            break;
        }
    });
    AdaptiveReport {
        estimate,
        converged,
        batches,
        counters,
        modeled_ms,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        prof: runtime
            .profiler()
            .enabled()
            .then(|| runtime.profiler().report()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsword_candidate::{build_candidate_graph, BuildConfig};
    use gsword_estimators::Alley;
    use gsword_query::{quicksi_order, QueryGraph};
    use gsword_simt::DeviceConfig;

    fn small_engine() -> EngineConfig {
        EngineConfig::gsword(0).with_device(DeviceConfig {
            num_blocks: 2,
            threads_per_block: 64,
            host_threads: 2,
        })
    }

    #[test]
    fn converges_on_easy_queries() {
        let data = gsword_graph::datasets::dataset("yeast");
        let query = QueryGraph::extract(&data, 4, 5).expect("query");
        let (cg, _) = build_candidate_graph(&data, &query, &BuildConfig::default());
        let order = quicksi_order(&query, &data);
        let ctx = gsword_estimators::QueryCtx::new(&cg, &order);
        let r = run_adaptive(
            &ctx,
            &Alley,
            &small_engine(),
            &AdaptiveConfig {
                target_rel_ci: 0.2,
                batch: 10_000,
                max_samples: 500_000,
                max_wall_ms: 0.0,
            },
        );
        assert!(
            r.converged,
            "4-vertex yeast query should converge: {:?}",
            r.estimate
        );
        assert!(r.estimate.rel_ci95() <= 0.2);
        assert!(r.batches >= 1);
    }

    #[test]
    fn sample_budget_stops_hard_queries() {
        let data = gsword_graph::datasets::dataset("wordnet");
        let query = QueryGraph::extract(&data, 16, 0).expect("query");
        let (cg, _) = build_candidate_graph(&data, &query, &BuildConfig::default());
        let order = quicksi_order(&query, &data);
        let ctx = gsword_estimators::QueryCtx::new(&cg, &order);
        let r = run_adaptive(
            &ctx,
            &Alley,
            &small_engine(),
            &AdaptiveConfig {
                target_rel_ci: 0.001, // unreachable at this budget
                batch: 2_000,
                max_samples: 6_000,
                max_wall_ms: 0.0,
            },
        );
        assert!(!r.converged);
        assert_eq!(r.estimate.samples, 6_000);
        assert_eq!(r.batches, 3);
    }

    #[test]
    #[should_panic(expected = "CI target must be positive")]
    fn rejects_zero_target() {
        let data = gsword_graph::datasets::dataset("yeast");
        let query = QueryGraph::extract(&data, 4, 5).expect("query");
        let (cg, _) = build_candidate_graph(&data, &query, &BuildConfig::default());
        let order = quicksi_order(&query, &data);
        let ctx = gsword_estimators::QueryCtx::new(&cg, &order);
        run_adaptive(
            &ctx,
            &Alley,
            &small_engine(),
            &AdaptiveConfig {
                target_rel_ci: 0.0,
                ..AdaptiveConfig::default()
            },
        );
    }
}
