//! One-line import for applications: `use gsword_core::prelude::*;`.

pub use crate::adaptive::{run_adaptive, AdaptiveConfig, AdaptiveReport};
pub use crate::builder::{Backend, Error, Gsword, GswordBuilder, Report};
pub use crate::exact_count;

pub use gsword_candidate::{build_candidate_graph, BuildConfig, CandidateGraph};
pub use gsword_engine::{
    run_engine, split_budget, EngineConfig, EngineReport, Kernel, LaunchSpec, PoolMode, SyncMode,
};
pub use gsword_enumeration::{count_instances, count_instances_parallel, EnumLimits};
pub use gsword_estimators::{
    q_error, signed_q_error, Alley, Estimate, Estimator, EstimatorKind, QueryCtx, SampleState,
    Segment, WanderJoin,
};
pub use gsword_graph::{
    AnyGraph, CompressedGraph, Graph, GraphBuilder, GraphStats, GraphStorage, Label, NeighborsRef,
    VertexId,
};
pub use gsword_pipeline::{run_coprocessing, DepthDist, TrawlConfig};
pub use gsword_query::{
    gcare_order, quicksi_order, MatchingOrder, OrderKind, QueryClass, QueryGraph,
};
pub use gsword_simt::{
    CounterSnapshot, DeviceConfig, DeviceModel, Event, KernelCounters, KernelMetrics, ProfReport,
    Profiler, Runtime, RuntimeConfig, SanitizerMode, SanitizerReport, Span, SpanKind, Track,
};
