//! The `Gsword` builder: configure and run one subgraph-counting query.

use std::time::Instant;

use gsword_candidate::{build_candidate_graph, BuildConfig, BuildStats};
use gsword_engine::{run_engine, EngineConfig};
use gsword_estimators::{
    q_error, run_parallel_cpu, with_estimator, Estimate, Estimator, EstimatorKind, QueryCtx,
};
use gsword_graph::GraphStorage;
use gsword_pipeline::{run_coprocessing, TrawlConfig};
use gsword_query::{make_order, OrderKind, QueryGraph};
use gsword_simt::{DeviceConfig, KernelCounters, ProfReport, SanitizerMode, SanitizerReport};

/// Execution backend for a query.
#[derive(Debug, Clone, Copy)]
pub enum Backend {
    /// Multi-threaded CPU sampling with dynamic scheduling (the G-CARE
    /// baseline). `threads = 0` uses all cores; `threads = 1` is the
    /// sequential reference.
    Cpu {
        /// Worker threads (0 = all cores).
        threads: usize,
    },
    /// The NextDoor-style GPU baseline on the SIMT device.
    GpuBaseline,
    /// Full gSWORD: block pools, sample inheritance, warp streaming.
    Gsword,
    /// Any custom engine configuration (ablations, iteration sync, …).
    /// The configuration's `samples`/`seed` are overridden by the builder.
    Device(EngineConfig),
}

/// Errors surfaced by [`GswordBuilder::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The query has no vertices or exceeds the supported size.
    BadQuery(String),
    /// Trawling requires a device backend.
    TrawlingNeedsDevice,
    /// Zero samples requested.
    NoSamples,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadQuery(m) => write!(f, "bad query: {m}"),
            Error::TrawlingNeedsDevice => {
                write!(
                    f,
                    "trawling runs on the co-processing pipeline; pick a device backend"
                )
            }
            Error::NoSamples => write!(f, "sample budget must be positive"),
        }
    }
}

impl std::error::Error for Error {}

/// Entry point type: see [`Gsword::builder`].
pub struct Gsword;

impl Gsword {
    /// Start configuring a run of `query` against `data` (any storage
    /// backend — CSR or compressed).
    pub fn builder<'a, S: GraphStorage>(
        data: &'a S,
        query: &'a QueryGraph,
    ) -> GswordBuilder<'a, S> {
        GswordBuilder {
            data,
            query,
            samples: 100_000,
            seed: 0x5D0D,
            estimator: EstimatorKind::Alley,
            order: OrderKind::QuickSi,
            backend: Backend::Gsword,
            build: BuildConfig::default(),
            device: None,
            trawling: None,
            sanitize: SanitizerMode::OFF,
            profile: false,
            num_devices: 1,
            streams_per_device: 1,
            sim_workers: 1,
        }
    }
}

/// Configuration builder for one query execution.
#[derive(Debug, Clone)]
pub struct GswordBuilder<'a, S: GraphStorage> {
    data: &'a S,
    query: &'a QueryGraph,
    samples: u64,
    seed: u64,
    estimator: EstimatorKind,
    order: OrderKind,
    backend: Backend,
    build: BuildConfig,
    device: Option<DeviceConfig>,
    trawling: Option<TrawlConfig>,
    sanitize: SanitizerMode,
    profile: bool,
    num_devices: usize,
    streams_per_device: usize,
    sim_workers: usize,
}

impl<'a, S: GraphStorage> GswordBuilder<'a, S> {
    /// Total sample budget (default 100 000).
    pub fn samples(mut self, n: u64) -> Self {
        self.samples = n;
        self
    }

    /// RNG seed — runs are deterministic in the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Which RW estimator to run (default Alley).
    pub fn estimator(mut self, kind: EstimatorKind) -> Self {
        self.estimator = kind;
        self
    }

    /// Matching-order heuristic (default QuickSI).
    pub fn order(mut self, kind: OrderKind) -> Self {
        self.order = kind;
        self
    }

    /// Execution backend (default full gSWORD).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Candidate-graph construction configuration (filters, pruning).
    pub fn candidate_config(mut self, cfg: BuildConfig) -> Self {
        self.build = cfg;
        self
    }

    /// Override the device launch geometry.
    pub fn device(mut self, device: DeviceConfig) -> Self {
        self.device = Some(device);
        self
    }

    /// Enable the trawling co-processing pipeline (device backends only).
    pub fn trawling(mut self, cfg: TrawlConfig) -> Self {
        self.trawling = Some(cfg);
        self
    }

    /// Shard device launches over `n` software devices (default 1, the
    /// paper's testbed has 2). Estimates are invariant in the topology.
    pub fn num_devices(mut self, n: usize) -> Self {
        self.num_devices = n.max(1);
        self
    }

    /// Streams (ordered async launch queues) per device, default 1.
    pub fn streams_per_device(mut self, n: usize) -> Self {
        self.streams_per_device = n.max(1);
        self
    }

    /// Intra-kernel simulation workers per launch: `0` = auto (the
    /// device's `host_threads`), `1` = serial (default), `n` = a
    /// persistent pool of `n` lockstep block workers. A wall-clock knob
    /// only — estimates, counters, and sanitizer verdicts are
    /// bit-identical for every value.
    pub fn sim_workers(mut self, n: usize) -> Self {
        self.sim_workers = n;
        self
    }

    /// Run the device kernels under the sanitizer (synccheck / racecheck /
    /// initcheck — the `compute-sanitizer` analogue). Findings land in
    /// [`Report::sanitizer`]. No effect on CPU backends.
    pub fn sanitize(mut self, mode: SanitizerMode) -> Self {
        self.sanitize = mode;
        self
    }

    /// Profile the device run (the Nsight analogue): record a launch
    /// timeline and per-kernel metrics into [`Report::prof`], exportable
    /// as Chrome `chrome://tracing` JSON. Zero cost when off; no effect on
    /// CPU backends.
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Execute the configured run.
    pub fn run(self) -> Result<Report, Error> {
        if self.samples == 0 {
            return Err(Error::NoSamples);
        }
        if self.query.num_vertices() == 0 {
            return Err(Error::BadQuery("empty query".into()));
        }
        let t0 = Instant::now();
        let (cg, candidate_stats) = build_candidate_graph(self.data, self.query, &self.build);
        let order = make_order(self.order, self.query, self.data);
        let ctx = QueryCtx::new(&cg, &order);

        let engine_cfg = |mut cfg: EngineConfig| {
            cfg.samples = self.samples;
            cfg.seed = self.seed;
            if let Some(d) = self.device {
                cfg.device = d;
            }
            cfg.sanitize = self.sanitize;
            cfg.profile = self.profile;
            cfg.num_devices = self.num_devices;
            cfg.streams_per_device = self.streams_per_device;
            cfg.sim_workers = self.sim_workers;
            cfg
        };

        let mut report = with_estimator(self.estimator, |est| -> Result<Report, Error> {
            match (&self.backend, &self.trawling) {
                (Backend::Cpu { .. }, Some(_)) => Err(Error::TrawlingNeedsDevice),
                (Backend::Cpu { threads }, None) => {
                    let threads = if *threads == 0 {
                        std::thread::available_parallelism().map_or(4, |n| n.get())
                    } else {
                        *threads
                    };
                    let r = run_parallel_cpu(&ctx, est, self.samples, self.seed, threads);
                    Ok(Report::from_cpu(r.estimate, r.wall_ms))
                }
                (backend, trawling) => {
                    let cfg = engine_cfg(match backend {
                        Backend::GpuBaseline => EngineConfig::gpu_baseline(self.samples),
                        Backend::Gsword => EngineConfig::gsword(self.samples),
                        Backend::Device(c) => *c,
                        Backend::Cpu { .. } => unreachable!("handled above"),
                    });
                    match trawling {
                        None => {
                            let r = run_engine(&ctx, est, &cfg);
                            Ok(Report::from_device(r))
                        }
                        Some(trawl_cfg) => {
                            let r = run_coprocessing(&ctx, est, &cfg, trawl_cfg);
                            Ok(Report::from_pipeline(r))
                        }
                    }
                }
            }
        })?;
        report.candidate_stats = Some(candidate_stats);
        report.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        Ok(report)
    }

    /// Run a custom user-defined RSV estimator (Fig. 19's extension point)
    /// instead of a built-in one.
    pub fn run_custom<E: Estimator>(self, est: &E) -> Result<Report, Error> {
        if self.samples == 0 {
            return Err(Error::NoSamples);
        }
        let t0 = Instant::now();
        let (cg, candidate_stats) = build_candidate_graph(self.data, self.query, &self.build);
        let order = make_order(self.order, self.query, self.data);
        let ctx = QueryCtx::new(&cg, &order);
        let mut cfg = match self.backend {
            Backend::GpuBaseline => EngineConfig::gpu_baseline(self.samples),
            Backend::Gsword => EngineConfig::gsword(self.samples),
            Backend::Device(c) => c,
            Backend::Cpu { threads } => {
                let threads = if threads == 0 {
                    std::thread::available_parallelism().map_or(4, |n| n.get())
                } else {
                    threads
                };
                let r = run_parallel_cpu(&ctx, est, self.samples, self.seed, threads);
                let mut report = Report::from_cpu(r.estimate, r.wall_ms);
                report.candidate_stats = Some(candidate_stats);
                return Ok(report);
            }
        };
        cfg.samples = self.samples;
        cfg.seed = self.seed;
        if let Some(d) = self.device {
            cfg.device = d;
        }
        cfg.sanitize = self.sanitize;
        cfg.profile = self.profile;
        cfg.num_devices = self.num_devices;
        cfg.streams_per_device = self.streams_per_device;
        cfg.sim_workers = self.sim_workers;
        let r = run_engine(&ctx, est, &cfg);
        let mut report = Report::from_device(r);
        report.candidate_stats = Some(candidate_stats);
        report.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        Ok(report)
    }
}

/// Result of one query execution.
#[derive(Debug, Clone)]
pub struct Report {
    /// The final estimate of the subgraph count (the trawling estimate
    /// when the pipeline ran, otherwise the sampler's HT estimate).
    pub estimate: f64,
    /// The raw sampler-side HT estimate.
    pub sampler: Estimate,
    /// The trawling estimate, when the pipeline ran and completed samples.
    pub trawl: Option<f64>,
    /// Trawl samples whose enumeration completed before the batch timeout
    /// (0 when the pipeline did not run).
    pub trawl_completed: u64,
    /// Candidate graph construction/transfer statistics (Table 3).
    pub candidate_stats: Option<BuildStats>,
    /// Device counters (device backends only).
    pub counters: Option<KernelCounters>,
    /// Modeled device milliseconds (device backends only).
    pub modeled_ms: Option<f64>,
    /// Samples collected including inherited continuations (device
    /// backends; equals `sampler.samples` otherwise).
    pub samples_collected: u64,
    /// Host wall-clock milliseconds for the whole run.
    pub wall_ms: f64,
    /// Sanitizer findings (device backends running with a non-OFF
    /// [`SanitizerMode`] only).
    pub sanitizer: Option<SanitizerReport>,
    /// Profiler output — timeline and per-kernel metrics — when the run
    /// was built with [`GswordBuilder::profile`] (device backends only).
    pub prof: Option<ProfReport>,
}

impl Report {
    fn from_cpu(estimate: Estimate, wall_ms: f64) -> Self {
        Report {
            estimate: estimate.value(),
            samples_collected: estimate.samples,
            sampler: estimate,
            trawl: None,
            trawl_completed: 0,
            candidate_stats: None,
            counters: None,
            modeled_ms: None,
            wall_ms,
            sanitizer: None,
            prof: None,
        }
    }

    fn from_device(r: gsword_engine::EngineReport) -> Self {
        Report {
            estimate: r.estimate.value(),
            sampler: r.estimate,
            trawl: None,
            trawl_completed: 0,
            candidate_stats: None,
            counters: Some(r.counters),
            modeled_ms: Some(r.modeled_ms),
            samples_collected: r.samples_collected,
            wall_ms: r.wall_ms,
            sanitizer: r.sanitizer,
            prof: r.prof,
        }
    }

    fn from_pipeline(r: gsword_pipeline::PipelineReport) -> Self {
        Report {
            estimate: r.value(),
            sampler: r.sampler,
            trawl: r.trawl,
            trawl_completed: r.trawl_completed,
            candidate_stats: None,
            counters: Some(r.counters),
            modeled_ms: Some(r.gpu_modeled_ms),
            samples_collected: r.sampler.samples,
            wall_ms: r.total_wall_ms,
            sanitizer: r.sanitizer,
            prof: r.prof,
        }
    }

    /// q-error of this report's estimate against a known ground truth.
    pub fn q_error(&self, truth: f64) -> f64 {
        q_error(self.estimate, truth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsword_graph::{datasets, Graph};
    use gsword_simt::DeviceConfig;

    fn fixture() -> (Graph, QueryGraph) {
        let data = datasets::dataset("yeast");
        let query = QueryGraph::extract(&data, 4, 0xFEED).expect("query");
        (data, query)
    }

    fn small_device() -> DeviceConfig {
        DeviceConfig {
            num_blocks: 2,
            threads_per_block: 64,
            host_threads: 2,
        }
    }

    #[test]
    fn backends_agree_on_estimate_scale() {
        let (data, query) = fixture();
        let truth = crate::exact_count(&data, &query, 0, 2).expect("exact") as f64;
        let mut estimates = Vec::new();
        for backend in [
            Backend::Cpu { threads: 2 },
            Backend::GpuBaseline,
            Backend::Gsword,
        ] {
            let r = Gsword::builder(&data, &query)
                .samples(40_000)
                .backend(backend)
                .device(small_device())
                .seed(3)
                .run()
                .expect("run");
            estimates.push(r.estimate);
            if truth > 0.0 {
                assert!(
                    r.q_error(truth) < 3.0,
                    "{backend:?}: estimate {} vs truth {truth}",
                    r.estimate
                );
            }
        }
    }

    #[test]
    fn device_reports_carry_counters() {
        let (data, query) = fixture();
        let r = Gsword::builder(&data, &query)
            .samples(5_000)
            .backend(Backend::Gsword)
            .device(small_device())
            .run()
            .expect("run");
        assert!(r.counters.is_some());
        assert!(r.modeled_ms.unwrap() > 0.0);
        assert!(r.samples_collected >= r.sampler.samples);
        assert!(r.candidate_stats.is_some());
    }

    #[test]
    fn cpu_backend_has_no_device_fields() {
        let (data, query) = fixture();
        let r = Gsword::builder(&data, &query)
            .samples(2_000)
            .backend(Backend::Cpu { threads: 1 })
            .run()
            .expect("run");
        assert!(r.counters.is_none());
        assert!(r.modeled_ms.is_none());
        assert_eq!(r.sampler.samples, 2_000);
    }

    #[test]
    fn trawling_requires_device() {
        let (data, query) = fixture();
        let err = Gsword::builder(&data, &query)
            .backend(Backend::Cpu { threads: 1 })
            .trawling(TrawlConfig::default())
            .run()
            .unwrap_err();
        assert_eq!(err, Error::TrawlingNeedsDevice);
    }

    #[test]
    fn trawling_pipeline_runs() {
        let (data, query) = fixture();
        let r = Gsword::builder(&data, &query)
            .samples(6_000)
            .backend(Backend::Gsword)
            .device(small_device())
            .trawling(TrawlConfig {
                batches: 2,
                cpu_threads: 2,
                per_batch: 16,
                ..TrawlConfig::default()
            })
            .run()
            .expect("run");
        assert!(r.trawl.is_some() || r.sampler.samples > 0);
    }

    #[test]
    fn profile_attaches_a_validated_report() {
        let (data, query) = fixture();
        let r = Gsword::builder(&data, &query)
            .samples(4_000)
            .backend(Backend::Gsword)
            .device(small_device())
            .num_devices(2)
            .streams_per_device(2)
            .profile(true)
            .run()
            .expect("run");
        let prof = r.prof.expect("profiled run attaches a report");
        prof.validate().expect("profile is well-formed");
        assert_eq!(prof.num_devices, 2);
        assert_eq!(prof.streams_per_device, 2);
        assert_eq!(prof.kernels.len(), 1);
        assert!(!prof.spans.is_empty());
        // Off by default — and the estimate is identical either way.
        let off = Gsword::builder(&data, &query)
            .samples(4_000)
            .backend(Backend::Gsword)
            .device(small_device())
            .num_devices(2)
            .streams_per_device(2)
            .run()
            .expect("run");
        assert!(off.prof.is_none());
        assert_eq!(off.estimate, r.estimate);
    }

    #[test]
    fn zero_samples_rejected() {
        let (data, query) = fixture();
        let err = Gsword::builder(&data, &query).samples(0).run().unwrap_err();
        assert_eq!(err, Error::NoSamples);
    }

    #[test]
    fn deterministic_in_seed() {
        let (data, query) = fixture();
        let go = |seed| {
            Gsword::builder(&data, &query)
                .samples(4_000)
                .seed(seed)
                .device(small_device())
                .run()
                .unwrap()
                .estimate
        };
        assert_eq!(go(5), go(5));
    }
}
