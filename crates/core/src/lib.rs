//! Public facade of the gSWORD reproduction: one builder API over the
//! whole system.
//!
//! ```
//! use gsword_core::prelude::*;
//!
//! let data = gsword_core::datasets::dataset("yeast");
//! let query = QueryGraph::extract(&data, 4, 42).expect("extractable query");
//! let report = Gsword::builder(&data, &query)
//!     .samples(20_000)
//!     .estimator(EstimatorKind::Alley)
//!     .backend(Backend::Gsword)
//!     .seed(7)
//!     .run()
//!     .expect("query runs");
//! println!("estimated count: {:.0}", report.estimate);
//! ```
//!
//! The layers underneath are available as re-exported modules for anything
//! the builder doesn't surface: [`graph`], [`query`], [`candidate`],
//! [`simt`], [`estimators`], [`enumeration`], [`engine`], [`pipeline`].

pub mod adaptive;
pub mod builder;
pub mod prelude;

pub use adaptive::{run_adaptive, AdaptiveConfig, AdaptiveReport};
pub use builder::{Backend, Error, Gsword, GswordBuilder, Report};

/// Re-export: candidate graphs.
pub use gsword_candidate as candidate;
/// Re-export: device kernels.
pub use gsword_engine as engine;
/// Re-export: exact enumeration.
pub use gsword_enumeration as enumeration;
/// Re-export: RW estimators.
pub use gsword_estimators as estimators;
/// Re-export: graph substrate.
pub use gsword_graph as graph;
/// Re-export: trawling and co-processing.
pub use gsword_pipeline as pipeline;
/// Re-export: query substrate.
pub use gsword_query as query;
/// Re-export: the SIMT device.
pub use gsword_simt as simt;

/// Re-export: the eight-dataset suite (Table 1).
pub use gsword_graph::datasets;

use gsword_candidate::{build_candidate_graph, BuildConfig};
use gsword_enumeration::{count_instances_parallel, EnumLimits};
use gsword_estimators::QueryCtx;
use gsword_graph::GraphStorage;
use gsword_query::{quicksi_order, QueryGraph};

/// Compute the exact subgraph (embedding) count for a query — the ground
/// truth used for q-error evaluation. `threads = 0` uses all cores.
///
/// Returns `None` when `budget` search nodes were exhausted before the
/// search space was (the count would only be a lower bound).
pub fn exact_count<S: GraphStorage>(
    data: &S,
    query: &QueryGraph,
    budget: u64,
    threads: usize,
) -> Option<u64> {
    let (cg, _) = build_candidate_graph(data, query, &BuildConfig::default());
    let order = quicksi_order(query, data);
    let ctx = QueryCtx::new(&cg, &order);
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        threads
    };
    let out = count_instances_parallel(&ctx, EnumLimits::budget(budget), threads);
    out.complete.then_some(out.count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_count_runs_end_to_end() {
        let data = datasets::dataset("yeast");
        let query = QueryGraph::extract(&data, 4, 1).expect("query");
        let count = exact_count(&data, &query, 0, 2);
        assert!(count.is_some());
    }

    #[test]
    fn exact_count_reports_budget_exhaustion() {
        let data = datasets::dataset("yeast");
        // An unlabeled-ish frequent pattern so the budget trips.
        let query = QueryGraph::extract(&data, 8, 3).expect("query");
        let out = exact_count(&data, &query, 2, 1);
        // Budget of 2 nodes cannot complete any 8-vertex search unless the
        // candidate sets are empty; accept either None or a tiny count.
        if let Some(c) = out {
            assert_eq!(c, 0);
        }
    }
}
