//! A `compute-sanitizer` analogue for the software SIMT device.
//!
//! Real CUDA ships `compute-sanitizer`, whose tools catch the classes of
//! bugs the hardware model makes undefined rather than impossible. The
//! software device in `gsword-simt` has the same undefined corners — a
//! stale `WarpMask` passed to `__shfl_sync`-style primitives, an
//! unsynchronized block-shared write, a read of a never-written device
//! word — and nothing in a functional simulation stops them from silently
//! producing plausible numbers. This crate is the checking layer:
//!
//! * **synccheck** — every warp-synchronous primitive validates that its
//!   declared participation mask is a subset of the lanes the executor
//!   actually has converged, and `shfl` flags reads from out-of-range or
//!   non-participating source lanes.
//! * **racecheck** — shadow state over device address spaces detects
//!   same-address write/write and read/write pairs from different warps
//!   of a block with no barrier in between (unless both are atomic).
//! * **initcheck** — registered device allocations start poisoned; a read
//!   of a word never written flags. Address spaces that are never
//!   registered are treated as host-initialized (the candidate graph) and
//!   stay silent.
//!
//! The handle is zero-cost when disabled: [`Sanitizer`] is an
//! `Option<Arc<..>>` and every hook starts with an inlined `None` check,
//! so kernels pay one branch per instrumentation point in normal runs.
//! Detailed violations are capped *per call site* ([`VIOLATION_CAP`],
//! keyed by [`ViolationKind::site`]) so one hot instrumentation point
//! cannot evict diagnostics from every other site; the total count keeps
//! incrementing past the cap, and the report is sorted into a
//! deterministic order.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Lanes per warp — mirrors `gsword_simt::WARP_SIZE` (this crate sits
/// below the simulator and cannot import it).
pub const WARP_SIZE: usize = 32;

const FULL_MASK: u32 = u32::MAX;

/// Maximum violations kept with full detail *per call site* (see
/// [`ViolationKind::site`]); the total count keeps incrementing past the
/// cap.
pub const VIOLATION_CAP: usize = 64;

/// Identity of the instrumentation point class that produced a violation:
/// the variant name plus its static operand (primitive name or address
/// space), with dynamic operands (addresses, lanes, warps) erased. The
/// detail cap is applied per site.
pub type Site = (&'static str, &'static str, Option<Space>);

/// Which checking tools are active (mirrors compute-sanitizer's
/// `--tool synccheck|racecheck|initcheck`, combinable here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SanitizerMode {
    pub synccheck: bool,
    pub racecheck: bool,
    pub initcheck: bool,
}

impl SanitizerMode {
    /// Everything off — the default.
    pub const OFF: SanitizerMode = SanitizerMode {
        synccheck: false,
        racecheck: false,
        initcheck: false,
    };

    /// All three tools on.
    pub const FULL: SanitizerMode = SanitizerMode {
        synccheck: true,
        racecheck: true,
        initcheck: true,
    };

    /// Is any tool active?
    pub fn any(&self) -> bool {
        self.synccheck || self.racecheck || self.initcheck
    }

    /// Parse a `--sanitize` argument value: `full` (or empty), `off`, or a
    /// comma-separated subset of `sync`, `race`, `init`.
    pub fn parse(s: &str) -> Result<SanitizerMode, String> {
        match s {
            "" | "full" | "all" => return Ok(SanitizerMode::FULL),
            "off" | "none" => return Ok(SanitizerMode::OFF),
            _ => {}
        }
        let mut mode = SanitizerMode::OFF;
        for part in s.split(',') {
            match part.trim() {
                "sync" | "synccheck" => mode.synccheck = true,
                "race" | "racecheck" => mode.racecheck = true,
                "init" | "initcheck" => mode.initcheck = true,
                other => {
                    return Err(format!(
                        "unknown sanitizer tool {other:?} (expected sync, race, init, full, off)"
                    ))
                }
            }
        }
        Ok(mode)
    }
}

/// A distinct device address space the sanitizer shadows. `Region(r)`
/// mirrors `gsword_simt::Region`'s index; `Pool(b)` is block `b`'s sample
/// pool counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Space {
    Region(u32),
    Pool(u32),
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Space::Region(r) => write!(f, "region {r}"),
            Space::Pool(b) => write!(f, "pool of block {b}"),
        }
    }
}

/// What went wrong, with the operands the report needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// A warp primitive declared lanes that are not actually converged.
    SyncMaskMismatch {
        primitive: &'static str,
        declared: u32,
        active: u32,
    },
    /// A warp primitive was invoked with an empty participation mask.
    SyncEmptyMask { primitive: &'static str },
    /// `shfl` read from a source lane outside the warp or outside the
    /// participating mask.
    ShflInvalidSource { src: usize, mask: u32 },
    /// Two warps wrote the same word with no barrier in between.
    WriteWriteRace {
        space: Space,
        addr: usize,
        other_warp: usize,
    },
    /// A read and a write of the same word from different warps with no
    /// barrier in between.
    ReadWriteRace {
        space: Space,
        addr: usize,
        other_warp: usize,
    },
    /// A read of a device word that was never written.
    UninitRead { space: Space, addr: usize },
}

impl ViolationKind {
    /// The call-site class this violation belongs to, for the per-site
    /// detail cap: variant plus the primitive name or address space. Two
    /// violations from the same primitive (or the same racing space) share
    /// a site even when their dynamic operands differ.
    pub fn site(&self) -> Site {
        match self {
            ViolationKind::SyncMaskMismatch { primitive, .. } => {
                ("sync-mask-mismatch", primitive, None)
            }
            ViolationKind::SyncEmptyMask { primitive } => ("sync-empty-mask", primitive, None),
            ViolationKind::ShflInvalidSource { .. } => ("shfl-invalid-source", "shfl", None),
            ViolationKind::WriteWriteRace { space, .. } => ("write-write-race", "", Some(*space)),
            ViolationKind::ReadWriteRace { space, .. } => ("read-write-race", "", Some(*space)),
            ViolationKind::UninitRead { space, .. } => ("uninit-read", "", Some(*space)),
        }
    }

    /// Which tool produced this violation.
    pub fn tool(&self) -> &'static str {
        match self {
            ViolationKind::SyncMaskMismatch { .. }
            | ViolationKind::SyncEmptyMask { .. }
            | ViolationKind::ShflInvalidSource { .. } => "synccheck",
            ViolationKind::WriteWriteRace { .. } | ViolationKind::ReadWriteRace { .. } => {
                "racecheck"
            }
            ViolationKind::UninitRead { .. } => "initcheck",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::SyncMaskMismatch {
                primitive,
                declared,
                active,
            } => write!(
                f,
                "{primitive} declared mask {declared:#010x} but only lanes {active:#010x} are converged (stray {:#010x})",
                declared & !active
            ),
            ViolationKind::SyncEmptyMask { primitive } => {
                write!(f, "{primitive} invoked with an empty participation mask")
            }
            ViolationKind::ShflInvalidSource { src, mask } => write!(
                f,
                "shfl reads lane {src}, which is outside the participating mask {mask:#010x}"
            ),
            ViolationKind::WriteWriteRace {
                space,
                addr,
                other_warp,
            } => write!(
                f,
                "write/write race on {space} word {addr} (previous writer: warp {other_warp})"
            ),
            ViolationKind::ReadWriteRace {
                space,
                addr,
                other_warp,
            } => write!(
                f,
                "read/write race on {space} word {addr} (conflicting warp {other_warp})"
            ),
            ViolationKind::UninitRead { space, addr } => {
                write!(f, "read of uninitialized {space} word {addr}")
            }
        }
    }
}

/// One structured sanitizer finding: which kernel, which block and warp,
/// and what happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub kernel: String,
    pub block: usize,
    pub warp: usize,
    pub kind: ViolationKind,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] kernel {} block {} warp {}: {}",
            self.kind.tool(),
            self.kernel,
            self.block,
            self.warp,
            self.kind
        )
    }
}

/// Final result of a sanitized run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SanitizerReport {
    /// Kernel name the sanitizer was attached to.
    pub kernel: String,
    /// Violations kept in detail (at most [`VIOLATION_CAP`] per call
    /// site), sorted by (block, warp, description) for determinism across
    /// host threads.
    pub violations: Vec<Violation>,
    /// Total violations observed, including those past the cap.
    pub total: u64,
}

impl SanitizerReport {
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Violations produced by one tool.
    pub fn count_for(&self, tool: &str) -> usize {
        self.violations
            .iter()
            .filter(|v| v.kind.tool() == tool)
            .count()
    }

    /// Fold another launch's report into this one (multi-launch runs such
    /// as the co-processing pipeline). Detailed violations stay capped at
    /// [`VIOLATION_CAP`] per call site; `total` keeps the exact count.
    pub fn merge(&mut self, other: &SanitizerReport) {
        if self.kernel.is_empty() {
            self.kernel = other.kernel.clone();
        }
        let mut per_site: HashMap<Site, usize> = HashMap::new();
        for v in &self.violations {
            *per_site.entry(v.kind.site()).or_default() += 1;
        }
        for v in &other.violations {
            let n = per_site.entry(v.kind.site()).or_default();
            if *n < VIOLATION_CAP {
                self.violations.push(v.clone());
                *n += 1;
            }
        }
        self.total += other.total;
    }
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "sanitizer: kernel {} clean", self.kernel);
        }
        writeln!(
            f,
            "sanitizer: kernel {}: {} violation(s)",
            self.kernel, self.total
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        if self.total > self.violations.len() as u64 {
            writeln!(
                f,
                "  ... {} more (cap {} per call site)",
                self.total - self.violations.len() as u64,
                VIOLATION_CAP
            )?;
        }
        Ok(())
    }
}

/// Racecheck's memory of the last conflicting accesses to one word.
#[derive(Debug, Clone, Copy)]
struct Access {
    warp: usize,
    epoch: u64,
    atomic: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct WordState {
    last_writer: Option<Access>,
    last_reader: Option<Access>,
}

/// Per-block shadow state: the barrier epoch and per-word access history.
#[derive(Debug, Default)]
struct BlockShadow {
    epoch: u64,
    words: HashMap<(Space, usize), WordState>,
}

/// Initcheck shadow for one registered device allocation.
#[derive(Debug)]
struct InitShadow {
    len: usize,
    written: Vec<u64>,
}

impl InitShadow {
    fn new(len: usize) -> Self {
        InitShadow {
            len,
            written: vec![0; len.div_ceil(64)],
        }
    }

    fn mark(&mut self, addr: usize) {
        if addr < self.len {
            self.written[addr / 64] |= 1 << (addr % 64);
        }
    }

    fn is_written(&self, addr: usize) -> bool {
        addr < self.len && self.written[addr / 64] & (1 << (addr % 64)) != 0
    }
}

/// Detailed violations plus the per-(site, block) counts enforcing the
/// record-time cap, kept under one lock so the count and the kept list
/// cannot drift apart. The cap is keyed by block as well as site so that
/// blocks executing on different host threads cannot steal each other's
/// detail budget in a thread-timing-dependent order; [`Sanitizer::report`]
/// re-applies the global per-site cap in ascending block order, which is
/// exactly the arrival order of a serial (block 0, 1, 2, …) execution.
#[derive(Debug, Default)]
struct Detail {
    kept: Vec<Violation>,
    per_site: HashMap<(Site, usize), usize>,
}

#[derive(Debug)]
struct Inner {
    mode: SanitizerMode,
    kernel: String,
    detail: Mutex<Detail>,
    total: AtomicU64,
    blocks: Mutex<HashMap<usize, BlockShadow>>,
    allocs: Mutex<HashMap<Space, InitShadow>>,
}

impl Inner {
    fn record(&self, block: usize, warp: usize, kind: ViolationKind) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut d = self.detail.lock();
        let seen = d.per_site.entry((kind.site(), block)).or_default();
        if *seen < VIOLATION_CAP {
            *seen += 1;
            d.kept.push(Violation {
                kernel: self.kernel.clone(),
                block,
                warp,
                kind,
            });
        }
    }
}

/// The sanitizer handle threaded through the device. Cloning is cheap
/// (`Arc`); the disabled handle is a `None` and every hook is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Sanitizer {
    inner: Option<Arc<Inner>>,
}

impl Sanitizer {
    /// Attach a sanitizer in `mode` to a kernel. `SanitizerMode::OFF`
    /// yields the disabled (zero-cost) handle.
    pub fn new(mode: SanitizerMode, kernel: &str) -> Self {
        if !mode.any() {
            return Sanitizer { inner: None };
        }
        Sanitizer {
            inner: Some(Arc::new(Inner {
                mode,
                kernel: kernel.to_string(),
                detail: Mutex::new(Detail::default()),
                total: AtomicU64::new(0),
                blocks: Mutex::new(HashMap::new()),
                allocs: Mutex::new(HashMap::new()),
            })),
        }
    }

    /// The disabled handle (same as `Default`).
    pub fn off() -> Self {
        Sanitizer { inner: None }
    }

    /// Is any tool active?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Active mode (`OFF` when disabled).
    pub fn mode(&self) -> SanitizerMode {
        self.inner.as_ref().map_or(SanitizerMode::OFF, |i| i.mode)
    }

    /// Scoped handle for one warp of one block. All lanes start converged,
    /// matching a kernel entry point.
    pub fn warp(&self, block: usize, warp: usize) -> WarpSanitizer {
        WarpSanitizer {
            inner: self.inner.clone(),
            block,
            warp,
            active: std::cell::Cell::new(FULL_MASK),
        }
    }

    /// Register a device allocation of `len` words in `space` for
    /// initcheck: every word starts poisoned until written. Spaces never
    /// registered are treated as host-initialized and are not checked.
    pub fn region_alloc(&self, space: Space, len: usize) {
        let Some(inner) = &self.inner else { return };
        if !inner.mode.initcheck {
            return;
        }
        inner.allocs.lock().insert(space, InitShadow::new(len));
    }

    /// A block-wide barrier (`__syncthreads` analogue): orders all prior
    /// accesses of `block` before all later ones for racecheck.
    pub fn block_barrier(&self, block: usize) {
        let Some(inner) = &self.inner else { return };
        if !inner.mode.racecheck {
            return;
        }
        let mut blocks = inner.blocks.lock();
        blocks.entry(block).or_default().epoch += 1;
    }

    /// Collect the final report. Violations are sorted into a
    /// deterministic order regardless of host-thread interleaving, and the
    /// global per-site cap of [`VIOLATION_CAP`] is applied in ascending
    /// block order — the arrival order of a serial execution — so the kept
    /// set is bit-identical however blocks were scheduled across threads.
    pub fn report(&self) -> SanitizerReport {
        let Some(inner) = &self.inner else {
            return SanitizerReport::default();
        };
        let mut kept = inner.detail.lock().kept.clone();
        // Each block's violations were pushed by the one thread running
        // that block, so a stable sort by block restores the serial
        // arrival order (blocks ascending, program order within a block).
        kept.sort_by_key(|v| v.block);
        let mut per_site: HashMap<Site, usize> = HashMap::new();
        let mut violations = Vec::with_capacity(kept.len().min(VIOLATION_CAP));
        for v in kept {
            let seen = per_site.entry(v.kind.site()).or_default();
            if *seen < VIOLATION_CAP {
                *seen += 1;
                violations.push(v);
            }
        }
        violations.sort_by(|a, b| {
            (a.block, a.warp, format!("{}", a.kind)).cmp(&(b.block, b.warp, format!("{}", b.kind)))
        });
        SanitizerReport {
            kernel: inner.kernel.clone(),
            violations,
            total: inner.total.load(Ordering::Relaxed),
        }
    }
}

/// Per-(block, warp) sanitizer handle the simulator's primitives call
/// into. Single-threaded by construction (one warp executes on one host
/// thread), hence the `Cell` for the converged-lane mask.
#[derive(Debug)]
pub struct WarpSanitizer {
    inner: Option<Arc<Inner>>,
    block: usize,
    warp: usize,
    active: std::cell::Cell<u32>,
}

impl WarpSanitizer {
    /// A disabled handle for code paths without a device (unit tests,
    /// benches).
    pub fn disabled() -> Self {
        Sanitizer::off().warp(0, 0)
    }

    /// Is any tool active?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Block this handle belongs to.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Declare the ground-truth converged lanes (the executor's knowledge
    /// of which lanes are really executing). Primitives' declared masks
    /// are validated against this.
    pub fn set_active(&self, mask: u32) {
        if self.inner.is_some() {
            self.active.set(mask);
        }
    }

    /// Currently declared converged lanes.
    pub fn active(&self) -> u32 {
        self.active.get()
    }

    /// synccheck hook: a warp-synchronous primitive declared `mask`.
    #[inline]
    pub fn sync_op(&self, primitive: &'static str, mask: u32) {
        let Some(inner) = &self.inner else { return };
        if !inner.mode.synccheck {
            return;
        }
        if mask == 0 {
            inner.record(
                self.block,
                self.warp,
                ViolationKind::SyncEmptyMask { primitive },
            );
            return;
        }
        let active = self.active.get();
        if mask & !active != 0 {
            inner.record(
                self.block,
                self.warp,
                ViolationKind::SyncMaskMismatch {
                    primitive,
                    declared: mask,
                    active,
                },
            );
        }
    }

    /// synccheck hook for `shfl`'s source lane: flags out-of-range lanes
    /// (which real hardware silently wraps) and lanes outside the
    /// participating mask (whose value is undefined).
    #[inline]
    pub fn shfl_src(&self, mask: u32, src: usize) {
        let Some(inner) = &self.inner else { return };
        if !inner.mode.synccheck {
            return;
        }
        let wrapped = src % WARP_SIZE;
        if src >= WARP_SIZE || mask & (1 << wrapped) == 0 {
            inner.record(
                self.block,
                self.warp,
                ViolationKind::ShflInvalidSource { src, mask },
            );
        }
    }

    /// Memory hook: one lane read a word.
    #[inline]
    pub fn mem_read(&self, space: Space, addr: usize) {
        self.mem_access(space, addr, false, false);
    }

    /// Memory hook: one lane wrote a word.
    #[inline]
    pub fn mem_write(&self, space: Space, addr: usize) {
        self.mem_access(space, addr, true, false);
    }

    /// Memory hook: an atomic read-modify-write of a word. Atomics never
    /// race with other atomics, but still race with plain accesses.
    #[inline]
    pub fn mem_atomic(&self, space: Space, addr: usize) {
        self.mem_access(space, addr, true, true);
    }

    fn mem_access(&self, space: Space, addr: usize, write: bool, atomic: bool) {
        let Some(inner) = &self.inner else { return };
        if inner.mode.initcheck {
            let mut allocs = inner.allocs.lock();
            if let Some(shadow) = allocs.get_mut(&space) {
                if write {
                    shadow.mark(addr);
                } else if !shadow.is_written(addr) {
                    drop(allocs);
                    inner.record(
                        self.block,
                        self.warp,
                        ViolationKind::UninitRead { space, addr },
                    );
                }
            }
        }
        if !inner.mode.racecheck {
            return;
        }
        let mut hazards: Vec<ViolationKind> = Vec::new();
        {
            let mut blocks = inner.blocks.lock();
            let shadow = blocks.entry(self.block).or_default();
            let epoch = shadow.epoch;
            let me = Access {
                warp: self.warp,
                epoch,
                atomic,
            };
            let word = shadow.words.entry((space, addr)).or_default();
            let conflicts = |other: &Access| {
                other.epoch == epoch && other.warp != self.warp && !(other.atomic && atomic)
            };
            if write {
                if let Some(w) = word.last_writer.filter(conflicts) {
                    hazards.push(ViolationKind::WriteWriteRace {
                        space,
                        addr,
                        other_warp: w.warp,
                    });
                }
                if let Some(r) = word.last_reader.filter(conflicts) {
                    hazards.push(ViolationKind::ReadWriteRace {
                        space,
                        addr,
                        other_warp: r.warp,
                    });
                }
                word.last_writer = Some(me);
            } else {
                if let Some(w) = word.last_writer.filter(conflicts) {
                    hazards.push(ViolationKind::ReadWriteRace {
                        space,
                        addr,
                        other_warp: w.warp,
                    });
                }
                word.last_reader = Some(me);
            }
        }
        for kind in hazards {
            inner.record(self.block, self.warp, kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_silent() {
        let san = Sanitizer::off();
        assert!(!san.enabled());
        let ws = san.warp(0, 0);
        ws.sync_op("ballot", 0);
        ws.shfl_src(0, 99);
        ws.mem_read(Space::Region(0), 7);
        assert!(san.report().is_clean());
    }

    #[test]
    fn off_mode_yields_disabled_handle() {
        let san = Sanitizer::new(SanitizerMode::OFF, "k");
        assert!(!san.enabled());
    }

    #[test]
    fn synccheck_flags_superset_masks() {
        let san = Sanitizer::new(SanitizerMode::FULL, "k");
        let ws = san.warp(1, 2);
        ws.set_active(0b0111);
        ws.sync_op("ballot", 0b0011); // subset: fine
        ws.sync_op("any", 0b1111); // lane 3 not converged
        let rep = san.report();
        assert_eq!(rep.total, 1);
        assert_eq!(rep.violations[0].block, 1);
        assert_eq!(rep.violations[0].warp, 2);
        assert!(matches!(
            rep.violations[0].kind,
            ViolationKind::SyncMaskMismatch {
                declared: 0b1111,
                active: 0b0111,
                ..
            }
        ));
    }

    #[test]
    fn synccheck_flags_empty_mask() {
        let san = Sanitizer::new(SanitizerMode::FULL, "k");
        let ws = san.warp(0, 0);
        ws.sync_op("reduce_sum", 0);
        assert_eq!(san.report().count_for("synccheck"), 1);
    }

    #[test]
    fn shfl_source_checks() {
        let san = Sanitizer::new(SanitizerMode::FULL, "k");
        let ws = san.warp(0, 0);
        ws.shfl_src(FULL_MASK, 31); // in range, in mask
        ws.shfl_src(0b1, 40); // out of range (wraps to 8, also outside mask)
        ws.shfl_src(0b1, 5); // inactive source lane
        let rep = san.report();
        assert_eq!(rep.count_for("synccheck"), 2);
    }

    #[test]
    fn racecheck_write_write() {
        let san = Sanitizer::new(SanitizerMode::FULL, "k");
        let w0 = san.warp(0, 0);
        let w1 = san.warp(0, 1);
        w0.mem_write(Space::Region(2), 10);
        w1.mem_write(Space::Region(2), 10);
        let rep = san.report();
        assert_eq!(rep.total, 1);
        assert!(matches!(
            rep.violations[0].kind,
            ViolationKind::WriteWriteRace { addr: 10, .. }
        ));
    }

    #[test]
    fn racecheck_read_write_both_orders() {
        let san = Sanitizer::new(SanitizerMode::FULL, "k");
        let w0 = san.warp(0, 0);
        let w1 = san.warp(0, 1);
        w0.mem_read(Space::Region(2), 4);
        w1.mem_write(Space::Region(2), 4); // write after read
        w0.mem_read(Space::Region(2), 4); // read after write
        assert_eq!(san.report().count_for("racecheck"), 2);
    }

    #[test]
    fn racecheck_same_warp_is_program_ordered() {
        let san = Sanitizer::new(SanitizerMode::FULL, "k");
        let ws = san.warp(0, 0);
        ws.mem_write(Space::Region(2), 3);
        ws.mem_write(Space::Region(2), 3);
        ws.mem_read(Space::Region(2), 3);
        assert!(san.report().is_clean());
    }

    #[test]
    fn racecheck_atomics_do_not_race_each_other() {
        let san = Sanitizer::new(SanitizerMode::FULL, "k");
        let w0 = san.warp(0, 0);
        let w1 = san.warp(0, 1);
        w0.mem_atomic(Space::Pool(0), 0);
        w1.mem_atomic(Space::Pool(0), 0);
        assert!(san.report().is_clean());
        // ... but a plain read against another warp's atomic write races.
        w0.mem_read(Space::Pool(0), 0);
        assert_eq!(san.report().count_for("racecheck"), 1);
    }

    #[test]
    fn racecheck_barrier_separates_epochs() {
        let san = Sanitizer::new(SanitizerMode::FULL, "k");
        let w0 = san.warp(0, 0);
        let w1 = san.warp(0, 1);
        w0.mem_write(Space::Region(2), 8);
        san.block_barrier(0);
        w1.mem_write(Space::Region(2), 8);
        assert!(san.report().is_clean());
        // Barriers are per block: block 1 traffic is independent.
        let o0 = san.warp(1, 0);
        let o1 = san.warp(1, 1);
        o0.mem_write(Space::Region(2), 8);
        o1.mem_write(Space::Region(2), 8);
        assert_eq!(san.report().total, 1);
    }

    #[test]
    fn initcheck_poisons_registered_allocations() {
        let san = Sanitizer::new(SanitizerMode::FULL, "k");
        san.region_alloc(Space::Region(4), 16);
        let ws = san.warp(0, 0);
        ws.mem_read(Space::Region(0), 3); // unregistered: host-initialized
        ws.mem_read(Space::Region(4), 3); // poisoned
        ws.mem_write(Space::Region(4), 3);
        ws.mem_read(Space::Region(4), 3); // now initialized
        let rep = san.report();
        assert_eq!(rep.count_for("initcheck"), 1);
        assert!(matches!(
            rep.violations[0].kind,
            ViolationKind::UninitRead { addr: 3, .. }
        ));
    }

    #[test]
    fn report_is_sorted_and_capped() {
        let san = Sanitizer::new(SanitizerMode::FULL, "k");
        for block in (0..4).rev() {
            let ws = san.warp(block, 0);
            for addr in 0..40 {
                let other = san.warp(block, 1);
                other.mem_write(Space::Region(2), addr);
                ws.mem_write(Space::Region(2), addr);
            }
        }
        let rep = san.report();
        assert_eq!(rep.total, 160);
        assert_eq!(rep.violations.len(), VIOLATION_CAP);
        let blocks: Vec<usize> = rep.violations.iter().map(|v| v.block).collect();
        let mut sorted = blocks.clone();
        sorted.sort_unstable();
        assert_eq!(blocks, sorted);
        assert!(!rep.is_clean());
        assert!(format!("{rep}").contains("more (cap"));
    }

    #[test]
    fn cap_is_per_call_site() {
        let san = Sanitizer::new(SanitizerMode::FULL, "k");
        let ws = san.warp(0, 0);
        ws.set_active(0b1);
        // Flood one site far past the cap...
        for _ in 0..VIOLATION_CAP * 3 {
            ws.sync_op("ballot", 0b11);
        }
        // ...then hit a different site once: it must still be kept in
        // detail rather than evicted by the flood.
        ws.sync_op("reduce_sum", 0);
        let rep = san.report();
        assert_eq!(rep.total, (VIOLATION_CAP * 3 + 1) as u64);
        assert_eq!(rep.violations.len(), VIOLATION_CAP + 1);
        assert!(
            rep.violations
                .iter()
                .any(|v| matches!(v.kind, ViolationKind::SyncEmptyMask { primitive } if primitive == "reduce_sum")),
            "second call site was evicted by the first site's flood"
        );
    }

    #[test]
    fn merge_caps_per_site() {
        let make = |n_ballot: usize, n_empty: usize| {
            let san = Sanitizer::new(SanitizerMode::FULL, "k");
            let ws = san.warp(0, 0);
            ws.set_active(0b1);
            for _ in 0..n_ballot {
                ws.sync_op("ballot", 0b11);
            }
            for _ in 0..n_empty {
                ws.sync_op("shfl", 0);
            }
            san.report()
        };
        let mut merged = make(VIOLATION_CAP, 1);
        merged.merge(&make(VIOLATION_CAP, 1));
        // The flooded site stays at its cap; the rare site keeps both
        // occurrences instead of losing the second to the flood.
        assert_eq!(merged.total, 2 * (VIOLATION_CAP + 1) as u64);
        assert_eq!(merged.violations.len(), VIOLATION_CAP + 2);
        let empties = merged
            .violations
            .iter()
            .filter(|v| matches!(v.kind, ViolationKind::SyncEmptyMask { .. }))
            .count();
        assert_eq!(empties, 2);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(SanitizerMode::parse("full").unwrap(), SanitizerMode::FULL);
        assert_eq!(SanitizerMode::parse("").unwrap(), SanitizerMode::FULL);
        assert_eq!(SanitizerMode::parse("off").unwrap(), SanitizerMode::OFF);
        let m = SanitizerMode::parse("sync,init").unwrap();
        assert!(m.synccheck && m.initcheck && !m.racecheck);
        assert!(SanitizerMode::parse("bogus").is_err());
    }

    #[test]
    fn violations_render_operands() {
        let san = Sanitizer::new(SanitizerMode::FULL, "rsv");
        let ws = san.warp(3, 1);
        ws.set_active(0b1);
        ws.sync_op("shfl", 0b11);
        let rep = san.report();
        let text = format!("{}", rep.violations[0]);
        assert!(text.contains("kernel rsv"), "{text}");
        assert!(text.contains("block 3"), "{text}");
        assert!(text.contains("warp 1"), "{text}");
        assert!(text.contains("synccheck"), "{text}");
    }
}
