//! Brute-force embedding counter straight on the data graph.
//!
//! Exponential and oblivious to candidate graphs and matching orders — by
//! design. It is the independent oracle the rest of the workspace tests
//! against, so it must share as little code as possible with the optimized
//! paths. Only use on tiny inputs.

use gsword_graph::{GraphStorage, VertexId};
use gsword_query::{QueryGraph, QueryVertex};

/// Count injective, label- and edge-preserving mappings of `query` into
/// `data` (embeddings — the quantity the HT estimators approximate).
pub fn count_embeddings<S: GraphStorage>(data: &S, query: &QueryGraph) -> u64 {
    let mut partial: Vec<VertexId> = Vec::with_capacity(query.num_vertices());
    let mut count = 0u64;
    recurse(data, query, &mut partial, &mut count);
    count
}

fn recurse<S: GraphStorage>(
    data: &S,
    query: &QueryGraph,
    partial: &mut Vec<VertexId>,
    count: &mut u64,
) {
    let d = partial.len();
    if d == query.num_vertices() {
        *count += 1;
        return;
    }
    let u = d as QueryVertex;
    for v in 0..data.num_vertices() as VertexId {
        if data.label(v) != query.label(u) || partial.contains(&v) {
            continue;
        }
        let consistent =
            (0..d).all(|j| !query.has_edge(j as QueryVertex, u) || data.has_edge(partial[j], v));
        if consistent {
            partial.push(v);
            recurse(data, query, partial, count);
            partial.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsword_graph::GraphBuilder;

    #[test]
    fn single_edge_query() {
        // Path 0-1-2, all labels equal: edge query has 4 embeddings
        // (2 edges × 2 directions).
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let q = QueryGraph::new(vec![0, 0], &[(0, 1)]).unwrap();
        assert_eq!(count_embeddings(&g, &q), 4);
    }

    #[test]
    fn labels_restrict_matches() {
        let mut b = GraphBuilder::new();
        b.add_vertex(0);
        b.add_vertex(1);
        b.add_vertex(1);
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        // Query edge with labels (0,1): two embeddings (0→1 and 0→2).
        let q = QueryGraph::new(vec![0, 1], &[(0, 1)]).unwrap();
        assert_eq!(count_embeddings(&g, &q), 2);
        // Label 1 – label 1 edge: (1,2) and (2,1).
        let q2 = QueryGraph::new(vec![1, 1], &[(0, 1)]).unwrap();
        assert_eq!(count_embeddings(&g, &q2), 2);
    }

    #[test]
    fn no_match_returns_zero() {
        let mut b = GraphBuilder::with_vertices(2);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let q = QueryGraph::new(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(count_embeddings(&g, &q), 0);
    }
}
