//! Embedding *listing*: enumerate actual instances, not just the count.
//!
//! The paper's downstream applications (graph kernels, probabilistic
//! models) consume instances. The listing walker shares the counting
//! search's pruning but hands each embedding to a visitor, which can stop
//! the search early (top-k retrieval, reservoir sampling of instances, …).

use std::ops::ControlFlow;

use gsword_estimators::QueryCtx;
use gsword_graph::VertexId;

/// Visit every embedding of the query (as data vertices ordered by
/// matching-order position). The visitor returns
/// [`ControlFlow::Break`] to stop the search. Returns the number of
/// embeddings visited.
pub fn for_each_embedding<F>(ctx: &QueryCtx<'_>, mut visitor: F) -> u64
where
    F: FnMut(&[VertexId]) -> ControlFlow<()>,
{
    let mut prefix = Vec::with_capacity(ctx.len());
    let mut visited = 0u64;
    let _ = walk(ctx, &mut prefix, 0, &mut visitor, &mut visited);
    visited
}

fn walk<F>(
    ctx: &QueryCtx<'_>,
    prefix: &mut Vec<VertexId>,
    d: usize,
    visitor: &mut F,
    visited: &mut u64,
) -> ControlFlow<()>
where
    F: FnMut(&[VertexId]) -> ControlFlow<()>,
{
    if d == ctx.len() {
        *visited += 1;
        return visitor(prefix);
    }
    let (cand, _, _) = ctx.min_candidate_prefix(prefix, d);
    for &v in cand {
        if prefix.contains(&v) {
            continue;
        }
        let ok = ctx.backward(d).iter().all(|be| {
            ctx.cg
                .has_local(be.edge as usize, prefix[be.pos as usize], v)
        });
        if ok {
            prefix.push(v);
            let flow = walk(ctx, prefix, d + 1, visitor, visited);
            prefix.pop();
            flow?;
        }
    }
    ControlFlow::Continue(())
}

/// Collect up to `limit` embeddings (in search order). `limit == 0`
/// collects everything — only do that when the count is known to be small.
pub fn collect_embeddings(ctx: &QueryCtx<'_>, limit: usize) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    for_each_embedding(ctx, |emb| {
        out.push(emb.to_vec());
        if limit != 0 && out.len() >= limit {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{count_instances, EnumLimits};
    use gsword_candidate::{build_candidate_graph, BuildConfig};
    use gsword_graph::GraphBuilder;
    use gsword_query::{MatchingOrder, QueryGraph};

    fn fixture() -> (gsword_candidate::CandidateGraph, QueryGraph) {
        let mut b = GraphBuilder::with_vertices(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let q = QueryGraph::new(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        (cg, q)
    }

    #[test]
    fn listing_agrees_with_counting() {
        let (cg, q) = fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = gsword_estimators::QueryCtx::new(&cg, &order);
        let count = count_instances(&ctx, EnumLimits::unlimited()).count;
        let listed = collect_embeddings(&ctx, 0);
        assert_eq!(listed.len() as u64, count);
        // Every listed embedding is a valid triangle of distinct vertices.
        for emb in &listed {
            assert_eq!(emb.len(), 3);
            assert_ne!(emb[0], emb[1]);
            assert_ne!(emb[1], emb[2]);
            assert_ne!(emb[0], emb[2]);
        }
        // All embeddings distinct.
        let mut sorted = listed.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), listed.len());
    }

    #[test]
    fn limit_stops_early() {
        let (cg, q) = fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = gsword_estimators::QueryCtx::new(&cg, &order);
        let some = collect_embeddings(&ctx, 5);
        assert_eq!(some.len(), 5);
    }

    #[test]
    fn visitor_break_is_respected() {
        let (cg, q) = fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = gsword_estimators::QueryCtx::new(&cg, &order);
        let mut seen = 0;
        let visited = for_each_embedding(&ctx, |_| {
            seen += 1;
            if seen == 3 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(visited, 3);
    }
}
