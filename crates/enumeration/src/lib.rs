//! Exact subgraph enumeration over candidate graphs.
//!
//! The reproduction's stand-in for the CPU enumeration method the paper
//! borrows from the in-depth study (Sun & Luo, ref. 36): backtracking along the matching
//! order, drawing extension candidates from the minimum local candidate
//! set and checking every backward edge. Three roles:
//!
//! * **Ground truth** — exact counts for q-error evaluation,
//! * **Trawling** — counting the completions of a sampled partial instance
//!   (Algorithm 4's `Enumeration(cg, s)`), and
//! * **Preemption** — the co-processing pipeline aborts CPU enumeration
//!   when the GPU batch completes, so every entry point honors a stop flag
//!   and a node budget.
//!
//! The [`naive`] module provides an independent brute-force oracle used by
//! tests across the workspace.

pub mod listing;
pub mod naive;

pub use listing::{collect_embeddings, for_each_embedding};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use gsword_estimators::QueryCtx;
use gsword_graph::VertexId;

/// Resource limits for an enumeration call.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumLimits<'a> {
    /// Abort after visiting this many search-tree nodes (0 = unlimited).
    pub node_budget: u64,
    /// Cooperative stop flag checked throughout the search (the
    /// co-processing batch timeout).
    pub stop: Option<&'a AtomicBool>,
}

impl<'a> EnumLimits<'a> {
    /// Unlimited enumeration.
    pub fn unlimited() -> Self {
        EnumLimits::default()
    }

    /// Limit only the node budget.
    pub fn budget(nodes: u64) -> Self {
        EnumLimits {
            node_budget: nodes,
            stop: None,
        }
    }
}

/// Result of an enumeration call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumOutcome {
    /// Embeddings counted before completion or abort.
    pub count: u64,
    /// Whether the search space was exhausted (false ⇒ `count` is a lower
    /// bound).
    pub complete: bool,
    /// Search-tree nodes visited.
    pub nodes: u64,
}

struct Search<'a, 'b> {
    ctx: &'a QueryCtx<'b>,
    limits: EnumLimits<'a>,
    nodes: u64,
    count: u64,
    aborted: bool,
}

impl<'a, 'b> Search<'a, 'b> {
    fn should_stop(&mut self) -> bool {
        if self.aborted {
            return true;
        }
        if self.limits.node_budget != 0 && self.nodes >= self.limits.node_budget {
            self.aborted = true;
            return true;
        }
        // Poll the flag periodically, not per node.
        if self.nodes.is_multiple_of(1024) {
            if let Some(stop) = self.limits.stop {
                if stop.load(Ordering::Relaxed) {
                    self.aborted = true;
                    return true;
                }
            }
        }
        false
    }

    fn recurse(&mut self, prefix: &mut Vec<VertexId>, d: usize) {
        if self.should_stop() {
            return;
        }
        if d == self.ctx.len() {
            self.count += 1;
            return;
        }
        let (cand, _, _) = self.ctx.min_candidate_prefix(prefix, d);
        for &v in cand {
            self.nodes += 1;
            if self.should_stop() {
                return;
            }
            if prefix.contains(&v) {
                continue;
            }
            let ok = self.ctx.backward(d).iter().all(|be| {
                self.ctx
                    .cg
                    .has_local(be.edge as usize, prefix[be.pos as usize], v)
            });
            if ok {
                prefix.push(v);
                self.recurse(prefix, d + 1);
                prefix.pop();
            }
        }
    }
}

/// Count all embeddings of the query in the candidate graph.
pub fn count_instances(ctx: &QueryCtx<'_>, limits: EnumLimits<'_>) -> EnumOutcome {
    count_extensions(ctx, &[], limits)
}

/// Count the embeddings extending a (valid) partial instance covering the
/// first `prefix.len()` matching-order positions — Algorithm 4's
/// `Enumeration(cg, s)`.
pub fn count_extensions(
    ctx: &QueryCtx<'_>,
    prefix: &[VertexId],
    limits: EnumLimits<'_>,
) -> EnumOutcome {
    let mut search = Search {
        ctx,
        limits,
        nodes: 0,
        count: 0,
        aborted: false,
    };
    let mut p = prefix.to_vec();
    p.reserve(ctx.len());
    search.recurse(&mut p, prefix.len());
    EnumOutcome {
        count: search.count,
        complete: !search.aborted,
        nodes: search.nodes,
    }
}

/// Count all embeddings, splitting the root-level candidates over
/// `threads` workers. Node budget applies per worker; the stop flag is
/// shared.
pub fn count_instances_parallel(
    ctx: &QueryCtx<'_>,
    limits: EnumLimits<'_>,
    threads: usize,
) -> EnumOutcome {
    let threads = threads.max(1);
    let (roots, _, _) = ctx.min_candidate_prefix(&[], 0);
    if threads == 1 || roots.len() < 2 {
        return count_instances(ctx, limits);
    }
    let next = AtomicU64::new(0);
    let outcomes: Vec<EnumOutcome> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                scope.spawn(move |_| {
                    let mut total = EnumOutcome {
                        count: 0,
                        complete: true,
                        nodes: 0,
                    };
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                        if i >= roots.len() {
                            break;
                        }
                        let sub = count_extensions(ctx, &roots[i..=i], limits);
                        total.count += sub.count;
                        total.nodes += sub.nodes + 1;
                        total.complete &= sub.complete;
                    }
                    total
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("enum worker panicked"))
            .collect()
    })
    .expect("scope panicked");

    let mut total = EnumOutcome {
        count: 0,
        complete: true,
        nodes: 0,
    };
    for o in outcomes {
        total.count += o.count;
        total.nodes += o.nodes;
        total.complete &= o.complete;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsword_candidate::{build_candidate_graph, BuildConfig};
    use gsword_graph::{gen, GraphBuilder};
    use gsword_query::{quicksi_order, MatchingOrder, QueryGraph};

    #[test]
    fn triangle_count_on_double_triangle() {
        let mut b = GraphBuilder::with_vertices(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let q = QueryGraph::new(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let out = count_instances(&ctx, EnumLimits::unlimited());
        assert_eq!(out.count, 12);
        assert!(out.complete);
    }

    #[test]
    fn matches_naive_oracle_on_random_graphs() {
        for seed in 0..6u64 {
            let g = gen::erdos_renyi(40, 120, gen::zipf_labels(40, 3, 0.7, seed), seed);
            let Some(q) = QueryGraph::extract(&g, 4, seed ^ 99) else {
                continue;
            };
            let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
            let order = quicksi_order(&q, &g);
            let ctx = QueryCtx::new(&cg, &order);
            let fast = count_instances(&ctx, EnumLimits::unlimited()).count;
            let slow = naive::count_embeddings(&g, &q);
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    #[test]
    fn extension_counts_sum_to_total() {
        let g = gen::erdos_renyi(30, 90, vec![0; 30], 5);
        let q = QueryGraph::new(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let total = count_instances(&ctx, EnumLimits::unlimited()).count;
        let (roots, _, _) = ctx.min_candidate_prefix(&[], 0);
        let sum: u64 = roots
            .iter()
            .map(|&v| count_extensions(&ctx, &[v], EnumLimits::unlimited()).count)
            .sum();
        assert_eq!(total, sum);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = gen::barabasi_albert(200, 5, gen::zipf_labels(200, 4, 0.8, 2), 2);
        let q = QueryGraph::extract(&g, 5, 3).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = quicksi_order(&q, &g);
        let ctx = QueryCtx::new(&cg, &order);
        let seq = count_instances(&ctx, EnumLimits::unlimited());
        let par = count_instances_parallel(&ctx, EnumLimits::unlimited(), 4);
        assert_eq!(seq.count, par.count);
        assert!(par.complete);
    }

    #[test]
    fn node_budget_aborts_with_lower_bound() {
        let g = gen::erdos_renyi(100, 800, vec![0; 100], 7);
        let q = QueryGraph::new(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let full = count_instances(&ctx, EnumLimits::unlimited());
        let cut = count_instances(&ctx, EnumLimits::budget(50));
        assert!(!cut.complete);
        assert!(cut.count <= full.count);
        // Each recursion level may add one node before observing the abort.
        assert!(cut.nodes <= 50 + ctx.len() as u64);
    }

    #[test]
    fn stop_flag_preempts() {
        let g = gen::erdos_renyi(100, 800, vec![0; 100], 7);
        let q = QueryGraph::new(vec![0, 0, 0], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let order = MatchingOrder::new(&q, vec![0, 1, 2]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let stop = AtomicBool::new(true); // already signaled
        let out = count_instances(
            &ctx,
            EnumLimits {
                node_budget: 0,
                stop: Some(&stop),
            },
        );
        assert!(!out.complete);
        assert_eq!(out.count, 0);
    }
}
