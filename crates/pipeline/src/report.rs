//! Co-processing run reports.

use gsword_estimators::Estimate;
use gsword_simt::{KernelCounters, ProfReport, SanitizerReport};

/// Outcome of one co-processing run: both the pure sampler estimate and the
/// trawling estimate, with the timing components of Figure 16.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The GPU sampler's HT estimate across all batches.
    pub sampler: Estimate,
    /// Mean trawling contribution over completed trawl samples (the
    /// "separate estimate" of Section 5). `None` when no trawl sample
    /// completed enumeration in time.
    pub trawl: Option<f64>,
    /// Trawl samples that completed enumeration before their batch timeout.
    pub trawl_completed: u64,
    /// Trawl samples handed to the CPU side in total.
    pub trawl_attempted: u64,
    /// Merged device counters of all sampling batches.
    pub counters: KernelCounters,
    /// Modeled device milliseconds summed over batches.
    pub gpu_modeled_ms: f64,
    /// Wall-clock of the functional GPU simulation summed over batches.
    pub gpu_wall_ms: f64,
    /// Wall-clock of the whole co-processing run (sampling + overlapped
    /// enumeration + final barrier).
    pub total_wall_ms: f64,
    /// Merged sanitizer findings across all sampling batches, when the
    /// engine ran under a non-OFF sanitizer mode.
    pub sanitizer: Option<SanitizerReport>,
    /// Profiler output across all batches (batch phases show up as
    /// host-track spans) when the engine ran with `profile`.
    pub prof: Option<ProfReport>,
}

impl PipelineReport {
    /// The final estimate: the trawling estimate when the pipeline
    /// completed any trawl samples (the regime it exists for), otherwise
    /// the sampler's estimate.
    pub fn value(&self) -> f64 {
        match self.trawl {
            Some(t) if self.trawl_completed > 0 => t,
            _ => self.sampler.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PipelineReport {
        PipelineReport {
            sampler: {
                let mut e = Estimate::default();
                e.record_valid(10.0);
                e.record_invalid();
                e
            },
            trawl: None,
            trawl_completed: 0,
            trawl_attempted: 8,
            counters: KernelCounters::default(),
            gpu_modeled_ms: 1.0,
            gpu_wall_ms: 2.0,
            total_wall_ms: 2.5,
            sanitizer: None,
            prof: None,
        }
    }

    #[test]
    fn falls_back_to_sampler_without_trawl() {
        let r = base();
        assert_eq!(r.value(), 5.0);
    }

    #[test]
    fn prefers_trawl_when_available() {
        let mut r = base();
        r.trawl = Some(42.0);
        r.trawl_completed = 3;
        assert_eq!(r.value(), 42.0);
    }
}
