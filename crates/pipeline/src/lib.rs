//! The trawling strategy (Algorithm 4) and the CPU–GPU co-processing
//! pipeline (Section 5).
//!
//! RW estimators underestimate badly when valid samples are rare (the
//! WordNet regime: success ratios below 1e-7). Trawling samples only a
//! *prefix* of `d` vertices — cheap to obtain even in skewed spaces — and
//! *enumerates* all completions of that prefix exactly. The estimator
//!
//! ```text
//! T = (∏_{j≤d} |C_ij|) · ℂ(s(d))      (0 when the prefix sampling fails)
//! ```
//!
//! is unbiased for the subgraph count for *any* distribution over `d`
//! (Appendix theorem); the paper draws `d` from a truncated geometric
//! distribution `P(d=j) ∝ 2⁻ʲ, j ∈ [3, |V_q|]`.
//!
//! The co-processing pipeline overlaps the expensive enumeration with GPU
//! sampling: samples are produced in batches, each batch hands `t` trawl
//! tasks to a CPU worker pool, and the pool is preempted when the next GPU
//! batch completes — only tasks that finished enumeration count.

pub mod report;
pub mod trawl;

pub use report::PipelineReport;
pub use trawl::{run_coprocessing, trawl_once, DepthDist, TrawlConfig};
