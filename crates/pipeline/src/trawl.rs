//! Trawling (Algorithm 4) and the batched co-processing driver (Figure 9).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

use gsword_enumeration::{count_extensions, EnumLimits};
use gsword_estimators::{run_partial_sample, Estimate, Estimator, QueryCtx, SampleState};
use gsword_simt::{KernelCounters, SpanKind, Track};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gsword_engine::{
    kernel_for_config, runtime_for, spawn_estimate, split_budget, EngineConfig, Kernel,
};

use crate::report::PipelineReport;

/// Truncated geometric distribution over trawling depths:
/// `P(d=j) ∝ 2⁻ʲ` for `j ∈ [min_depth, max_depth]` (Section 5's
/// "Selection of d").
#[derive(Debug, Clone)]
pub struct DepthDist {
    depths: Vec<usize>,
    cdf: Vec<f64>,
}

impl DepthDist {
    /// Build the distribution for a query with `query_len` vertices,
    /// starting enumeration from vertex `min_depth` onwards (3 in the
    /// paper; clamped to the query size).
    pub fn new(min_depth: usize, query_len: usize) -> Self {
        let lo = min_depth.min(query_len).max(1);
        let depths: Vec<usize> = (lo..=query_len).collect();
        let mut cdf = Vec::with_capacity(depths.len());
        let mut acc = 0.0;
        for &j in &depths {
            acc += 0.5f64.powi(j as i32);
            cdf.push(acc);
        }
        DepthDist { depths, cdf }
    }

    /// Draw a depth.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let total = *self.cdf.last().expect("non-empty support");
        let x = rng.gen::<f64>() * total;
        let idx = self.cdf.partition_point(|&c| c < x);
        self.depths[idx.min(self.depths.len() - 1)]
    }

    /// The support of the distribution.
    pub fn support(&self) -> &[usize] {
        &self.depths
    }
}

/// Configuration of the trawling side of the pipeline.
#[derive(Debug, Clone, Copy)]
pub struct TrawlConfig {
    /// Number of sampling batches (the paper tunes this to 6).
    pub batches: usize,
    /// CPU enumeration worker threads.
    pub cpu_threads: usize,
    /// Trawl samples transferred per batch (the paper sets this to the
    /// number of GPU cores; scaled down with the suite).
    pub per_batch: usize,
    /// First depth from which enumeration may start (3 in the paper).
    pub min_depth: usize,
    /// Per-task search-node safety valve (0 = unlimited); the batch
    /// timeout is the primary preemption mechanism.
    pub node_budget: u64,
    /// Seed for depth selection and partial sampling.
    pub seed: u64,
}

impl Default for TrawlConfig {
    fn default() -> Self {
        TrawlConfig {
            batches: 6,
            cpu_threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            per_batch: 64,
            min_depth: 3,
            node_budget: 0,
            seed: 0x7EAF,
        }
    }
}

/// One trawl sample end to end, without batching or preemption: sample a
/// `d`-vertex partial instance and enumerate its completions.
///
/// Returns the unbiased contribution `T = ℂ(s(d)) / ℙ(s(d))` (0 when the
/// prefix sampling fails). Exposed for tests and for the unbiasedness
/// property check.
pub fn trawl_once<E: Estimator + ?Sized>(
    ctx: &QueryCtx<'_>,
    est: &E,
    dist: &DepthDist,
    rng: &mut SmallRng,
) -> f64 {
    let d = dist.sample(rng);
    let mut scratch = Vec::new();
    match run_partial_sample(ctx, est, rng, &mut scratch, d) {
        Some(s) => {
            let out = count_extensions(ctx, s.prefix(), EnumLimits::unlimited());
            out.count as f64 / s.prob
        }
        None => 0.0,
    }
}

/// A trawl task produced on the sampling side: the partial instance (or
/// `None` when the prefix sampling failed — a zero contribution that
/// completes instantly).
type TrawlTask = Option<SampleState>;

/// Run the full CPU–GPU co-processing pipeline for one query.
///
/// The engine configuration's sample budget is split across
/// `trawl.batches` batches via [`split_budget`]. Each batch is launched
/// asynchronously on the device runtime's streams ([`spawn_estimate`]);
/// batch `b`'s trawl tasks are enumerated by the CPU pool *while* batch
/// `b+1` samples on the device. Waiting on the batch's completion event —
/// not a busy poll — ends the overlap window: the pool is preempted and
/// unfinished tasks are dropped (the paper's timeout mechanism). The last
/// batch's tasks get a grace window equal to the mean batch duration.
pub fn run_coprocessing<E: Estimator + ?Sized>(
    ctx: &QueryCtx<'_>,
    est: &E,
    engine_cfg: &EngineConfig,
    trawl: &TrawlConfig,
) -> PipelineReport {
    let t0 = Instant::now();
    let batches = trawl.batches.max(1);
    let batch_budgets = split_budget(engine_cfg.samples, batches);
    // Partition host cores between the functional device simulation and the
    // CPU enumeration pool: on real hardware the GPU is independent silicon,
    // so the enumeration threads must not starve the simulated device.
    let cores = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut engine_cfg = *engine_cfg;
    engine_cfg.device.host_threads = cores
        .saturating_sub(trawl.cpu_threads)
        .max(1)
        .min(engine_cfg.device.host_threads.max(1));
    let engine_cfg = &engine_cfg;
    let dist = DepthDist::new(trawl.min_depth, ctx.len());

    let mut sampler = Estimate::default();
    let mut counters = KernelCounters::default();
    let mut gpu_modeled_ms = 0.0;
    let mut gpu_wall_ms = 0.0;

    let contributions: Mutex<Vec<f64>> = Mutex::new(Vec::new());
    let mut attempted = 0u64;

    let mut pending: Vec<TrawlTask> = Vec::new();
    let mut rng = SmallRng::seed_from_u64(trawl.seed);

    // One runtime for the whole pipeline: its streams carry every batch,
    // and its per-device sanitizers accumulate across batches (fetched once
    // at the end, like a single rig-wide compute-sanitizer session).
    let kernel_name = kernel_for_config(ctx, est, engine_cfg).name();
    let runtime = runtime_for(engine_cfg, &kernel_name);

    runtime.scope(|rs| {
        for (b, &batch_samples) in batch_budgets.iter().enumerate() {
            let phase_start = runtime.profiler().now_us();
            // Produce this batch's trawl tasks (the "uniformly selected t
            // samples" transferred to the CPU — O(t·|V_q|) traffic).
            let tasks: Vec<TrawlTask> = (0..trawl.per_batch)
                .map(|_| {
                    let d = dist.sample(&mut rng);
                    let mut scratch = Vec::new();
                    run_partial_sample(ctx, est, &mut rng, &mut scratch, d)
                })
                .collect();
            attempted += tasks.len() as u64;

            // Overlap: launch this batch asynchronously on the runtime's
            // streams, enumerate the *previous* batch's tasks on the CPU
            // pool meanwhile, and preempt the pool when the batch's
            // completion event fires.
            let stop = AtomicBool::new(false);
            let batch_cfg = EngineConfig {
                samples: batch_samples,
                seed: engine_cfg.seed.wrapping_add(b as u64),
                ..*engine_cfg
            };
            let run = spawn_estimate(rs, ctx, est, &batch_cfg);
            let prev = std::mem::take(&mut pending);
            let next = AtomicUsize::new(0);
            let report = crossbeam::scope(|scope| {
                let stop_ref = &stop;
                let contributions_ref = &contributions;
                let next_ref = &next;
                let prev_ref = &prev;
                let workers: Vec<_> = (0..trawl.cpu_threads.max(1))
                    .map(|_| {
                        scope.spawn(move |_| {
                            enumerate_tasks(
                                ctx,
                                prev_ref,
                                next_ref,
                                stop_ref,
                                trawl.node_budget,
                                contributions_ref,
                            )
                        })
                    })
                    .collect();
                let report = run.wait_report(&batch_cfg);
                stop.store(true, Ordering::Relaxed);
                for w in workers {
                    w.join().expect("enumeration worker panicked");
                }
                report
            })
            .expect("pipeline scope panicked");

            sampler.merge(&report.estimate);
            counters.merge(&report.counters);
            gpu_modeled_ms += report.modeled_ms;
            gpu_wall_ms += report.wall_ms;
            pending = tasks;
            runtime.profiler().record_span(
                Track::Host,
                SpanKind::Phase,
                &format!("batch {b}"),
                phase_start,
            );
        }
    });
    let sanitizer = runtime.sanitizing().then(|| runtime.sanitizer_report());

    // Grace window for the final batch's tasks: one mean batch duration,
    // ended early once every task has been claimed and finished.
    if !pending.is_empty() {
        let grace_start = runtime.profiler().now_us();
        let grace_ms = (gpu_wall_ms / batches as f64).min(2_000.0);
        let stop = AtomicBool::new(false);
        let next = AtomicUsize::new(0);
        let finished = AtomicUsize::new(0);
        crossbeam::scope(|scope| {
            let stop_ref = &stop;
            let contributions_ref = &contributions;
            let pending_ref = &pending;
            let next_ref = &next;
            let finished_ref = &finished;
            let workers: Vec<_> = (0..trawl.cpu_threads.max(1))
                .map(|_| {
                    scope.spawn(move |_| loop {
                        if stop_ref.load(Ordering::Relaxed) {
                            return;
                        }
                        let i = next_ref.fetch_add(1, Ordering::Relaxed);
                        if i >= pending_ref.len() {
                            return;
                        }
                        enumerate_one(
                            ctx,
                            &pending_ref[i],
                            stop_ref,
                            trawl.node_budget,
                            contributions_ref,
                        );
                        finished_ref.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            let deadline = Instant::now() + std::time::Duration::from_secs_f64(grace_ms / 1e3);
            while finished.load(Ordering::Relaxed) < pending.len() && Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            stop.store(true, Ordering::Relaxed);
            for w in workers {
                w.join().expect("enumeration worker panicked");
            }
        })
        .expect("pipeline scope panicked");
        runtime
            .profiler()
            .record_span(Track::Host, SpanKind::Phase, "grace window", grace_start);
    }

    let contributions = contributions.into_inner();
    let trawl_completed = contributions.len() as u64;
    let trawl_mean = if contributions.is_empty() {
        None
    } else {
        Some(contributions.iter().sum::<f64>() / contributions.len() as f64)
    };

    PipelineReport {
        sampler,
        trawl: trawl_mean,
        trawl_completed,
        trawl_attempted: attempted,
        counters,
        gpu_modeled_ms,
        gpu_wall_ms,
        total_wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        sanitizer,
        prof: runtime
            .profiler()
            .enabled()
            .then(|| runtime.profiler().report()),
    }
}

/// Worker loop: claim tasks off the shared index, enumerate with the stop
/// flag, and record only contributions whose enumeration completed.
fn enumerate_tasks(
    ctx: &QueryCtx<'_>,
    tasks: &[TrawlTask],
    next: &AtomicUsize,
    stop: &AtomicBool,
    node_budget: u64,
    out: &Mutex<Vec<f64>>,
) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= tasks.len() {
            return;
        }
        enumerate_one(ctx, &tasks[i], stop, node_budget, out);
    }
}

/// Enumerate a single trawl task, recording its contribution only when the
/// enumeration ran to completion (the paper's timeout rule).
fn enumerate_one(
    ctx: &QueryCtx<'_>,
    task: &TrawlTask,
    stop: &AtomicBool,
    node_budget: u64,
    out: &Mutex<Vec<f64>>,
) {
    match task {
        None => out.lock().push(0.0), // failed prefix: completes instantly
        Some(s) => {
            let outcome = count_extensions(
                ctx,
                s.prefix(),
                EnumLimits {
                    node_budget,
                    stop: Some(stop),
                },
            );
            if outcome.complete {
                out.lock().push(outcome.count as f64 / s.prob);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsword_candidate::{build_candidate_graph, BuildConfig, CandidateGraph};
    use gsword_enumeration::count_instances;
    use gsword_estimators::{Alley, WanderJoin};
    use gsword_graph::gen;
    use gsword_query::{MatchingOrder, QueryGraph};
    use gsword_simt::DeviceConfig;

    fn small_device() -> DeviceConfig {
        DeviceConfig {
            num_blocks: 2,
            threads_per_block: 64,
            host_threads: 2,
        }
    }

    #[test]
    fn depth_dist_support_and_skew() {
        let d = DepthDist::new(3, 8);
        assert_eq!(d.support(), &[3, 4, 5, 6, 7, 8]);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 9];
        for _ in 0..20_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert!(
            counts[3] > counts[4] && counts[4] > counts[5],
            "geometric decay: {counts:?}"
        );
        assert_eq!(counts[0] + counts[1] + counts[2], 0);
    }

    #[test]
    fn depth_dist_clamps_to_small_queries() {
        let d = DepthDist::new(3, 2);
        assert_eq!(d.support(), &[2]);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(d.sample(&mut rng), 2);
    }

    fn five_cycle_fixture() -> (CandidateGraph, QueryGraph) {
        // 5-cycle query on a graph with a known embedding count.
        let g = gen::erdos_renyi(60, 420, vec![0; 60], 11);
        let q = QueryGraph::new(vec![0; 5], &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        (cg, q)
    }

    #[test]
    fn trawl_once_is_unbiased() {
        let (cg, q) = five_cycle_fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2, 3, 4]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let truth = count_instances(&ctx, EnumLimits::unlimited()).count as f64;
        assert!(truth > 0.0, "fixture must contain instances");
        let dist = DepthDist::new(3, ctx.len());
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 4_000;
        let mean: f64 = (0..n)
            .map(|_| trawl_once(&ctx, &Alley, &dist, &mut rng))
            .sum::<f64>()
            / n as f64;
        let rel = (mean - truth).abs() / truth;
        assert!(
            rel < 0.15,
            "trawl mean {mean} vs truth {truth} (rel {rel:.3})"
        );
    }

    #[test]
    fn trawl_once_handles_wj_too() {
        let (cg, q) = five_cycle_fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2, 3, 4]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let truth = count_instances(&ctx, EnumLimits::unlimited()).count as f64;
        let dist = DepthDist::new(3, ctx.len());
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 4_000;
        let mean: f64 = (0..n)
            .map(|_| trawl_once(&ctx, &WanderJoin, &dist, &mut rng))
            .sum::<f64>()
            / n as f64;
        let rel = (mean - truth).abs() / truth;
        assert!(
            rel < 0.2,
            "trawl mean {mean} vs truth {truth} (rel {rel:.3})"
        );
    }

    #[test]
    fn coprocessing_produces_both_estimates() {
        let (cg, q) = five_cycle_fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2, 3, 4]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let truth = count_instances(&ctx, EnumLimits::unlimited()).count as f64;
        let engine = EngineConfig {
            device: small_device(),
            ..EngineConfig::gsword(12_000)
        };
        let trawl = TrawlConfig {
            batches: 3,
            cpu_threads: 2,
            per_batch: 40,
            ..TrawlConfig::default()
        };
        let rep = run_coprocessing(&ctx, &Alley, &engine, &trawl);
        assert_eq!(rep.sampler.samples, 12_000);
        assert!(rep.trawl_attempted == 120);
        assert!(
            rep.trawl_completed > 0,
            "small fixture tasks should finish in time"
        );
        let v = rep.value();
        let rel = (v - truth).abs() / truth;
        assert!(rel < 0.5, "pipeline estimate {v} vs truth {truth}");
        assert!(rep.total_wall_ms >= rep.gpu_wall_ms * 0.5);
    }

    #[test]
    fn coprocessing_profile_records_batch_phases() {
        let (cg, q) = five_cycle_fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2, 3, 4]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let engine = EngineConfig {
            device: small_device(),
            profile: true,
            ..EngineConfig::gsword(3_000)
        };
        let trawl = TrawlConfig {
            batches: 3,
            cpu_threads: 1,
            per_batch: 10,
            ..TrawlConfig::default()
        };
        let rep = run_coprocessing(&ctx, &Alley, &engine, &trawl);
        let prof = rep.prof.expect("profiled run attaches a report");
        prof.validate().expect("pipeline profile is well-formed");
        let phases: Vec<&str> = prof
            .spans
            .iter()
            .filter(|s| s.kind == SpanKind::Phase)
            .map(|s| s.name.as_str())
            .collect();
        for b in 0..3 {
            let name = format!("batch {b}");
            assert!(
                phases.contains(&name.as_str()),
                "missing {name}: {phases:?}"
            );
        }
        assert!(
            prof.spans.iter().any(|s| s.kind == SpanKind::Launch),
            "batches must produce launch spans"
        );
        assert_eq!(prof.kernels.len(), 1, "one kernel row across batches");
        assert_eq!(prof.kernels[0].launches, 3);
    }

    #[test]
    fn coprocessing_single_batch_still_works() {
        let (cg, q) = five_cycle_fixture();
        let order = MatchingOrder::new(&q, vec![0, 1, 2, 3, 4]).unwrap();
        let ctx = QueryCtx::new(&cg, &order);
        let engine = EngineConfig {
            device: small_device(),
            ..EngineConfig::gsword(2_000)
        };
        let trawl = TrawlConfig {
            batches: 1,
            cpu_threads: 1,
            per_batch: 10,
            ..TrawlConfig::default()
        };
        let rep = run_coprocessing(&ctx, &Alley, &engine, &trawl);
        assert_eq!(rep.trawl_attempted, 10);
        assert_eq!(rep.sampler.samples, 2_000);
    }
}
