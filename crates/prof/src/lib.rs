//! An Nsight-style compute profiler for the software SIMT device.
//!
//! Real CUDA ships Nsight Systems (timelines) and Nsight Compute
//! (per-kernel metrics); the runtime in `gsword-simt` has the same
//! observability gap this pair closes on hardware. Until now the workspace
//! aggregated every counter into a single modeled-time number — there was
//! no way to see *where* a launch spends its budget, per stream or per
//! phase. This crate is the measurement layer:
//!
//! * **timeline** — every launch, event wait, and pipeline phase becomes a
//!   [`Span`] on a [`Track`] (one per device×stream, plus a host track),
//!   exportable as Chrome `chrome://tracing` JSON ([`ProfReport::to_chrome_trace`]).
//! * **metrics** — per-kernel rows ([`KernelMetrics`]): occupancy,
//!   divergence replay share, coalescing efficiency (transactions per
//!   request), modeled vs measured wall-clock, and the inherited-vs-fetched
//!   sample ratio of the RSV optimizations.
//! * **boards** — per-(device, stream) counter totals mirrored off the
//!   runtime's charge path, so coalescing quality is attributable to the
//!   stream that produced the traffic.
//!
//! The handle follows the sanitizer's zero-cost idiom: [`Profiler`] is an
//! `Option<Arc<..>>` and every hook starts with an inlined `None` check, so
//! instrumented code pays one branch per hook when profiling is off. This
//! crate sits *below* `gsword-simt` (like `gsword-sanitizer`), so it speaks
//! [`CounterSnapshot`] — a plain mirror of the simulator's kernel counters —
//! rather than the simulator's own types.

pub mod json;
pub mod trace;

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// Maximum spans kept with full detail; past the cap only the total keeps
/// counting (`ProfReport::spans_dropped`). Long adaptive loops stay bounded.
pub const SPAN_CAP: usize = 1 << 16;

/// What a timeline span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A kernel (or raw job) executing on a stream.
    Launch,
    /// The host blocking on a completion event.
    EventWait,
    /// A pipeline phase (batch windows, grace windows, …).
    Phase,
}

impl SpanKind {
    /// Chrome-trace category string.
    pub fn category(&self) -> &'static str {
        match self {
            SpanKind::Launch => "launch",
            SpanKind::EventWait => "wait",
            SpanKind::Phase => "phase",
        }
    }
}

/// The timeline row a span lands on: one per device×stream, plus a host
/// row for waits and pipeline phases (which would otherwise overlap the
/// serialized launch spans of a stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Stream `stream` of device `device`.
    Stream { device: u32, stream: u32 },
    /// Intra-kernel sim worker `worker` driving blocks of one launch on
    /// `stream` of `device`. Worker rows are observability only: device
    /// makespans are still derived from the stream tracks (the stream's
    /// launch span already covers its workers), but worker spans obey the
    /// same non-overlap invariant — launches on a stream are serialized
    /// and a worker slot runs on one host thread per launch.
    Worker {
        device: u32,
        stream: u32,
        worker: u32,
    },
    /// The host-side row.
    Host,
}

/// One closed interval on the timeline, in microseconds since the
/// profiler was attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub track: Track,
    pub kind: SpanKind,
    pub name: String,
    pub start_us: u64,
    pub end_us: u64,
}

impl Span {
    fn sort_key(&self) -> (Track, u64, u64, SpanKind, String) {
        (
            self.track,
            self.start_us,
            self.end_us,
            self.kind,
            self.name.clone(),
        )
    }
}

/// A plain mirror of the simulator's `KernelCounters` scalars — the inputs
/// every profiler metric derives from. (`gsword-simt` converts; this crate
/// sits below it and cannot import the original.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Warp-level ALU/control instructions issued.
    pub alu_instructions: u64,
    /// Warp-level memory instructions issued (the "requests").
    pub mem_instructions: u64,
    /// 128-byte line transactions the requests generated.
    pub mem_transactions: u64,
    /// Lane-level useful operations (active lanes summed over instructions).
    pub active_lane_ops: u64,
    /// Lane slots issued (32 × instructions).
    pub issued_lane_slots: u64,
    /// Extra serialized passes caused by intra-warp branch divergence.
    pub divergent_replays: u64,
    /// Active lanes summed over memory instructions only.
    pub mem_active_lanes: u64,
}

impl CounterSnapshot {
    /// Sum another snapshot into this one.
    pub fn merge(&mut self, other: &CounterSnapshot) {
        self.alu_instructions += other.alu_instructions;
        self.mem_instructions += other.mem_instructions;
        self.mem_transactions += other.mem_transactions;
        self.active_lane_ops += other.active_lane_ops;
        self.issued_lane_slots += other.issued_lane_slots;
        self.divergent_replays += other.divergent_replays;
        self.mem_active_lanes += other.mem_active_lanes;
    }

    /// Achieved occupancy: fraction of issued lane slots doing useful work
    /// (Nsight's "warp execution efficiency"); 1.0 for an empty snapshot.
    pub fn occupancy(&self) -> f64 {
        if self.issued_lane_slots == 0 {
            return 1.0;
        }
        self.active_lane_ops as f64 / self.issued_lane_slots as f64
    }

    /// Share of issue slots consumed by divergence replays, in [0, 1].
    pub fn divergence_replay_share(&self) -> f64 {
        let issued = self.alu_instructions + self.mem_instructions + self.divergent_replays;
        if issued == 0 {
            return 0.0;
        }
        self.divergent_replays as f64 / issued as f64
    }

    /// Coalescing efficiency as transactions per memory request — 1.0 is
    /// perfectly coalesced, 32.0 fully scattered; 0.0 with no requests.
    pub fn tx_per_request(&self) -> f64 {
        if self.mem_instructions == 0 {
            return 0.0;
        }
        self.mem_transactions as f64 / self.mem_instructions as f64
    }

    /// DRAM bytes moved per useful 4-byte word delivered to a lane (4.0 is
    /// perfect, 128.0 fully scattered); 0.0 with no memory traffic.
    pub fn bytes_per_useful_word(&self) -> f64 {
        if self.mem_active_lanes == 0 {
            return 0.0;
        }
        self.mem_transactions as f64 * 128.0 / self.mem_active_lanes as f64
    }
}

/// One row of the per-kernel metrics table, merged over every launch of
/// the kernel on the profiled runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMetrics {
    /// Kernel name, as the engine attributes it.
    pub kernel: String,
    /// Launches merged into this row.
    pub launches: u64,
    /// Merged execution counters.
    pub counters: CounterSnapshot,
    /// Summed modeled device milliseconds.
    pub modeled_ms: f64,
    /// Summed measured host wall-clock milliseconds.
    pub wall_ms: f64,
    /// Samples fetched from pools / static quotas.
    pub samples_fetched: u64,
    /// Samples started as inherited continuations (Algorithm 2).
    pub samples_inherited: u64,
}

impl KernelMetrics {
    fn new(kernel: &str) -> Self {
        KernelMetrics {
            kernel: kernel.to_string(),
            launches: 0,
            counters: CounterSnapshot::default(),
            modeled_ms: 0.0,
            wall_ms: 0.0,
            samples_fetched: 0,
            samples_inherited: 0,
        }
    }

    /// Fold another row of the same kernel into this one.
    pub fn merge(&mut self, other: &KernelMetrics) {
        self.launches += other.launches;
        self.counters.merge(&other.counters);
        self.modeled_ms += other.modeled_ms;
        self.wall_ms += other.wall_ms;
        self.samples_fetched += other.samples_fetched;
        self.samples_inherited += other.samples_inherited;
    }

    /// Inherited share of collected samples, in [0, 1] (the RSV
    /// inheritance ratio); 0.0 when nothing was collected.
    pub fn inherited_ratio(&self) -> f64 {
        let total = self.samples_fetched + self.samples_inherited;
        if total == 0 {
            return 0.0;
        }
        self.samples_inherited as f64 / total as f64
    }

    /// Modeled-over-measured time ratio (how much faster the modeled
    /// device is than the functional simulation); 0.0 without wall time.
    pub fn modeled_over_wall(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.modeled_ms / self.wall_ms
    }
}

/// Counter totals one stream charged, attributable thanks to the
/// runtime's per-(device, stream) board.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCounters {
    pub device: u32,
    pub stream: u32,
    pub counters: CounterSnapshot,
}

/// The assembled profile of one runtime: a deterministic-ordered timeline
/// plus the metrics tables. Plain data — construct literally in tests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfReport {
    /// Devices of the profiled runtime.
    pub num_devices: u32,
    /// Streams per device of the profiled runtime.
    pub streams_per_device: u32,
    /// Timeline spans, sorted by (track, start, end, kind, name).
    pub spans: Vec<Span>,
    /// Spans dropped past [`SPAN_CAP`].
    pub spans_dropped: u64,
    /// Per-kernel metric rows, sorted by kernel name.
    pub kernels: Vec<KernelMetrics>,
    /// Per-stream counter totals, sorted by (device, stream).
    pub streams: Vec<StreamCounters>,
    /// Incrementally tracked makespan per device (µs): the end of the last
    /// span each device's streams recorded. [`ProfReport::validate`]
    /// cross-checks this bookkeeping against the span data.
    pub device_makespan_us: Vec<u64>,
}

impl ProfReport {
    /// Max span end over one device's stream tracks, recomputed from the
    /// span data (0 for a device with no spans).
    pub fn makespan_from_spans_us(&self, device: u32) -> u64 {
        self.spans
            .iter()
            .filter(|s| matches!(s.track, Track::Stream { device: d, .. } if d == device))
            .map(|s| s.end_us)
            .max()
            .unwrap_or(0)
    }

    /// Check the structural invariants every profile must satisfy:
    /// every span has `start ≤ end`; spans on one stream or worker track
    /// never overlap (stream jobs are serialized, and a worker slot runs
    /// on one host thread per launch); and the incrementally tracked
    /// per-device makespan equals the max span end of that device's
    /// streams. Returns the first violation as an error string.
    pub fn validate(&self) -> Result<(), String> {
        for s in &self.spans {
            if s.start_us > s.end_us {
                return Err(format!(
                    "span {:?} '{}' ends before it starts ({} > {})",
                    s.track, s.name, s.start_us, s.end_us
                ));
            }
        }
        let mut by_track: HashMap<Track, Vec<&Span>> = HashMap::new();
        for s in &self.spans {
            if matches!(s.track, Track::Stream { .. } | Track::Worker { .. }) {
                by_track.entry(s.track).or_default().push(s);
            }
        }
        // Sorted snapshot: which track's violation is reported first must
        // not depend on HashMap iteration order.
        let mut tracks: Vec<(Track, Vec<&Span>)> = by_track.into_iter().collect();
        tracks.sort_by_key(|(t, _)| *t);
        for (track, mut spans) in tracks {
            spans.sort_by_key(|s| (s.start_us, s.end_us));
            for w in spans.windows(2) {
                if w[1].start_us < w[0].end_us {
                    return Err(format!(
                        "overlapping spans on {track:?}: '{}' [{}, {}] vs '{}' [{}, {}]",
                        w[0].name,
                        w[0].start_us,
                        w[0].end_us,
                        w[1].name,
                        w[1].start_us,
                        w[1].end_us
                    ));
                }
            }
        }
        if self.spans_dropped == 0 {
            for d in 0..self.num_devices {
                let tracked = self
                    .device_makespan_us
                    .get(d as usize)
                    .copied()
                    .unwrap_or(0);
                let from_spans = self.makespan_from_spans_us(d);
                if tracked != from_spans {
                    return Err(format!(
                        "device {d} makespan bookkeeping ({tracked}µs) disagrees with \
                         span data ({from_spans}µs)"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Whole-run makespan: the max over devices (concurrent silicon).
    pub fn makespan_us(&self) -> u64 {
        self.device_makespan_us.iter().copied().max().unwrap_or(0)
    }

    /// Fold another runtime's profile into this one (multi-runtime runs
    /// merged by `EngineReport::merge_devices`). Spans re-sort; kernel
    /// rows merge by name; per-stream boards merge positionally.
    pub fn merge(&mut self, other: &ProfReport) {
        self.num_devices = self.num_devices.max(other.num_devices);
        self.streams_per_device = self.streams_per_device.max(other.streams_per_device);
        let room = SPAN_CAP.saturating_sub(self.spans.len());
        self.spans_dropped += other.spans_dropped + (other.spans.len().saturating_sub(room)) as u64;
        self.spans.extend(other.spans.iter().take(room).cloned());
        self.spans.sort_by_key(Span::sort_key);
        for k in &other.kernels {
            match self.kernels.iter_mut().find(|m| m.kernel == k.kernel) {
                Some(m) => m.merge(k),
                None => self.kernels.push(k.clone()),
            }
        }
        self.kernels.sort_by(|a, b| a.kernel.cmp(&b.kernel));
        for sc in &other.streams {
            match self
                .streams
                .iter_mut()
                .find(|m| m.device == sc.device && m.stream == sc.stream)
            {
                Some(m) => m.counters.merge(&sc.counters),
                None => self.streams.push(sc.clone()),
            }
        }
        self.streams.sort_by_key(|s| (s.device, s.stream));
        if self.device_makespan_us.len() < other.device_makespan_us.len() {
            self.device_makespan_us
                .resize(other.device_makespan_us.len(), 0);
        }
        for (mine, theirs) in self
            .device_makespan_us
            .iter_mut()
            .zip(&other.device_makespan_us)
        {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Export the timeline as Chrome `chrome://tracing` JSON (see
    /// [`trace::to_chrome_trace`]).
    pub fn to_chrome_trace(&self) -> String {
        trace::to_chrome_trace(self)
    }
}

impl fmt::Display for ProfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "profile: {} device(s) × {} stream(s), makespan {:.3} ms, {} span(s){}",
            self.num_devices,
            self.streams_per_device,
            self.makespan_us() as f64 / 1e3,
            self.spans.len(),
            if self.spans_dropped > 0 {
                format!(" (+{} dropped)", self.spans_dropped)
            } else {
                String::new()
            }
        )?;
        if !self.kernels.is_empty() {
            writeln!(
                f,
                "  {:<32} {:>8} {:>7} {:>7} {:>7} {:>8} {:>11} {:>9}",
                "kernel",
                "launches",
                "occup%",
                "diverg%",
                "tx/req",
                "inherit%",
                "modeled ms",
                "wall ms"
            )?;
            for k in &self.kernels {
                writeln!(
                    f,
                    "  {:<32} {:>8} {:>7.1} {:>7.1} {:>7.2} {:>8.1} {:>11.3} {:>9.1}",
                    k.kernel,
                    k.launches,
                    k.counters.occupancy() * 100.0,
                    k.counters.divergence_replay_share() * 100.0,
                    k.counters.tx_per_request(),
                    k.inherited_ratio() * 100.0,
                    k.modeled_ms,
                    k.wall_ms,
                )?;
            }
        }
        if !self.streams.is_empty() {
            write!(f, "  per-stream coalescing (tx/req):")?;
            for s in &self.streams {
                write!(
                    f,
                    " d{}.s{} {:.2}",
                    s.device,
                    s.stream,
                    s.counters.tx_per_request()
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[derive(Debug)]
struct Inner {
    t0: Instant,
    num_devices: u32,
    streams_per_device: u32,
    spans: Mutex<Vec<Span>>,
    spans_dropped: Mutex<u64>,
    track_end: Mutex<HashMap<Track, u64>>,
    kernels: Mutex<HashMap<String, KernelMetrics>>,
    streams: Mutex<HashMap<(u32, u32), CounterSnapshot>>,
}

/// The profiler handle threaded through the runtime. Cloning is cheap
/// (`Arc`); the disabled handle is a `None` and every hook is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<Inner>>,
}

impl Profiler {
    /// Attach a profiler to a runtime of `num_devices` × `streams_per_device`.
    pub fn new(num_devices: usize, streams_per_device: usize) -> Self {
        Profiler {
            inner: Some(Arc::new(Inner {
                t0: Instant::now(),
                num_devices: num_devices as u32,
                streams_per_device: streams_per_device as u32,
                spans: Mutex::new(Vec::new()),
                spans_dropped: Mutex::new(0),
                track_end: Mutex::new(HashMap::new()),
                kernels: Mutex::new(HashMap::new()),
                streams: Mutex::new(HashMap::new()),
            })),
        }
    }

    /// The disabled (zero-cost) handle — same as `Default`.
    pub fn off() -> Self {
        Profiler { inner: None }
    }

    /// Is profiling active?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since the profiler was attached (0 when disabled) —
    /// capture before the work a span should cover.
    #[inline]
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(i) => i.t0.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Close a span that started at `start_us` (from [`Profiler::now_us`])
    /// and ends now.
    #[inline]
    pub fn record_span(&self, track: Track, kind: SpanKind, name: &str, start_us: u64) {
        if self.inner.is_some() {
            let end = self.now_us();
            self.record_span_at(track, kind, name, start_us, end);
        }
    }

    /// Record a span with explicit endpoints (µs since attach).
    pub fn record_span_at(
        &self,
        track: Track,
        kind: SpanKind,
        name: &str,
        start_us: u64,
        end_us: u64,
    ) {
        let Some(inner) = &self.inner else { return };
        let end_us = end_us.max(start_us);
        {
            let mut track_end = inner.track_end.lock();
            let e = track_end.entry(track).or_insert(0);
            *e = (*e).max(end_us);
        }
        let mut spans = inner.spans.lock();
        if spans.len() < SPAN_CAP {
            spans.push(Span {
                track,
                kind,
                name: name.to_string(),
                start_us,
                end_us,
            });
        } else {
            *inner.spans_dropped.lock() += 1;
        }
    }

    /// Mirror of the runtime's counter-board charge path: counters one
    /// launch charged to `(device, stream)`.
    #[inline]
    pub fn on_charge(&self, device: usize, stream: usize, counters: &CounterSnapshot) {
        let Some(inner) = &self.inner else { return };
        inner
            .streams
            .lock()
            .entry((device as u32, stream as u32))
            .or_default()
            .merge(counters);
    }

    /// Account one completed kernel run into its metrics row.
    pub fn on_kernel(
        &self,
        kernel: &str,
        counters: &CounterSnapshot,
        modeled_ms: f64,
        wall_ms: f64,
        samples_fetched: u64,
        samples_inherited: u64,
    ) {
        let Some(inner) = &self.inner else { return };
        let mut kernels = inner.kernels.lock();
        let row = kernels
            .entry(kernel.to_string())
            .or_insert_with(|| KernelMetrics::new(kernel));
        row.launches += 1;
        row.counters.merge(counters);
        row.modeled_ms += modeled_ms;
        row.wall_ms += wall_ms;
        row.samples_fetched += samples_fetched;
        row.samples_inherited += samples_inherited;
    }

    /// Assemble the profile collected so far. Everything is sorted into a
    /// deterministic order regardless of host-thread interleaving.
    pub fn report(&self) -> ProfReport {
        let Some(inner) = &self.inner else {
            return ProfReport::default();
        };
        let mut spans = inner.spans.lock().clone();
        spans.sort_by_key(Span::sort_key);
        let mut kernels: Vec<KernelMetrics> = inner.kernels.lock().values().cloned().collect();
        kernels.sort_by(|a, b| a.kernel.cmp(&b.kernel));
        let mut streams: Vec<StreamCounters> = inner
            .streams
            .lock()
            .iter()
            .map(|(&(device, stream), &counters)| StreamCounters {
                device,
                stream,
                counters,
            })
            .collect();
        streams.sort_by_key(|s| (s.device, s.stream));
        let track_end = inner.track_end.lock();
        let device_makespan_us = (0..inner.num_devices)
            .map(|d| {
                (0..inner.streams_per_device)
                    .filter_map(|s| {
                        track_end
                            .get(&Track::Stream {
                                device: d,
                                stream: s,
                            })
                            .copied()
                    })
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        ProfReport {
            num_devices: inner.num_devices,
            streams_per_device: inner.streams_per_device,
            spans,
            spans_dropped: *inner.spans_dropped.lock(),
            kernels,
            streams,
            device_makespan_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(device: u32, stream: u32) -> Track {
        Track::Stream { device, stream }
    }

    #[test]
    fn disabled_handle_is_silent() {
        let p = Profiler::off();
        assert!(!p.enabled());
        assert_eq!(p.now_us(), 0);
        p.record_span(stream(0, 0), SpanKind::Launch, "k", 0);
        p.on_charge(0, 0, &CounterSnapshot::default());
        p.on_kernel("k", &CounterSnapshot::default(), 1.0, 2.0, 3, 4);
        let r = p.report();
        assert!(r.spans.is_empty() && r.kernels.is_empty() && r.streams.is_empty());
    }

    #[test]
    fn spans_sort_deterministically() {
        let p = Profiler::new(2, 2);
        p.record_span_at(stream(1, 0), SpanKind::Launch, "b", 10, 20);
        p.record_span_at(stream(0, 1), SpanKind::Launch, "a", 5, 9);
        p.record_span_at(stream(0, 1), SpanKind::Launch, "c", 0, 4);
        let r = p.report();
        let names: Vec<&str> = r.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
        assert!(r.validate().is_ok());
        assert_eq!(r.device_makespan_us, vec![9, 20]);
        assert_eq!(r.makespan_us(), 20);
    }

    #[test]
    fn validate_flags_inverted_and_overlapping_spans() {
        let mut r = ProfReport {
            num_devices: 1,
            streams_per_device: 1,
            device_makespan_us: vec![20],
            ..ProfReport::default()
        };
        r.spans.push(Span {
            track: stream(0, 0),
            kind: SpanKind::Launch,
            name: "x".into(),
            start_us: 30,
            end_us: 10,
        });
        assert!(r.validate().unwrap_err().contains("ends before"));
        r.spans[0] = Span {
            track: stream(0, 0),
            kind: SpanKind::Launch,
            name: "x".into(),
            start_us: 0,
            end_us: 20,
        };
        r.spans.push(Span {
            track: stream(0, 0),
            kind: SpanKind::Launch,
            name: "y".into(),
            start_us: 10,
            end_us: 15,
        });
        assert!(r.validate().unwrap_err().contains("overlapping"));
    }

    #[test]
    fn worker_tracks_validate_like_streams_but_skip_makespan() {
        let worker = |w: u32| Track::Worker {
            device: 0,
            stream: 0,
            worker: w,
        };
        let mut r = ProfReport {
            num_devices: 1,
            streams_per_device: 1,
            spans: vec![
                Span {
                    track: stream(0, 0),
                    kind: SpanKind::Launch,
                    name: "k".into(),
                    start_us: 0,
                    end_us: 40,
                },
                // Concurrent workers on *different* worker tracks are fine.
                Span {
                    track: worker(0),
                    kind: SpanKind::Launch,
                    name: "k".into(),
                    start_us: 0,
                    end_us: 30,
                },
                Span {
                    track: worker(1),
                    kind: SpanKind::Launch,
                    name: "k".into(),
                    start_us: 5,
                    end_us: 35,
                },
            ],
            // Makespan derives from the stream track only.
            device_makespan_us: vec![40],
            ..ProfReport::default()
        };
        assert!(r.validate().is_ok());
        assert_eq!(r.makespan_from_spans_us(0), 40);
        // Overlap on a single worker track is a violation.
        r.spans.push(Span {
            track: worker(1),
            kind: SpanKind::Launch,
            name: "k2".into(),
            start_us: 20,
            end_us: 50,
        });
        assert!(r.validate().unwrap_err().contains("overlapping"));
    }

    #[test]
    fn validate_flags_makespan_drift() {
        let r = ProfReport {
            num_devices: 1,
            streams_per_device: 1,
            spans: vec![Span {
                track: stream(0, 0),
                kind: SpanKind::Launch,
                name: "k".into(),
                start_us: 0,
                end_us: 50,
            }],
            device_makespan_us: vec![40],
            ..ProfReport::default()
        };
        assert!(r.validate().unwrap_err().contains("makespan"));
    }

    #[test]
    fn host_spans_may_overlap() {
        let p = Profiler::new(1, 1);
        p.record_span_at(Track::Host, SpanKind::Phase, "batch 0", 0, 100);
        p.record_span_at(Track::Host, SpanKind::EventWait, "wait", 10, 90);
        assert!(p.report().validate().is_ok());
    }

    #[test]
    fn kernel_rows_merge_by_name() {
        let p = Profiler::new(1, 1);
        let c = CounterSnapshot {
            alu_instructions: 10,
            active_lane_ops: 160,
            issued_lane_slots: 320,
            ..CounterSnapshot::default()
        };
        p.on_kernel("rsv", &c, 1.0, 4.0, 100, 20);
        p.on_kernel("rsv", &c, 2.0, 4.0, 100, 60);
        p.on_kernel("base", &c, 5.0, 5.0, 10, 0);
        let r = p.report();
        assert_eq!(r.kernels.len(), 2);
        assert_eq!(r.kernels[0].kernel, "base");
        let rsv = &r.kernels[1];
        assert_eq!(rsv.launches, 2);
        assert_eq!(rsv.counters.alu_instructions, 20);
        assert!((rsv.modeled_ms - 3.0).abs() < 1e-12);
        assert!((rsv.inherited_ratio() - 80.0 / 280.0).abs() < 1e-12);
        assert!((rsv.counters.occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stream_boards_accumulate_per_slot() {
        let p = Profiler::new(2, 2);
        let c = CounterSnapshot {
            mem_instructions: 2,
            mem_transactions: 10,
            ..CounterSnapshot::default()
        };
        p.on_charge(1, 0, &c);
        p.on_charge(1, 0, &c);
        p.on_charge(0, 1, &c);
        let r = p.report();
        assert_eq!(r.streams.len(), 2);
        assert_eq!((r.streams[0].device, r.streams[0].stream), (0, 1));
        assert_eq!(r.streams[1].counters.mem_transactions, 20);
        assert!((r.streams[0].counters.tx_per_request() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_metrics_handle_empty_inputs() {
        let c = CounterSnapshot::default();
        assert_eq!(c.occupancy(), 1.0);
        assert_eq!(c.divergence_replay_share(), 0.0);
        assert_eq!(c.tx_per_request(), 0.0);
        assert_eq!(c.bytes_per_useful_word(), 0.0);
    }

    #[test]
    fn span_cap_counts_drops() {
        let p = Profiler::new(1, 1);
        for i in 0..(SPAN_CAP + 5) as u64 {
            p.record_span_at(stream(0, 0), SpanKind::Launch, "k", i * 2, i * 2 + 1);
        }
        let r = p.report();
        assert_eq!(r.spans.len(), SPAN_CAP);
        assert_eq!(r.spans_dropped, 5);
    }

    #[test]
    fn reports_merge() {
        let p = Profiler::new(1, 1);
        p.record_span_at(stream(0, 0), SpanKind::Launch, "k", 0, 10);
        p.on_kernel("k", &CounterSnapshot::default(), 1.0, 1.0, 5, 0);
        let mut a = p.report();
        let q = Profiler::new(2, 1);
        q.record_span_at(stream(1, 0), SpanKind::Launch, "k", 0, 30);
        q.on_kernel("k", &CounterSnapshot::default(), 2.0, 1.0, 5, 5);
        a.merge(&q.report());
        assert_eq!(a.num_devices, 2);
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.kernels.len(), 1);
        assert_eq!(a.kernels[0].launches, 2);
        assert_eq!(a.device_makespan_us, vec![10, 30]);
        assert!(a.validate().is_ok());
    }

    #[test]
    fn display_renders_table() {
        let p = Profiler::new(1, 2);
        let c = CounterSnapshot {
            mem_instructions: 4,
            mem_transactions: 12,
            issued_lane_slots: 128,
            active_lane_ops: 96,
            ..CounterSnapshot::default()
        };
        p.on_kernel("rsv_sample-sync", &c, 0.5, 1.0, 900, 100);
        p.on_charge(0, 0, &c);
        p.record_span_at(stream(0, 0), SpanKind::Launch, "rsv_sample-sync", 0, 1500);
        let text = format!("{}", p.report());
        assert!(text.contains("rsv_sample-sync"), "{text}");
        assert!(text.contains("tx/req"), "{text}");
        assert!(text.contains("d0.s0 3.00"), "{text}");
        assert!(text.contains("makespan 1.500 ms"), "{text}");
    }
}
