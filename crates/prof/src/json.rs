//! A minimal JSON reader, enough to validate Chrome traces.
//!
//! The workspace builds offline with no serde, but the `--trace-out`
//! export and the CI smoke step both need an independent check that the
//! emitted file is real JSON with the trace-event shape — a validator
//! that shares the writer's string-assembly code would rubber-stamp its
//! own bugs. This parser accepts standard JSON (objects, arrays, strings
//! with escapes, numbers, booleans, null) and rejects everything else
//! with a byte offset.

/// A parsed JSON value. Object keys keep their textual order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key of an object (first occurrence).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so it is valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("bad number"))
    }
}

/// Parse a JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(value)
}

/// What a structurally valid Chrome trace contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Complete (`"ph": "X"`) span events.
    pub complete_events: usize,
    /// Tracks declared via `thread_name` metadata whose name starts with
    /// "stream" — one per device×stream in our exports.
    pub stream_tracks: usize,
    /// Whether a host track was declared.
    pub host_track: bool,
}

/// Parse `input` as Chrome trace-event JSON and check the structural
/// contract our exporter promises: a `traceEvents` array whose entries
/// are objects carrying string `name`/`ph` and numeric `pid`/`tid`, with
/// `ts`/`dur` on every complete event.
pub fn validate_chrome_trace(input: &str) -> Result<TraceSummary, String> {
    let root = parse(input)?;
    let events = root
        .get("traceEvents")
        .ok_or("missing \"traceEvents\" key")?
        .as_array()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut summary = TraceSummary {
        events: events.len(),
        complete_events: 0,
        stream_tracks: 0,
        host_track: false,
    };
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string \"name\""))?;
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string \"ph\""))?;
        for key in ["pid", "tid"] {
            ev.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("event {i}: missing numeric \"{key}\""))?;
        }
        match ph {
            "X" => {
                summary.complete_events += 1;
                for key in ["ts", "dur"] {
                    let v = ev
                        .get(key)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| format!("event {i}: missing numeric \"{key}\""))?;
                    if v < 0.0 {
                        return Err(format!("event {i}: negative \"{key}\""));
                    }
                }
            }
            "M" if name == "thread_name" => {
                let track = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("event {i}: thread_name without args.name"))?;
                if track.starts_with("stream") {
                    summary.stream_tracks += 1;
                } else if track == "host" {
                    summary.host_track = true;
                }
            }
            _ => {}
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5, 3e2, "x\n\"yA", true, false, null], "b": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(300.0));
        assert_eq!(a[3].as_str(), Some("x\n\"yA"));
        assert_eq!(a[4], JsonValue::Bool(true));
        assert_eq!(a[6], JsonValue::Null);
        assert_eq!(v.get("b"), Some(&JsonValue::Object(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn validator_accepts_a_minimal_trace() {
        let json = r#"{"traceEvents": [
            {"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"stream 0"}},
            {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"host"}},
            {"name":"k","cat":"launch","ph":"X","ts":0,"dur":5,"pid":0,"tid":0}
        ]}"#;
        let s = validate_chrome_trace(json).unwrap();
        assert_eq!(s.events, 3);
        assert_eq!(s.complete_events, 1);
        assert_eq!(s.stream_tracks, 1);
        assert!(s.host_track);
    }

    #[test]
    fn validator_rejects_structural_violations() {
        assert!(validate_chrome_trace("{}")
            .unwrap_err()
            .contains("traceEvents"));
        assert!(validate_chrome_trace(r#"{"traceEvents": [{"ph":"X"}]}"#).is_err());
        let negative = r#"{"traceEvents": [
            {"name":"k","ph":"X","ts":-1,"dur":5,"pid":0,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(negative)
            .unwrap_err()
            .contains("negative"));
    }
}
