//! Chrome `chrome://tracing` / Perfetto export.
//!
//! The trace-event JSON format maps cleanly onto the profiler's model:
//! each device becomes a *process* (`pid`), each of its streams a
//! *thread* (`tid`), and the host row one extra process behind the
//! devices. Metadata (`"ph": "M"`) events name every device×stream track
//! up front — even streams that never ran a span — so the track layout in
//! the viewer always reflects the runtime topology. Spans export as
//! complete (`"ph": "X"`) events with microsecond `ts`/`dur`, which both
//! `chrome://tracing` and Perfetto load directly.
//!
//! The output is hand-assembled (the workspace builds offline, no serde)
//! and byte-deterministic for a given [`ProfReport`]: metadata in
//! (pid, tid) order, then spans in the report's sorted order.

use std::collections::BTreeSet;

use crate::{ProfReport, Track};

/// `pid` assigned to the host track: one past the last device.
pub fn host_pid(report: &ProfReport) -> u32 {
    report.num_devices
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_metadata(out: &mut String, kind: &str, pid: u32, tid: u32, name: &str) {
    out.push_str(&format!(
        "    {{\"name\":\"{kind}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
    ));
    push_escaped(out, name);
    out.push_str("\"}}");
}

/// Render `report` as a Chrome trace-event JSON document.
pub fn to_chrome_trace(report: &ProfReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };
    // Worker rows exist only for launches that actually fanned out, so
    // (unlike the fixed device×stream grid) they are declared lazily from
    // the spans present in the report.
    let mut worker_rows: BTreeSet<(u32, u32, u32)> = BTreeSet::new();
    for span in &report.spans {
        if let Track::Worker {
            device,
            stream,
            worker,
        } = span.track
        {
            worker_rows.insert((device, stream, worker));
        }
    }
    let worker_tid = |stream: u32, worker: u32| report.streams_per_device * (worker + 1) + stream;
    for device in 0..report.num_devices {
        sep(&mut out);
        push_metadata(
            &mut out,
            "process_name",
            device,
            0,
            &format!("device {device}"),
        );
        for stream in 0..report.streams_per_device {
            sep(&mut out);
            push_metadata(
                &mut out,
                "thread_name",
                device,
                stream,
                &format!("stream {stream}"),
            );
        }
        for &(d, stream, worker) in &worker_rows {
            if d != device {
                continue;
            }
            sep(&mut out);
            push_metadata(
                &mut out,
                "thread_name",
                device,
                worker_tid(stream, worker),
                &format!("s{stream} sim-worker {worker}"),
            );
        }
    }
    let host = host_pid(report);
    sep(&mut out);
    push_metadata(&mut out, "process_name", host, 0, "host");
    sep(&mut out);
    push_metadata(&mut out, "thread_name", host, 0, "host");
    for span in &report.spans {
        let (pid, tid) = match span.track {
            Track::Stream { device, stream } => (device, stream),
            Track::Worker {
                device,
                stream,
                worker,
            } => (device, worker_tid(stream, worker)),
            Track::Host => (host, 0),
        };
        sep(&mut out);
        out.push_str("    {\"name\":\"");
        push_escaped(&mut out, &span.name);
        out.push_str(&format!(
            "\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid}}}",
            span.kind.category(),
            span.start_us,
            span.end_us - span.start_us,
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Profiler, Span, SpanKind};

    #[test]
    fn empty_report_still_declares_every_track() {
        let report = ProfReport {
            num_devices: 2,
            streams_per_device: 2,
            device_makespan_us: vec![0, 0],
            ..ProfReport::default()
        };
        let json = to_chrome_trace(&report);
        assert_eq!(json.matches("\"thread_name\"").count(), 5);
        assert_eq!(json.matches("\"process_name\"").count(), 3);
        assert!(json.contains("\"name\":\"device 1\""));
        assert!(json.contains("\"name\":\"host\""));
        assert!(!json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn spans_become_complete_events() {
        let p = Profiler::new(1, 1);
        p.record_span_at(
            Track::Stream {
                device: 0,
                stream: 0,
            },
            SpanKind::Launch,
            "rsv",
            10,
            35,
        );
        p.record_span_at(Track::Host, SpanKind::EventWait, "wait rsv", 12, 40);
        let json = p.report().to_chrome_trace();
        assert!(json.contains(
            "{\"name\":\"rsv\",\"cat\":\"launch\",\"ph\":\"X\",\"ts\":10,\"dur\":25,\"pid\":0,\"tid\":0}"
        ));
        assert!(json.contains(
            "{\"name\":\"wait rsv\",\"cat\":\"wait\",\"ph\":\"X\",\"ts\":12,\"dur\":28,\"pid\":1,\"tid\":0}"
        ));
    }

    #[test]
    fn worker_spans_get_their_own_lazily_declared_rows() {
        let p = Profiler::new(1, 2);
        p.record_span_at(
            Track::Stream {
                device: 0,
                stream: 1,
            },
            SpanKind::Launch,
            "k",
            0,
            50,
        );
        p.record_span_at(
            Track::Worker {
                device: 0,
                stream: 1,
                worker: 0,
            },
            SpanKind::Launch,
            "k",
            0,
            40,
        );
        p.record_span_at(
            Track::Worker {
                device: 0,
                stream: 1,
                worker: 1,
            },
            SpanKind::Launch,
            "k",
            2,
            45,
        );
        let json = p.report().to_chrome_trace();
        assert!(json.contains("\"name\":\"s1 sim-worker 0\""));
        assert!(json.contains("\"name\":\"s1 sim-worker 1\""));
        // tid = streams_per_device * (worker + 1) + stream keeps worker
        // rows clear of the stream rows: stream 1 → tid 1, workers → 3, 5.
        assert!(json.contains("\"ts\":0,\"dur\":40,\"pid\":0,\"tid\":3"));
        assert!(json.contains("\"ts\":2,\"dur\":43,\"pid\":0,\"tid\":5"));
        let summary = crate::json::validate_chrome_trace(&json).expect("worker export must parse");
        assert_eq!(summary.stream_tracks, 2);
        assert_eq!(summary.complete_events, 3);
    }

    #[test]
    fn names_are_json_escaped() {
        let report = ProfReport {
            num_devices: 1,
            streams_per_device: 1,
            spans: vec![Span {
                track: Track::Host,
                kind: SpanKind::Phase,
                name: "a\"b\\c\nd".into(),
                start_us: 0,
                end_us: 1,
            }],
            device_makespan_us: vec![0],
            ..ProfReport::default()
        };
        let json = to_chrome_trace(&report);
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn export_round_trips_through_the_validator() {
        let p = Profiler::new(2, 2);
        for d in 0..2 {
            for s in 0..2 {
                p.record_span_at(
                    Track::Stream {
                        device: d,
                        stream: s,
                    },
                    SpanKind::Launch,
                    "k",
                    (d * 10 + s * 3) as u64,
                    (d * 10 + s * 3 + 2) as u64,
                );
            }
        }
        let summary = crate::json::validate_chrome_trace(&p.report().to_chrome_trace())
            .expect("export must parse");
        assert_eq!(summary.stream_tracks, 4);
        assert!(summary.host_track);
        assert_eq!(summary.complete_events, 4);
    }
}
