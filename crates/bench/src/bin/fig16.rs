//! Figure 16: component times of CPU–GPU co-processing — GPU sampling
//! alone, CPU enumeration alone, and the overlapped pipeline total.
//!
//! Expected shape: the pipeline total tracks the GPU sampling component;
//! the CPU enumeration cost is hidden by the overlap (and capped by the
//! batch timeout).

use gsword_bench::{banner, samples, Table, Workload};
use gsword_core::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    banner(
        "fig16",
        "co-processing component times (WordNet, 16-vertex queries)",
    );
    let w = Workload::load("wordnet");
    let queries = w.queries(16);
    let trawl_cfg = TrawlConfig {
        batches: 6,
        per_batch: 64,
        cpu_threads: gsword_bench::cpu_threads(),
        ..TrawlConfig::default()
    };
    let mut t = Table::new(&[
        "query",
        "GPU sampling (wall ms)",
        "CPU enum alone (wall ms)",
        "co-processing total (wall ms)",
    ]);
    for (qi, query) in queries.iter().enumerate() {
        let (cg, _) = build_candidate_graph(&w.data, query, &BuildConfig::default());
        let order = quicksi_order(query, &w.data);
        let ctx = QueryCtx::new(&cg, &order);

        // (a) GPU sampling alone.
        let engine = EngineConfig::gsword(samples()).with_seed(0xF16 + qi as u64);
        let gpu_only = run_engine(&ctx, &Alley, &engine);

        // (b) CPU enumeration alone: the same trawl workload, unpreempted.
        let dist = DepthDist::new(trawl_cfg.min_depth, ctx.len());
        let mut rng = SmallRng::seed_from_u64(trawl_cfg.seed);
        let t0 = Instant::now();
        let n_tasks = trawl_cfg.batches * trawl_cfg.per_batch;
        for _ in 0..n_tasks {
            gsword_core::pipeline::trawl_once(&ctx, &Alley, &dist, &mut rng);
        }
        let cpu_alone_ms = t0.elapsed().as_secs_f64() * 1e3;

        // (c) The overlapped pipeline.
        let pipe = run_coprocessing(&ctx, &Alley, &engine, &trawl_cfg);

        t.row(vec![
            format!("q{qi}"),
            format!("{:.0}", gpu_only.wall_ms),
            format!("{cpu_alone_ms:.0}"),
            format!("{:.0}", pipe.total_wall_ms),
        ]);
    }
    t.print();
    println!(
        "\nexpected: total ≈ GPU sampling component (enumeration hidden by overlap + timeout)"
    );
}
