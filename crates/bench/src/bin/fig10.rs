//! Figure 10: gSWORD's speedup over the GPU baselines as the query size
//! grows (4 → 8 → 16), for WanderJoin and Alley.
//!
//! Expected shape: speedups grow with query size (more iterations ⇒ more
//! validate/refine imbalance for the baseline to lose on), and Alley's
//! speedup exceeds WanderJoin's (it also benefits from warp streaming).

use gsword_bench::{banner, geomean, samples, Table, Workload, PAPER_SAMPLES};
use gsword_core::prelude::*;

fn speedup(w: &Workload, query: &QueryGraph, kind: EstimatorKind, seed: u64) -> f64 {
    let per_sample_ms = |backend| {
        let r = Gsword::builder(&w.data, query)
            .samples(samples())
            .estimator(kind)
            .backend(backend)
            .seed(seed)
            .run()
            .expect("device run");
        r.modeled_ms.unwrap() * PAPER_SAMPLES as f64 / r.samples_collected as f64
    };
    per_sample_ms(Backend::GpuBaseline) / per_sample_ms(Backend::Gsword)
}

fn main() {
    banner("fig10", "gSWORD speedup over GPU baseline vs query size");
    let mut t = Table::new(&[
        "dataset", "WJ k=4", "WJ k=8", "WJ k=16", "AL k=4", "AL k=8", "AL k=16",
    ]);
    let mut by_size: [Vec<f64>; 6] = Default::default();
    for name in gsword_bench::dataset_names() {
        let w = Workload::load(name);
        let mut cells = vec![name.to_string()];
        for (i, kind) in [EstimatorKind::WanderJoin, EstimatorKind::Alley]
            .into_iter()
            .enumerate()
        {
            for (j, k) in [4usize, 8, 16].into_iter().enumerate() {
                let queries = w.queries(k);
                let sp: Vec<f64> = queries
                    .iter()
                    .enumerate()
                    .map(|(qi, q)| speedup(&w, q, kind, 0xF10 + qi as u64))
                    .collect();
                let g = geomean(&sp);
                by_size[i * 3 + j].push(g);
                cells.push(if g.is_nan() {
                    "-".into()
                } else {
                    format!("{g:.1}x")
                });
            }
        }
        t.row(cells);
    }
    let mut cells = vec!["geomean".to_string()];
    for col in &by_size {
        cells.push(format!("{:.1}x", geomean(col)));
    }
    t.row(cells);
    t.print();
    println!("\nexpected: speedup grows with k; Alley > WanderJoin (paper Figure 10)");
}
