//! Appendix Figures 20–25: matching-order comparison — gSWORD runtime and
//! q-error under the QuickSI order vs the G-CARE order, for query sizes
//! 4, 8, and 16.
//!
//! Expected shape: the two orders are comparable in both runtime and
//! accuracy; QuickSI is slightly faster on large queries, G-CARE slightly
//! more accurate on small ones.

use gsword_bench::{banner, geomean, samples, Table, Workload, PAPER_SAMPLES};
use gsword_core::prelude::*;

fn main() {
    banner("fig20_25", "QuickSI vs G-CARE matching orders (gSWORD-AL)");
    let mut t = Table::new(&["dataset", "k", "QSI ms", "GC ms", "QSI q-err", "GC q-err"]);
    let mut time_ratio = Vec::new();
    for name in gsword_bench::dataset_names() {
        let w = Workload::load(name);
        for k in [4usize, 8, 16] {
            let queries = w.queries(k);
            let mut ms = [Vec::new(), Vec::new()];
            let mut qe = [Vec::new(), Vec::new()];
            for (qi, query) in queries.iter().enumerate() {
                let truth = w.truth(query, &format!("k{k}"));
                for (oi, order) in [OrderKind::QuickSi, OrderKind::GCare]
                    .into_iter()
                    .enumerate()
                {
                    let r = Gsword::builder(&w.data, query)
                        .samples(samples())
                        .estimator(EstimatorKind::Alley)
                        .order(order)
                        .seed(0xF20 + qi as u64)
                        .run()
                        .expect("run");
                    ms[oi].push(
                        r.modeled_ms.unwrap() * PAPER_SAMPLES as f64 / r.samples_collected as f64,
                    );
                    if let Some(truth) = truth {
                        qe[oi].push(r.q_error(truth));
                    }
                }
            }
            let (mq, mg) = (geomean(&ms[0]), geomean(&ms[1]));
            if mq.is_finite() && mg.is_finite() {
                time_ratio.push(mq / mg);
            }
            t.row(vec![
                name.to_string(),
                k.to_string(),
                format!("{mq:.1}"),
                format!("{mg:.1}"),
                if qe[0].is_empty() {
                    "-".into()
                } else {
                    format!("{:.1}", geomean(&qe[0]))
                },
                if qe[1].is_empty() {
                    "-".into()
                } else {
                    format!("{:.1}", geomean(&qe[1]))
                },
            ]);
        }
    }
    t.print();
    println!(
        "\nQuickSI/G-CARE runtime ratio (geomean): {:.2} (paper: ~0.93, i.e. QuickSI ~7% faster)",
        geomean(&time_ratio)
    );
}
