//! Appendix Figures 26–28: the value of the candidate graph — gSWORD
//! runtime (including construction and transfer) and accuracy under three
//! candidate configurations, for query sizes 4, 8, 16:
//!
//! * `data-graph` — label filter only (the stand-in for sampling directly
//!   on the data graph; the sample space and structure are largest),
//! * `candidate` — the paper's label+degree candidate graph,
//! * `pruned` — NLF + fixpoint pruning (an extension beyond the paper).
//!
//! Expected shape: the candidate graph is never slower than the data-graph
//! configuration once construction+transfer are included, and pruning
//! trades build time for accuracy per sample.

use gsword_bench::{banner, geomean, samples, Table, Workload, PAPER_SAMPLES};
use gsword_core::prelude::*;

struct Cell {
    total_ms: f64,
    q_err: Option<f64>,
}

fn run_cell(
    w: &Workload,
    query: &QueryGraph,
    cfg: BuildConfig,
    truth: Option<f64>,
    seed: u64,
) -> Cell {
    let r = Gsword::builder(&w.data, query)
        .samples(samples())
        .estimator(EstimatorKind::Alley)
        .candidate_config(cfg)
        .seed(seed)
        .run()
        .expect("run");
    let sample_ms = r.modeled_ms.unwrap() * PAPER_SAMPLES as f64 / r.samples_collected as f64;
    let stats = r.candidate_stats.expect("stats");
    Cell {
        total_ms: sample_ms + stats.construction_ms + stats.transfer_ms,
        q_err: truth.map(|t| r.q_error(t)),
    }
}

fn main() {
    banner(
        "fig26_28",
        "candidate-graph configurations: runtime (ms @ 1e6) and q-error, gSWORD-AL",
    );
    let configs = [
        ("data-graph", BuildConfig::unfiltered()),
        ("candidate", BuildConfig::default()),
        ("pruned", BuildConfig::strong()),
    ];
    let mut t = Table::new(&[
        "dataset", "k", "dg ms", "cg ms", "pr ms", "dg q", "cg q", "pr q",
    ]);
    let mut gains = Vec::new();
    for name in gsword_bench::dataset_names() {
        let w = Workload::load(name);
        for k in [4usize, 8, 16] {
            let queries = w.queries(k);
            if queries.is_empty() {
                continue;
            }
            let mut ms = [Vec::new(), Vec::new(), Vec::new()];
            let mut qe = [Vec::new(), Vec::new(), Vec::new()];
            for (qi, query) in queries.iter().enumerate() {
                let truth = w.truth(query, &format!("k{k}"));
                for (ci, (_, cfg)) in configs.iter().enumerate() {
                    let cell = run_cell(&w, query, *cfg, truth, 0xF26 + qi as u64);
                    ms[ci].push(cell.total_ms);
                    if let Some(q) = cell.q_err {
                        qe[ci].push(q);
                    }
                }
            }
            let g = [geomean(&ms[0]), geomean(&ms[1]), geomean(&ms[2])];
            if g[0].is_finite() && g[1].is_finite() {
                gains.push(g[0] / g[1]);
            }
            t.row(vec![
                name.to_string(),
                k.to_string(),
                format!("{:.1}", g[0]),
                format!("{:.1}", g[1]),
                format!("{:.1}", g[2]),
                if qe[0].is_empty() {
                    "-".into()
                } else {
                    format!("{:.1}", geomean(&qe[0]))
                },
                if qe[1].is_empty() {
                    "-".into()
                } else {
                    format!("{:.1}", geomean(&qe[1]))
                },
                if qe[2].is_empty() {
                    "-".into()
                } else {
                    format!("{:.1}", geomean(&qe[2]))
                },
            ]);
        }
    }
    t.print();
    println!(
        "\ncandidate graph over data-graph configuration: {:.2}x (paper reports up to 34x at full \
         scale, 1.5x on small graphs; at suite scale the structures converge — see EXPERIMENTS.md)",
        geomean(&gains)
    );
}
