//! Figure 13: q-error of the two RW estimators across datasets and query
//! sizes (signed: negative = underestimation).
//!
//! Expected shape: both accurate at k=4; WanderJoin degrades at k=8 and
//! collapses at k=16 while Alley stays stable — except on WordNet, where
//! both estimators underestimate catastrophically at k=16.

use gsword_bench::{banner, samples, Table, Workload};
use gsword_core::prelude::*;

fn main() {
    banner(
        "fig13",
        "signed q-error of WJ and Alley vs query size (median [max] over queries)",
    );
    let mut t = Table::new(&[
        "dataset",
        "k",
        "WJ median",
        "WJ max",
        "AL median",
        "AL max",
        "truth known",
    ]);
    for name in gsword_bench::dataset_names() {
        let w = Workload::load(name);
        for k in [4usize, 8, 16] {
            let queries = w.queries(k);
            let mut known = 0usize;
            let mut errs: [Vec<f64>; 2] = Default::default();
            for (qi, query) in queries.iter().enumerate() {
                let Some(truth) = w.truth(query, &format!("k{k}")) else {
                    continue;
                };
                known += 1;
                for (ei, kind) in [EstimatorKind::WanderJoin, EstimatorKind::Alley]
                    .into_iter()
                    .enumerate()
                {
                    let r = Gsword::builder(&w.data, query)
                        .samples(samples())
                        .estimator(kind)
                        .backend(Backend::GpuBaseline) // plain estimator accuracy
                        .seed(0xF13 + qi as u64)
                        .run()
                        .expect("run");
                    errs[ei].push(signed_q_error(r.estimate, truth));
                }
            }
            let fmt = |xs: &mut Vec<f64>| -> (String, String) {
                if xs.is_empty() {
                    return ("-".into(), "-".into());
                }
                xs.sort_by(|a, b| a.abs().partial_cmp(&b.abs()).unwrap());
                let med = xs[xs.len() / 2];
                let max = *xs.last().unwrap();
                (format!("{med:+.1}"), format!("{max:+.1}"))
            };
            let (wm, wx) = fmt(&mut errs[0]);
            let (am, ax) = fmt(&mut errs[1]);
            t.row(vec![
                name.to_string(),
                k.to_string(),
                wm,
                wx,
                am,
                ax,
                format!("{known}/{}", queries.len()),
            ]);
        }
    }
    t.print();
    println!("\nsign convention: + overestimate, - underestimate (paper plots these up/down)");
}
