//! Table 2: average running time per query (milliseconds, normalized to
//! the paper's 10⁶-sample budget) for the six compared methods on every
//! dataset, with standard deviations.
//!
//! CPU methods report measured wall time of the multi-threaded dynamic
//! scheduler; GPU methods report modeled device time from the SIMT
//! counters (see DESIGN.md §1 on the substitution).
//!
//! Expected shape: GPU baselines beat CPU by one to two orders of
//! magnitude; gSWORD beats the GPU baselines (≈9× average in the paper,
//! more for Alley than WanderJoin); CPU-AL slower than CPU-WJ.

use gsword_bench::{banner, cpu_threads, mean_std, samples, Table, Workload, PAPER_SAMPLES};
use gsword_core::prelude::*;

fn main() {
    banner("table02", "average runtime per query (ms @ 1e6 samples)");
    let threads = cpu_threads();
    let mut t = Table::new(&[
        "dataset",
        "CPU-WJ",
        "CPU-AL",
        "GPU-WJ",
        "GPU-AL",
        "gSWORD-WJ",
        "gSWORD-AL",
        "gsword/cpu",
        "gsword/gpu",
    ]);
    let mut cpu_speedups = Vec::new();
    let mut gpu_speedups = Vec::new();

    for name in gsword_bench::dataset_names() {
        let w = Workload::load(name);
        let queries = w.queries(16);
        if queries.is_empty() {
            continue;
        }
        // columns: (method, estimator, backend)
        let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 6];
        for (qi, query) in queries.iter().enumerate() {
            let seed = 0x7AB2 + qi as u64;
            for (slot, kind) in [(0, EstimatorKind::WanderJoin), (1, EstimatorKind::Alley)] {
                let r = Gsword::builder(&w.data, query)
                    .samples(samples())
                    .estimator(kind)
                    .backend(Backend::Cpu { threads })
                    .seed(seed)
                    .run()
                    .expect("cpu");
                cols[slot].push(r.wall_ms * PAPER_SAMPLES as f64 / r.sampler.samples as f64);
            }
            for (slot, backend) in [(2, Backend::GpuBaseline), (4, Backend::Gsword)] {
                for (off, kind) in [(0, EstimatorKind::WanderJoin), (1, EstimatorKind::Alley)] {
                    let r = Gsword::builder(&w.data, query)
                        .samples(samples())
                        .estimator(kind)
                        .backend(backend)
                        .seed(seed)
                        .run()
                        .expect("device");
                    let ms =
                        r.modeled_ms.unwrap() * PAPER_SAMPLES as f64 / r.samples_collected as f64;
                    cols[slot + off].push(ms);
                }
            }
        }
        let stats: Vec<(f64, f64)> = cols.iter().map(|c| mean_std(c)).collect();
        let cpu_avg = (stats[0].0 + stats[1].0) / 2.0;
        let gpu_avg = (stats[2].0 + stats[3].0) / 2.0;
        let gs_avg = (stats[4].0 + stats[5].0) / 2.0;
        cpu_speedups.push(cpu_avg / gs_avg);
        gpu_speedups.push(gpu_avg / gs_avg);
        let mut cells = vec![name.to_string()];
        for (m, s) in &stats {
            cells.push(format!("{m:.0}±{s:.0}"));
        }
        cells.push(format!("{:.0}x", cpu_avg / gs_avg));
        cells.push(format!("{:.1}x", gpu_avg / gs_avg));
        t.row(cells);
    }
    t.print();
    println!(
        "\naverage gSWORD speedup: {:.0}x over CPU (paper: 341x), {:.1}x over GPU baselines (paper: 9x)",
        gsword_bench::geomean(&cpu_speedups),
        gsword_bench::geomean(&gpu_speedups)
    );
}
