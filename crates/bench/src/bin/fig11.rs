//! Figure 11: gSWORD's speedup over the GPU baselines for dense vs sparse
//! 16-vertex queries.
//!
//! Expected shape: healthy speedups for both classes (robustness to query
//! structure).

use gsword_bench::{banner, geomean, samples, Table, Workload, PAPER_SAMPLES};
use gsword_core::prelude::*;

fn main() {
    banner(
        "fig11",
        "speedup over GPU baseline: dense vs sparse 16-vertex queries",
    );
    let mut t = Table::new(&["dataset", "WJ sparse", "WJ dense", "AL sparse", "AL dense"]);
    let mut totals: [Vec<f64>; 4] = Default::default();
    for name in gsword_bench::dataset_names() {
        let w = Workload::load(name);
        let queries = w.queries(16);
        let mut cells = vec![name.to_string()];
        for (i, kind) in [EstimatorKind::WanderJoin, EstimatorKind::Alley]
            .into_iter()
            .enumerate()
        {
            for (j, class) in [QueryClass::Sparse, QueryClass::Dense]
                .into_iter()
                .enumerate()
            {
                let sp: Vec<f64> = queries
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| q.class() == class)
                    .map(|(qi, query)| {
                        let per = |backend| {
                            let r = Gsword::builder(&w.data, query)
                                .samples(samples())
                                .estimator(kind)
                                .backend(backend)
                                .seed(0xF11 + qi as u64)
                                .run()
                                .expect("run");
                            r.modeled_ms.unwrap() * PAPER_SAMPLES as f64
                                / r.samples_collected as f64
                        };
                        per(Backend::GpuBaseline) / per(Backend::Gsword)
                    })
                    .collect();
                let g = geomean(&sp);
                totals[i * 2 + j].push(g);
                cells.push(if g.is_nan() {
                    "-".into()
                } else {
                    format!("{g:.1}x")
                });
            }
        }
        t.row(cells);
    }
    let mut cells = vec!["geomean".to_string()];
    for col in &totals {
        cells.push(format!("{:.1}x", geomean(col)));
    }
    t.row(cells);
    t.print();
}
