//! Quick-mode bench rail: times the sampling and candidate-build groups
//! plus legacy-vs-adaptive variants of the two intersection consumers, and
//! writes `BENCH_sampling.json` (median ns per op, keyed by bench id and
//! git rev) at the workspace root. Run via `cargo xtask bench --json`.
//!
//! The `/legacy` rows re-implement the exact pre-adaptive-engine code
//! paths (two-pointer merge local-set assembly; per-element binary-search
//! Alley Refine) over identical inputs, so the `/adaptive` ratio is the
//! engine's speedup, self-documented in the artifact.
//!
//! The storage group runs per dataset (yeast and eu2005) and prices the
//! compressed backend three ways: CSR slices, cold Rice-block decode
//! (`/compressed`, cache disabled), and the decoded-block cache
//! (`/cached`, default budget). The `sim/wall` pair times one full device
//! run serially and with the grid's blocks fanned over 8 sim workers —
//! on a single-core host the two are expected to tie (fan-out only adds
//! queueing overhead); the row records whatever the hardware delivers.

use std::time::Instant;

use gsword_core::prelude::*;
use gsword_graph::intersect::{self, BitmapIndex};
use gsword_simt::counters::KernelCounters;
use gsword_simt::memory::{warp_load, warp_load_rounds, LaneAddr, Region};
use gsword_simt::warp::{Lanes, WarpSanitizer, WARP_SIZE};

/// Median wall nanoseconds of `samples` timed calls (after one warmup).
fn median_ns(samples: usize, mut op: impl FnMut()) -> f64 {
    op();
    let mut ns: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            op();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    ns.sort_by(|a, b| a.total_cmp(b));
    ns[ns.len() / 2]
}

/// The pre-PR candidate-builder intersection: unconditional two-pointer
/// merge (verbatim shape of the deleted `intersect_sorted_into`).
fn legacy_intersect_sorted_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Alley minus the batched-Refine override: `refine_into` falls back to
/// the trait default (one binary search per candidate per segment), which
/// is exactly the pre-PR Refine path.
struct LegacyAlley;

impl Estimator for LegacyAlley {
    fn needs_refine(&self) -> bool {
        true
    }
    fn refine_one(&self, segs: &[Segment<'_>], v: VertexId) -> bool {
        segs.iter().all(|(seg, _)| intersect::member(seg, v))
    }
    fn validate(&self, _segs: &[Segment<'_>], s: &SampleState, v: VertexId) -> bool {
        !s.contains(v)
    }
    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Alley
    }
}

/// One timed row of the artifact.
struct Row {
    id: String,
    median_ns: f64,
    /// Units processed per call, when the row has a natural throughput
    /// (samples for sampling rows); reported as `samples_per_sec`.
    units_per_call: Option<f64>,
}

impl Row {
    fn new(id: impl Into<String>, median_ns: f64) -> Self {
        Row {
            id: id.into(),
            median_ns,
            units_per_call: None,
        }
    }

    fn with_rate(id: impl Into<String>, median_ns: f64, units_per_call: f64) -> Self {
        Row {
            id: id.into(),
            median_ns,
            units_per_call: Some(units_per_call),
        }
    }

    fn per_sec(&self) -> Option<f64> {
        self.units_per_call.map(|u| u * 1e9 / self.median_ns)
    }
}

/// The local-set assembly hot loop of `build_candidate_graph`, over the
/// already-built global sets, in either the adaptive or the legacy flavor.
/// Returns total local-set length as a side-effect sink.
fn assemble_local_sets(
    data: &Graph,
    query: &QueryGraph,
    cg: &CandidateGraph,
    adaptive: bool,
) -> usize {
    const BITMAP_MIN_PIVOT: usize = 64;
    const BITMAP_MIN_REUSE: usize = 8;
    let mut local = Vec::new();
    let mut total = 0usize;
    let mut pivot_index = BitmapIndex::new();
    for (u, u2) in query.edges() {
        let cu2 = cg.global(u2);
        let cu = cg.global(u);
        let use_bitmap = adaptive && cu2.len() >= BITMAP_MIN_PIVOT && cu.len() >= BITMAP_MIN_REUSE;
        if use_bitmap {
            pivot_index.build(cu2);
        }
        for &v in cu {
            local.clear();
            if use_bitmap {
                pivot_index.intersect_into(data.neighbors(v), &mut local);
            } else if adaptive {
                intersect::intersect_into(data.neighbors(v), cu2, &mut local);
            } else {
                legacy_intersect_sorted_into(data.neighbors(v), cu2, &mut local);
            }
            total += local.len();
        }
    }
    total
}

/// Refine scenarios drawn from the candidate graph: for each query edge,
/// the destination's global set filtered through the local sets of a few
/// source candidates — the shape Alley sees every iteration.
fn refine_scenarios<'a>(
    query: &QueryGraph,
    cg: &'a CandidateGraph,
) -> Vec<(&'a [VertexId], Vec<Segment<'a>>)> {
    let mut out = Vec::new();
    for (u, u2) in query.edges() {
        let Some(k) = cg.edge_index(u, u2) else {
            continue;
        };
        let cand = cg.global(u2);
        if cand.is_empty() {
            continue;
        }
        // Refine cost concentrates on hub candidates: their local sets are
        // the big backward segments. Take the heaviest ones per edge.
        let mut by_weight: Vec<&VertexId> = cg
            .global(u)
            .iter()
            .filter(|&&v| !cg.local(k, v).is_empty())
            .collect();
        by_weight.sort_by_key(|&&v| std::cmp::Reverse(cg.local(k, v).len()));
        for chunk in by_weight.chunks(3).take(8) {
            let segs: Vec<Segment<'a>> = chunk.iter().map(|&&v| (cg.local(k, v), 0usize)).collect();
            out.push((cand, segs));
        }
    }
    out
}

/// Storage group for one dataset: CSR vs cold compressed decode vs the
/// decoded-block cache on the same operations, plus the probe-charging
/// pair drawn from its adjacency.
fn storage_rows(dsname: &str, samples: usize, rows: &mut Vec<Row>) {
    let data = gsword_core::datasets::dataset(dsname);
    let query = QueryGraph::extract(&data, 8, 0xBE).expect("storage query");
    // `packed` disables the decode cache to keep the `/compressed` rows
    // measuring the raw Rice stream; `cached` keeps the default budget.
    let packed = CompressedGraph::from_graph(&data).with_decode_cache(0);
    let cached = CompressedGraph::from_graph(&data);
    let n = data.num_vertices() as VertexId;

    // Full neighbor scan: CSR reads slices, compressed decodes Rice
    // blocks, cached answers from per-thread decoded blocks after the
    // warmup pass primes them.
    let ns = median_ns(samples, || {
        let mut acc = 0usize;
        for v in 0..n {
            acc += data.neighbors(v).len();
        }
        std::hint::black_box(acc);
    });
    rows.push(Row::new(format!("storage/neighbor_scan/csr/{dsname}"), ns));
    let ns = median_ns(samples, || {
        let mut acc = 0usize;
        for v in 0..n {
            packed.for_each_neighbor(v, |_| {
                acc += 1;
                true
            });
        }
        std::hint::black_box(acc);
    });
    rows.push(Row::new(
        format!("storage/neighbor_scan/compressed/{dsname}"),
        ns,
    ));
    let ns = median_ns(samples, || {
        let mut acc = 0usize;
        for v in 0..n {
            cached.for_each_neighbor(v, |_| {
                acc += 1;
                true
            });
        }
        std::hint::black_box(acc);
    });
    rows.push(Row::new(
        format!("storage/neighbor_scan/cached/{dsname}"),
        ns,
    ));

    // Membership probes: binary search vs restart-table block decode.
    let ns = median_ns(samples, || {
        let mut hits = 0usize;
        for v in 0..n {
            hits += usize::from(data.has_edge(v, (v * 17) % n));
        }
        std::hint::black_box(hits);
    });
    rows.push(Row::new(format!("storage/member_probe/csr/{dsname}"), ns));
    let ns = median_ns(samples, || {
        let mut hits = 0usize;
        for v in 0..n {
            hits += usize::from(packed.neighbors(v).contains((v * 17) % n));
        }
        std::hint::black_box(hits);
    });
    rows.push(Row::new(
        format!("storage/member_probe/compressed/{dsname}"),
        ns,
    ));

    // Candidate build end-to-end over each backend (identical output by
    // the storage-equivalence tests; this row prices the decode overhead).
    let ns = median_ns(samples, || {
        std::hint::black_box(
            build_candidate_graph(&data, &query, &BuildConfig::default())
                .0
                .byte_size(),
        );
    });
    rows.push(Row::new(
        format!("storage/candidate_build/csr/{dsname}"),
        ns,
    ));
    let ns = median_ns(samples, || {
        std::hint::black_box(
            build_candidate_graph(&packed, &query, &BuildConfig::default())
                .0
                .byte_size(),
        );
    });
    rows.push(Row::new(
        format!("storage/candidate_build/compressed/{dsname}"),
        ns,
    ));

    // Probe-charging pair: per-access warp_load loop (the exact shape the
    // analyzer's charge-per-access rule flagged in the kernel) vs the
    // batched warp_load_rounds replacement it names. The snapshots must be
    // bit-identical — only the call overhead is amortized.
    let probe_seqs: Vec<Vec<usize>> = (0..WARP_SIZE)
        .map(|lane| {
            let v = (lane as VertexId * 97) % n;
            data.neighbors(v).iter().map(|&w| w as usize).collect()
        })
        .collect();
    let san = WarpSanitizer::disabled();
    let per_access_ns = median_ns(samples, || {
        let mut ctr = KernelCounters::default();
        let rounds = probe_seqs.iter().map(Vec::len).max().unwrap_or(0);
        for r in 0..rounds {
            let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
            for (lane, buf) in probe_seqs.iter().enumerate() {
                if let Some(&a) = buf.get(r) {
                    addrs[lane] = Some((Region::LOCAL, a));
                }
            }
            warp_load(&mut ctr, &san, &addrs);
        }
        std::hint::black_box(ctr.mem_transactions);
    });
    let batched_ns = median_ns(samples, || {
        let mut ctr = KernelCounters::default();
        warp_load_rounds(&mut ctr, &san, Region::LOCAL, &probe_seqs);
        std::hint::black_box(ctr.mem_transactions);
    });
    {
        let mut manual = KernelCounters::default();
        let rounds = probe_seqs.iter().map(Vec::len).max().unwrap_or(0);
        for r in 0..rounds {
            let mut addrs: Lanes<LaneAddr> = [None; WARP_SIZE];
            for (lane, buf) in probe_seqs.iter().enumerate() {
                if let Some(&a) = buf.get(r) {
                    addrs[lane] = Some((Region::LOCAL, a));
                }
            }
            warp_load(&mut manual, &san, &addrs);
        }
        let mut batched = KernelCounters::default();
        warp_load_rounds(&mut batched, &san, Region::LOCAL, &probe_seqs);
        assert_eq!(
            manual.snapshot(),
            batched.snapshot(),
            "batched probe charging must replay the per-access loop exactly"
        );
    }
    rows.push(Row::new(
        format!("storage/charge_probes/per_access/{dsname}"),
        per_access_ns,
    ));
    rows.push(Row::new(
        format!("storage/charge_probes/batched/{dsname}"),
        batched_ns,
    ));
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || std::env::var("GSWORD_FAST").is_ok();
    let samples = if quick { 9 } else { 25 };
    let budget: u64 = if quick { 2_000 } else { 10_000 };

    let mut rows: Vec<Row> = Vec::new();
    let data = gsword_core::datasets::dataset("yeast");
    let query = QueryGraph::extract(&data, 8, 0xBE).expect("yeast query");
    let (cg, _) = build_candidate_graph(&data, &query, &BuildConfig::default());
    let order = quicksi_order(&query, &data);
    let ctx = QueryCtx::new(&cg, &order);

    // --- sampling group (the cpu_sampling bench, quick-mode) ---
    for kind in [EstimatorKind::WanderJoin, EstimatorKind::Alley] {
        let ns = median_ns(samples, || {
            gsword_core::estimators::with_estimator(kind, |est| {
                std::hint::black_box(
                    gsword_core::estimators::run_sequential(&ctx, est, budget, 7)
                        .estimate
                        .value(),
                );
            })
        });
        rows.push(Row::with_rate(
            format!("cpu_sampling/{}/yeast", kind.short()),
            ns,
            budget as f64,
        ));
    }

    // --- candidate group: full build plus the assembly hot loop both ways ---
    let ns = median_ns(samples, || {
        std::hint::black_box(
            build_candidate_graph(&data, &query, &BuildConfig::default())
                .0
                .byte_size(),
        );
    });
    rows.push(Row::new("candidate_build/full/yeast", ns));
    let adaptive_ns = median_ns(samples, || {
        std::hint::black_box(assemble_local_sets(&data, &query, &cg, true));
    });
    let legacy_ns = median_ns(samples, || {
        std::hint::black_box(assemble_local_sets(&data, &query, &cg, false));
    });
    assert_eq!(
        assemble_local_sets(&data, &query, &cg, true),
        assemble_local_sets(&data, &query, &cg, false),
        "legacy and adaptive assembly must produce identical local sets"
    );
    rows.push(Row::new("candidate_build/adaptive/yeast", adaptive_ns));
    rows.push(Row::new("candidate_build/legacy/yeast", legacy_ns));
    let build_speedup = legacy_ns / adaptive_ns;

    // --- Alley Refine group: batched k-way vs per-element binary search ---
    let scenarios = refine_scenarios(&query, &cg);
    assert!(!scenarios.is_empty(), "yeast query yields refine scenarios");
    let mut out = Vec::new();
    let refine_adaptive_ns = median_ns(samples, || {
        for (cand, segs) in &scenarios {
            out.clear();
            Alley.refine_into(segs, cand, &mut out);
            std::hint::black_box(out.len());
        }
    });
    let refine_legacy_ns = median_ns(samples, || {
        for (cand, segs) in &scenarios {
            out.clear();
            LegacyAlley.refine_into(segs, cand, &mut out);
            std::hint::black_box(out.len());
        }
    });
    for (cand, segs) in &scenarios {
        let (mut a, mut l) = (Vec::new(), Vec::new());
        Alley.refine_into(segs, cand, &mut a);
        LegacyAlley.refine_into(segs, cand, &mut l);
        assert_eq!(a, l, "batched Refine must match the per-element path");
    }
    rows.push(Row::new("alley_refine/adaptive/yeast", refine_adaptive_ns));
    rows.push(Row::new("alley_refine/legacy/yeast", refine_legacy_ns));
    let refine_speedup = refine_legacy_ns / refine_adaptive_ns;

    // --- sim wall-clock group: one full device run, serial vs the grid's
    // blocks fanned over 8 sim workers. The estimates are bit-identical by
    // construction (asserted); only the wall clock may differ, and on a
    // single-core host it will not. ---
    let wall_budget: u64 = if quick { 4_000 } else { 20_000 };
    let run_wall = |workers: usize| -> Report {
        Gsword::builder(&data, &query)
            .samples(wall_budget)
            .estimator(EstimatorKind::Alley)
            .seed(0xBE)
            .backend(Backend::Gsword)
            .sim_workers(workers)
            .run()
            .expect("wall run")
    };
    let serial_est = run_wall(1).estimate;
    let parallel_est = run_wall(8).estimate;
    assert_eq!(
        serial_est.to_bits(),
        parallel_est.to_bits(),
        "block-parallel launches must not perturb the estimate"
    );
    let wall_samples = samples.min(5);
    let serial_ns = median_ns(wall_samples, || {
        std::hint::black_box(run_wall(1).estimate);
    });
    let parallel_ns = median_ns(wall_samples, || {
        std::hint::black_box(run_wall(8).estimate);
    });
    rows.push(Row::with_rate(
        "sim/wall/serial/yeast",
        serial_ns,
        wall_budget as f64,
    ));
    rows.push(Row::with_rate(
        "sim/wall/parallel/yeast",
        parallel_ns,
        wall_budget as f64,
    ));

    // --- storage group, per dataset ---
    for dsname in ["yeast", "eu2005"] {
        storage_rows(dsname, samples, &mut rows);
    }

    // --- artifact ---
    let root = std::fs::canonicalize(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
        .expect("workspace root exists");
    let root = root.to_str().expect("utf-8 workspace path");
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(root)
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into());

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"git_rev\": \"{rev}\",\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"speedup\": {{\"candidate_build\": {build_speedup:.2}, \"alley_refine\": {refine_speedup:.2}}},\n"
    ));
    json.push_str("  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        match row.per_sec() {
            Some(rate) => json.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"samples_per_sec\": {rate:.1}}}{comma}\n",
                row.id, row.median_ns
            )),
            None => json.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {:.1}}}{comma}\n",
                row.id, row.median_ns
            )),
        }
    }
    json.push_str("  ]\n}\n");

    let path = format!("{root}/BENCH_sampling.json");
    std::fs::write(&path, &json).expect("write BENCH_sampling.json");

    for row in &rows {
        match row.per_sec() {
            Some(rate) => println!(
                "{}: {:.1} ns ({:.0} samples/s)",
                row.id, row.median_ns, rate
            ),
            None => println!("{}: {:.1} ns", row.id, row.median_ns),
        }
    }
    println!("candidate-build speedup (legacy/adaptive): {build_speedup:.2}x");
    println!("alley-refine speedup (legacy/adaptive):    {refine_speedup:.2}x");
    println!("wrote {path}");
}
