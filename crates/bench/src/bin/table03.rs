//! Appendix Table 3: candidate-graph construction and CPU→GPU transfer
//! costs (milliseconds) for query sizes 4, 8, 16 across the datasets.
//!
//! Transfer time is modeled from the structure's byte size over PCIe 3.0
//! x16 (12 GB/s), matching the paper's hardware.

use gsword_bench::{banner, mean_std, Table, Workload};
use gsword_core::prelude::*;

fn main() {
    banner(
        "table03",
        "candidate graph construction / transfer costs (ms)",
    );
    let mut t = Table::new(&[
        "dataset",
        "build k=4",
        "build k=8",
        "build k=16",
        "xfer k=4",
        "xfer k=8",
        "xfer k=16",
    ]);
    for name in gsword_bench::dataset_names() {
        let w = Workload::load(name);
        let mut build = Vec::new();
        let mut xfer = Vec::new();
        for k in [4usize, 8, 16] {
            let queries = w.queries(k);
            let (mut bs, mut xs) = (Vec::new(), Vec::new());
            for query in &queries {
                let (_, stats) = build_candidate_graph(&w.data, query, &BuildConfig::default());
                bs.push(stats.construction_ms);
                xs.push(stats.transfer_ms);
            }
            build.push(mean_std(&bs).0);
            xfer.push(mean_std(&xs).0);
        }
        t.row(vec![
            name.to_string(),
            format!("{:.2}", build[0]),
            format!("{:.2}", build[1]),
            format!("{:.2}", build[2]),
            format!("{:.3}", xfer[0]),
            format!("{:.3}", xfer[1]),
            format!("{:.3}", xfer[2]),
        ]);
    }
    t.print();
}
