//! Figure 14: Alley's sample success ratio (valid samples / total) per
//! dataset and query size, on the plain GPU baseline (no inheritance —
//! inheritance recycles dead lanes and would mask the ratio).
//!
//! Expected shape: ratios fall with query size; WordNet's 16-vertex ratio
//! collapses to ~0 (the paper reports < 1e-7), explaining Figure 13's
//! underestimation.

use gsword_bench::{banner, samples, Table, Workload};
use gsword_core::prelude::*;

fn main() {
    banner("fig14", "Alley sample success ratio (GPU baseline)");
    let mut t = Table::new(&["dataset", "k=4", "k=8", "k=16"]);
    for name in gsword_bench::dataset_names() {
        let w = Workload::load(name);
        let mut cells = vec![name.to_string()];
        for k in [4usize, 8, 16] {
            let queries = w.queries(k);
            if queries.is_empty() {
                cells.push("-".into());
                continue;
            }
            let mut valid = 0u64;
            let mut total = 0u64;
            for (qi, query) in queries.iter().enumerate() {
                let r = Gsword::builder(&w.data, query)
                    .samples(samples())
                    .estimator(EstimatorKind::Alley)
                    .backend(Backend::GpuBaseline)
                    .seed(0xF14 + qi as u64)
                    .run()
                    .expect("run");
                valid += r.sampler.valid;
                total += r.sampler.samples;
            }
            let ratio = valid as f64 / total as f64;
            cells.push(if ratio == 0.0 {
                format!("0 (<{:.0e})", 1.0 / total as f64)
            } else {
                format!("{ratio:.2e}")
            });
        }
        t.row(cells);
    }
    t.print();
}
