//! Figure 6: the access-pattern explanation behind the synchronization
//! choice — per-load transaction histograms for sample vs iteration
//! synchronization.
//!
//! Expected shape: sample synchronization's loads concentrate at few
//! transactions per warp instruction (lanes touch the same query vertex's
//! candidate arrays); iteration synchronization's loads scatter (lanes at
//! different depths touch different arrays), shifting the histogram right.

use gsword_bench::{banner, samples, Table, Workload};
use gsword_core::prelude::*;

fn main() {
    banner(
        "fig06",
        "per-load transaction histograms: sample vs iteration sync (Alley)",
    );
    let mut t = Table::new(&[
        "dataset",
        "sync",
        "loads/sample",
        "tx/sample",
        "B/useful word",
    ]);
    for name in ["wordnet", "dblp", "eu2005"] {
        let w = Workload::load(name);
        let Some(query) = w.queries(8).into_iter().next() else {
            continue;
        };
        for (label, cfg) in [
            ("sample", EngineConfig::o0(0)),
            ("iteration", EngineConfig::iteration_sync(0)),
        ] {
            let r = Gsword::builder(&w.data, &query)
                .samples(samples())
                .estimator(EstimatorKind::Alley)
                .backend(Backend::Device(cfg))
                .seed(0xF06)
                .run()
                .expect("run");
            let c = r.counters.expect("device counters");
            let n = r.sampler.samples.max(1) as f64;
            t.row(vec![
                name.to_string(),
                label.to_string(),
                format!("{:.1}", c.mem_instructions as f64 / n),
                format!("{:.1}", c.mem_transactions as f64 / n),
                format!("{:.1}", c.bytes_per_useful_word()),
            ]);
        }
    }
    t.print();
    println!("\nexpected: iteration sync moves more bytes per useful word and more transactions\nper sample — the scattered access pattern of Example 4 / Fig. 6");
}
