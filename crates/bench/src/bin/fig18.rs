//! Figure 18: q-error and runtime of co-processing as the number of CPU
//! enumeration threads varies, on five representative WordNet 16-vertex
//! queries.
//!
//! Expected shape: more threads complete more enumerations inside each
//! batch window → q-error falls; total runtime stays flat (the GPU side
//! sets the pace). The paper's q3 improves from q-error 300 → 64 going
//! from 1 to 12 threads.

use gsword_bench::{banner, samples, Table, Workload};
use gsword_core::prelude::*;

fn main() {
    banner(
        "fig18",
        "q-error & runtime vs CPU threads (WordNet, 16-vertex)",
    );
    let w = Workload::load("wordnet");
    let queries: Vec<_> = w
        .queries(16)
        .into_iter()
        .enumerate()
        .filter_map(|(qi, q)| w.truth(&q, "k16").map(|t| (qi, q, t)))
        .take(5)
        .collect();
    let thread_sweep = [1usize, 2, 4, 8, 12];
    let mut t = Table::new(&["query", "threads", "q-error", "trawl done", "total wall ms"]);
    for &(qi, ref query, truth) in &queries {
        for &threads in &thread_sweep {
            let r = Gsword::builder(&w.data, query)
                .samples(samples())
                .estimator(EstimatorKind::Alley)
                .trawling(TrawlConfig {
                    batches: 6,
                    per_batch: 512, // saturate the CPU side so threads matter
                    cpu_threads: threads,
                    ..TrawlConfig::default()
                })
                .seed(0xF18 + qi as u64)
                .run()
                .expect("pipeline");
            t.row(vec![
                format!("q{qi}"),
                threads.to_string(),
                format!("{:.1}", r.q_error(truth)),
                format!("{}/3072", r.trawl_completed),
                format!("{:.0}", r.wall_ms),
            ]);
        }
    }
    t.print();
}
