//! Figure 1: the motivating experiment — q-error and CPU runtime of
//! WanderJoin and Alley as the sample count grows, for an 8-vertex query
//! on eu2005 and WordNet.
//!
//! Expected shape: on eu2005 both estimators converge (Alley in fewer
//! samples, at more time per sample); on WordNet both collapse to empty
//! estimates regardless of sample count.

use gsword_bench::{banner, cpu_threads, opt_cell, samples, Table, Workload};
use gsword_core::prelude::*;

fn main() {
    banner(
        "fig01",
        "q-error & CPU runtime vs #samples (8-vertex query)",
    );
    let sweep: Vec<u64> = {
        let top = samples() * 10;
        let mut s = vec![top / 1000, top / 100, top / 10, top];
        s.retain(|&x| x > 0);
        s
    };
    let threads = cpu_threads();

    for name in ["eu2005", "wordnet"] {
        let w = Workload::load(name);
        // One fixed 8-vertex query, like the paper's preliminary study.
        // Prefer a query whose ground truth is known and positive.
        let queries = w.queries(8);
        // Mirror the paper's query choice: eu2005's query converges, the
        // WordNet one exposes underestimation — probe each candidate with a
        // quick baseline run and keep the hardest.
        let Some((query, truth)) = queries
            .iter()
            .filter_map(|q| {
                let t = w.truth(q, "k8")?;
                (t > 0.0).then_some((q.clone(), t))
            })
            .map(|(q, t)| {
                let probe = Gsword::builder(&w.data, &q)
                    .samples(5_000)
                    .backend(Backend::GpuBaseline)
                    .seed(1)
                    .run()
                    .expect("probe");
                (probe.q_error(t), q, t)
            })
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
            .map(|(_, q, t)| (q, t))
        else {
            println!("[{name}] no 8-vertex query with computable ground truth; skipping");
            continue;
        };
        println!(
            "[{name}] query: {} vertices / {} edges, exact = {truth}",
            query.num_vertices(),
            query.num_edges()
        );
        let mut t = Table::new(&["samples", "WJ q-error", "WJ ms", "AL q-error", "AL ms"]);
        for &n in &sweep {
            let mut cells = vec![n.to_string()];
            for kind in [EstimatorKind::WanderJoin, EstimatorKind::Alley] {
                let r = Gsword::builder(&w.data, &query)
                    .samples(n)
                    .estimator(kind)
                    .backend(Backend::Cpu { threads })
                    .seed(0xF16)
                    .run()
                    .expect("cpu run");
                cells.push(format!("{:.2}", r.q_error(truth)));
                cells.push(opt_cell(Some(r.wall_ms), 1));
            }
            t.row(cells);
        }
        t.print();
        println!();
    }
}
