//! Table 1: dataset statistics — suite graphs alongside the paper's
//! originals.

use gsword_bench::{banner, Table, Workload};
use gsword_core::prelude::*;

fn main() {
    banner("table01", "Dataset statistics (suite vs paper)");
    let mut t = Table::new(&[
        "dataset",
        "category",
        "|V|",
        "|E|",
        "d",
        "L",
        "scale",
        "paper |V|",
        "paper |E|",
        "paper d",
    ]);
    for name in gsword_bench::dataset_names() {
        let spec = gsword_core::datasets::spec(name).expect("suite name");
        let w = Workload::load(name);
        let s = GraphStats::of(&w.data);
        t.row(vec![
            name.to_string(),
            spec.category.to_string(),
            s.num_vertices.to_string(),
            s.num_edges.to_string(),
            format!("{:.1}", s.avg_degree),
            s.labels.to_string(),
            format!("1/{}", spec.scale),
            spec.paper_vertices.to_string(),
            spec.paper_edges.to_string(),
            format!("{:.1}", spec.paper_avg_degree),
        ]);
    }
    t.print();
}
