//! Figure 5: the synchronization micro-benchmark — warp stall factors
//! (StallLong / StallWait proxies) for sample vs iteration
//! synchronization, with Alley as the sampling method.
//!
//! Expected shape: iteration synchronization wastes fewer issue slots
//! (StallWait) in the validate-bound regime but pays far more memory
//! stalls (StallLong) from scattered candidate accesses, and loses end to
//! end (the paper reports an average 1.3× slowdown).

use gsword_bench::{banner, samples, Table, Workload};
use gsword_core::prelude::*;

fn main() {
    banner(
        "fig05",
        "sample vs iteration synchronization stall factors (Alley)",
    );
    let mut t = Table::new(&[
        "dataset",
        "sync",
        "StallLong/sample",
        "StallWait/sample",
        "warp eff",
        "modeled ms/1e6",
        "slowdown",
    ]);
    let mut slowdowns = Vec::new();
    for name in gsword_bench::dataset_names() {
        let w = Workload::load(name);
        let Some(query) = w.queries(8).into_iter().next() else {
            continue;
        };
        let run = |cfg: EngineConfig| {
            Gsword::builder(&w.data, &query)
                .samples(samples())
                .estimator(EstimatorKind::Alley)
                .backend(Backend::Device(cfg))
                .seed(0xF05)
                .run()
                .expect("device run")
        };
        let ss = run(EngineConfig::o0(0));
        let is = run(EngineConfig::iteration_sync(0));
        let per = |r: &Report, f: &dyn Fn(&KernelCounters) -> u64| {
            f(&r.counters.unwrap()) as f64 / r.sampler.samples as f64
        };
        let ms = |r: &Report| {
            r.modeled_ms.unwrap() * gsword_bench::PAPER_SAMPLES as f64 / r.sampler.samples as f64
        };
        let slowdown = ms(&is) / ms(&ss);
        slowdowns.push(slowdown);
        for (label, r, slow) in [("sample", &ss, 1.0), ("iteration", &is, slowdown)] {
            t.row(vec![
                name.to_string(),
                label.to_string(),
                format!("{:.0}", per(r, &|c| c.stall_long())),
                format!("{:.0}", per(r, &|c| c.stall_wait())),
                format!("{:.3}", r.counters.unwrap().warp_efficiency()),
                format!("{:.1}", ms(r)),
                format!("{slow:.2}x"),
            ]);
        }
    }
    t.print();
    println!(
        "\naverage iteration-sync slowdown: {:.2}x (paper: 1.3x)",
        gsword_bench::geomean(&slowdowns)
    );
}
