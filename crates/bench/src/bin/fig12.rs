//! Figure 12: the ablation — runtime with no optimization (O0), sample
//! inheritance only (O1), and inheritance + warp streaming (O2), for
//! WanderJoin and Alley.
//!
//! Expected shape: O1 cuts runtime for both estimators (3.9× WJ / 2.5× AL
//! in the paper — WanderJoin has heavier validate imbalance); O2 cuts
//! Alley further (5.3× in the paper) but leaves WanderJoin unchanged (no
//! refine stage to stream).

use gsword_bench::{banner, geomean, samples, Table, Workload, PAPER_SAMPLES};
use gsword_core::prelude::*;

fn main() {
    banner(
        "fig12",
        "ablation: O0 / O1 (inheritance) / O2 (+streaming), ms @ 1e6 samples",
    );
    let mut t = Table::new(&[
        "dataset", "WJ O0", "WJ O1", "WJ O2", "AL O0", "AL O1", "AL O2",
    ]);
    let mut o1_speedup = [Vec::new(), Vec::new()]; // per estimator
    let mut o2_speedup_al = Vec::new();
    for name in gsword_bench::dataset_names() {
        let w = Workload::load(name);
        let queries = w.queries(16);
        if queries.is_empty() {
            continue;
        }
        let mut cells = vec![name.to_string()];
        for (ei, kind) in [EstimatorKind::WanderJoin, EstimatorKind::Alley]
            .into_iter()
            .enumerate()
        {
            let run = |cfg: EngineConfig, seed: u64| {
                let r = Gsword::builder(&w.data, &queries[seed as usize % queries.len()])
                    .samples(samples())
                    .estimator(kind)
                    .backend(Backend::Device(cfg))
                    .seed(0xF12 + seed)
                    .run()
                    .expect("run");
                r.modeled_ms.unwrap() * PAPER_SAMPLES as f64 / r.samples_collected as f64
            };
            let avg = |cfg: fn(u64) -> EngineConfig| {
                let xs: Vec<f64> = (0..queries.len() as u64).map(|s| run(cfg(0), s)).collect();
                geomean(&xs)
            };
            let o0 = avg(EngineConfig::o0);
            let o1 = avg(EngineConfig::o1);
            let o2 = avg(EngineConfig::o2);
            o1_speedup[ei].push(o0 / o1);
            if ei == 1 {
                o2_speedup_al.push(o1 / o2);
            }
            for v in [o0, o1, o2] {
                cells.push(format!("{v:.1}"));
            }
        }
        t.row(cells);
    }
    t.print();
    println!(
        "\nO1 speedup: WJ {:.1}x (paper 3.9x), AL {:.1}x (paper 2.5x); O2 extra speedup on AL: {:.1}x (paper 5.3x)",
        geomean(&o1_speedup[0]),
        geomean(&o1_speedup[1]),
        geomean(&o2_speedup_al)
    );
}
