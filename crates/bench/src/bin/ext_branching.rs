//! Extension ablation: Alley's branching optimization (CPU) vs the flat
//! sampler — the trade-off the paper cites when excluding branching from
//! the GPU kernels (Section 2.2's remark).
//!
//! Expected shape: branching shares refine computations across sibling
//! paths (fewer refines per path) and reduces variance per unit work on
//! refine-heavy graphs, at the cost of irregular tree control flow — fine
//! on a CPU, hostile to SIMT.

use std::time::Instant;

use gsword_bench::{banner, samples, Table, Workload};
use gsword_core::estimators::{run_branching, run_sequential, BranchingConfig};
use gsword_core::prelude::*;

fn main() {
    banner(
        "ext_branching",
        "Alley branching (CPU) vs flat sampling — extension beyond the paper",
    );
    let mut t = Table::new(&[
        "dataset",
        "mode",
        "paths",
        "refines/path",
        "wall ms",
        "q-error",
    ]);
    for name in ["yeast", "dblp", "eu2005"] {
        let w = Workload::load(name);
        let Some(query) = w
            .queries(8)
            .into_iter()
            .find(|q| q.class() == QueryClass::Dense)
        else {
            continue;
        };
        let truth = w.truth(&query, "k8");
        let (cg, _) = build_candidate_graph(&w.data, &query, &BuildConfig::default());
        let order = quicksi_order(&query, &w.data);
        let ctx = QueryCtx::new(&cg, &order);

        let n = samples();
        let t0 = Instant::now();
        let flat = run_sequential(&ctx, &Alley, n, 0xB0);
        let flat_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Match total path budget: each tree explores several paths.
        let cfg = BranchingConfig::default();
        let t0 = Instant::now();
        let (branched, stats) = run_branching(&ctx, &Alley, &cfg, n / 4, 0xB0);
        let branch_ms = t0.elapsed().as_secs_f64() * 1e3;

        let q = |v: f64| truth.map_or("-".to_string(), |tr| format!("{:.2}", q_error(v, tr)));
        t.row(vec![
            name.to_string(),
            "flat".to_string(),
            n.to_string(),
            format!("{:.1}", (ctx.len() - 1) as f64),
            format!("{flat_ms:.0}"),
            q(flat.estimate.value()),
        ]);
        t.row(vec![
            name.to_string(),
            format!("branch b={}", cfg.factor),
            stats.paths.to_string(),
            format!("{:.1}", stats.refines as f64 / stats.paths.max(1) as f64),
            format!("{branch_ms:.0}"),
            q(branched.value()),
        ]);
    }
    t.print();
}
