//! Figure 15: q-error of the plain RW estimators vs trawling on WordNet's
//! 16-vertex queries — the underestimation rescue.
//!
//! Expected shape: plain estimators underestimate by orders of magnitude
//! (often returning 0); trawling collapses the q-error (the paper reports
//! reduction factors of ~1e5 and maximum q-error dropping from 1e9/2e6 to
//! 1.2e4).

use gsword_bench::{banner, geomean, samples, Table, Workload};
use gsword_core::prelude::*;

fn main() {
    banner(
        "fig15",
        "q-error: plain RW vs trawling (WordNet, 16-vertex queries)",
    );
    let w = Workload::load("wordnet");
    let queries = w.queries(16);
    let trawl_cfg = TrawlConfig {
        batches: 6,
        per_batch: 128,
        cpu_threads: gsword_bench::cpu_threads(),
        ..TrawlConfig::default()
    };
    let mut t = Table::new(&["query", "truth", "WJ q", "WJ+trawl q", "AL q", "AL+trawl q"]);
    let mut reduction: [Vec<f64>; 2] = Default::default();
    let mut max_plain: [f64; 2] = [1.0, 1.0];
    let mut max_trawl: [f64; 2] = [1.0, 1.0];
    for (qi, query) in queries.iter().enumerate() {
        let Some(truth) = w.truth(query, "k16") else {
            continue;
        };
        let mut cells = vec![format!("q{qi}"), format!("{truth:.0}")];
        for (ei, kind) in [EstimatorKind::WanderJoin, EstimatorKind::Alley]
            .into_iter()
            .enumerate()
        {
            // "Existing RW estimators": the plain GPU baseline, without
            // gSWORD's inheritance (which already mitigates mild cases).
            let plain = Gsword::builder(&w.data, query)
                .samples(samples())
                .estimator(kind)
                .backend(Backend::GpuBaseline)
                .seed(0xF15 + qi as u64)
                .run()
                .expect("plain");
            let trawled = Gsword::builder(&w.data, query)
                .samples(samples())
                .estimator(kind)
                .trawling(trawl_cfg)
                .seed(0xF15 + qi as u64)
                .run()
                .expect("trawled");
            let qp = plain.q_error(truth);
            let qt = trawled.q_error(truth);
            reduction[ei].push(qp / qt);
            max_plain[ei] = max_plain[ei].max(qp);
            max_trawl[ei] = max_trawl[ei].max(qt);
            cells.push(format!("{qp:.1}"));
            cells.push(format!("{qt:.1}"));
        }
        t.row(cells);
    }
    t.print();
    println!(
        "\nq-error reduction (geomean): WJ {:.1}x, AL {:.1}x; max q-error WJ {:.0} → {:.0}, AL {:.0} → {:.0}",
        geomean(&reduction[0]),
        geomean(&reduction[1]),
        max_plain[0],
        max_trawl[0],
        max_plain[1],
        max_trawl[1],
    );
}
