//! Figure 17: q-error and runtime of co-processing as the number of
//! batches varies, on five representative WordNet 16-vertex queries.
//!
//! Expected shape: more batches → more overlap and more enumerated
//! samples → lower q-error, until per-batch time gets too short for the
//! enumerations to finish and q-error rises again; total runtime stays
//! roughly flat. The paper picks 6 batches as the default.

use gsword_bench::{banner, samples, Table, Workload};
use gsword_core::prelude::*;

fn main() {
    banner(
        "fig17",
        "q-error & runtime vs number of batches (WordNet, 16-vertex)",
    );
    let w = Workload::load("wordnet");
    let queries: Vec<_> = w
        .queries(16)
        .into_iter()
        .enumerate()
        .filter_map(|(qi, q)| w.truth(&q, "k16").map(|t| (qi, q, t)))
        .take(5)
        .collect();
    let batch_sweep = [1usize, 2, 4, 6, 8, 12];
    let mut t = Table::new(&["query", "batches", "q-error", "trawl done", "total wall ms"]);
    for &(qi, ref query, truth) in &queries {
        for &batches in &batch_sweep {
            let r = Gsword::builder(&w.data, query)
                .samples(samples())
                .estimator(EstimatorKind::Alley)
                .trawling(TrawlConfig {
                    batches,
                    per_batch: 64,
                    cpu_threads: gsword_bench::cpu_threads(),
                    ..TrawlConfig::default()
                })
                .seed(0xF17 + qi as u64)
                .run()
                .expect("pipeline");
            t.row(vec![
                format!("q{qi}"),
                batches.to_string(),
                format!("{:.1}", r.q_error(truth)),
                format!("{}/{}", r.trawl_completed, batches * 64),
                format!("{:.0}", r.wall_ms),
            ]);
        }
    }
    t.print();
}
