//! Experiment harness shared by the per-figure/table binaries.
//!
//! Every evaluation artifact of the paper maps to one binary in `src/bin`
//! (see DESIGN.md §3). The binaries share workload construction, scaled
//! default parameters, ground-truth computation with an on-disk cache, and
//! table formatting through this library.
//!
//! Scaling knobs (environment variables):
//!
//! * `GSWORD_SAMPLES` — sample budget per query (default 20 000; the paper
//!   uses 10⁶ — results are normalized to a 10⁶-sample budget where the
//!   paper reports absolute times).
//! * `GSWORD_QUERIES` — queries per (dataset, size) cell (default 5; the
//!   paper uses 20).
//! * `GSWORD_DATASETS` — comma-separated subset of the suite.
//! * `GSWORD_TRUTH_BUDGET` — search-node budget for ground-truth
//!   enumeration (default 2×10⁸; cells whose budget trips report no
//!   q-error).
//! * `GSWORD_FAST` — set to shrink everything for a smoke run.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;

use gsword_core::prelude::*;

/// The paper's reference sample budget; absolute runtimes are normalized
/// to this (Section 6.1 uses 10⁶ samples per query).
pub const PAPER_SAMPLES: u64 = 1_000_000;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Whether `GSWORD_FAST` smoke mode is active.
pub fn fast_mode() -> bool {
    std::env::var("GSWORD_FAST").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Sample budget per query for experiments.
pub fn samples() -> u64 {
    let default = if fast_mode() { 2_000 } else { 20_000 };
    env_u64("GSWORD_SAMPLES", default)
}

/// Queries per (dataset, size) cell.
pub fn queries_per_cell() -> usize {
    let default = if fast_mode() { 2 } else { 5 };
    env_u64("GSWORD_QUERIES", default as u64) as usize
}

/// Ground-truth enumeration budget (search nodes).
pub fn truth_budget() -> u64 {
    let default = if fast_mode() { 20_000_000 } else { 200_000_000 };
    env_u64("GSWORD_TRUTH_BUDGET", default)
}

/// The datasets this run covers.
pub fn dataset_names() -> Vec<&'static str> {
    match std::env::var("GSWORD_DATASETS") {
        Ok(list) if !list.is_empty() => gsword_core::datasets::dataset_names()
            .into_iter()
            .filter(|n| list.split(',').any(|x| x.trim() == *n))
            .collect(),
        _ => gsword_core::datasets::dataset_names(),
    }
}

/// CPU threads used by the CPU baselines (the paper's server has 12
/// cores).
pub fn cpu_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(4, |n| n.get())
        .min(12)
}

/// A dataset with its per-size query workloads (the paper's extraction
/// method; Section 6.1).
pub struct Workload {
    /// Suite dataset name.
    pub name: &'static str,
    /// The data graph.
    pub data: Graph,
}

impl Workload {
    /// Load a suite dataset.
    pub fn load(name: &'static str) -> Self {
        Workload {
            name,
            data: gsword_core::datasets::dataset(name),
        }
    }

    /// Extract the standard query workload of `k` vertices.
    pub fn queries(&self, k: usize) -> Vec<QueryGraph> {
        QueryGraph::workload(&self.data, k, queries_per_cell(), 0xC0DE + k as u64)
    }

    /// Ground truth for one query, via the cache.
    pub fn truth(&self, query: &QueryGraph, tag: &str) -> Option<f64> {
        cached_truth(self.name, tag, &self.data, query)
    }
}

/// Stable content hash of a query (for the truth cache key).
fn query_hash(q: &QueryGraph) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    let mut feed = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    feed(q.num_vertices() as u64);
    for u in 0..q.num_vertices() as u8 {
        feed(q.label(u) as u64);
        feed(q.adjacency_mask(u) as u64);
    }
    h
}

fn cache_dir() -> PathBuf {
    let dir = std::env::var("GSWORD_CACHE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/gsword-truth"));
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Exact count with an on-disk cache (`target/gsword-truth/`). `None` when
/// the enumeration budget trips.
pub fn cached_truth(dataset: &str, tag: &str, data: &Graph, query: &QueryGraph) -> Option<f64> {
    let key = format!("{dataset}-{tag}-{:016x}", query_hash(query));
    let path = cache_dir().join(format!("{key}.json"));
    if let Ok(body) = std::fs::read_to_string(&path) {
        if let Some(v) = parse_cached(&body) {
            return v.map(|x| x as f64);
        }
    }
    let v = gsword_core::exact_count(data, query, truth_budget(), 0);
    if let Ok(mut f) = std::fs::File::create(&path) {
        let body = match v {
            Some(x) => x.to_string(),
            None => "null".to_string(),
        };
        let _ = write!(f, "{body}");
    }
    v.map(|x| x as f64)
}

/// Parse a truth-cache body: JSON `null` (budget tripped) or a bare
/// non-negative integer. Outer `None` means the file is unreadable and the
/// truth must be recomputed.
fn parse_cached(body: &str) -> Option<Option<u64>> {
    let body = body.trim();
    if body == "null" {
        return Some(None);
    }
    body.parse::<u64>().ok().map(Some)
}

/// Geometric mean (ignores non-finite and non-positive entries).
pub fn geomean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|x| x.is_finite() && *x > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return f64::NAN;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Mean and population standard deviation.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let m = xs.iter().sum::<f64>() / xs.len() as f64;
    let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    (m, v.sqrt())
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells already formatted).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (w, cell) in widths.iter().zip(cells) {
                out.push_str(&format!("{cell:>w$}  ", w = w));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Collect per-dataset series into an ordered map (stable printing).
pub type Series = BTreeMap<String, Vec<f64>>;

/// Format an `Option<f64>` cell.
pub fn opt_cell(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) => format!("{x:.digits$}"),
        None => "-".to_string(),
    }
}

/// A standard header line for experiment binaries.
pub fn banner(id: &str, what: &str) {
    println!("=== {id}: {what} ===");
    println!(
        "samples/query: {} (normalized to paper budget {}), queries/cell: {}, truth budget: {}",
        samples(),
        PAPER_SAMPLES,
        queries_per_cell(),
        truth_budget()
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_ignores_nonpositive() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 0.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn query_hash_distinguishes() {
        let a = QueryGraph::new(vec![0, 0], &[(0, 1)]).unwrap();
        let b = QueryGraph::new(vec![0, 1], &[(0, 1)]).unwrap();
        assert_ne!(query_hash(&a), query_hash(&b));
        assert_eq!(query_hash(&a), query_hash(&a));
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }
}
