//! Criterion: candidate-graph construction across filter configurations
//! and query sizes (the Table 3 cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsword_core::prelude::*;

fn bench_candidate(c: &mut Criterion) {
    let mut group = c.benchmark_group("candidate_build");
    group.sample_size(20);
    for name in ["yeast", "eu2005"] {
        let data = gsword_core::datasets::dataset(name);
        for k in [4usize, 8, 16] {
            let Some(query) = QueryGraph::extract(&data, k, 0xCA) else {
                continue;
            };
            for (cfg_name, cfg) in [
                ("default", BuildConfig::default()),
                ("unfiltered", BuildConfig::unfiltered()),
                ("strong", BuildConfig::strong()),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{name}-k{k}"), cfg_name),
                    &cfg,
                    |b, cfg| b.iter(|| build_candidate_graph(&data, &query, cfg).0.byte_size()),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_candidate);
criterion_main!(benches);
