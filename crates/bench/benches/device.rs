//! Criterion: functional simulation throughput of the device kernel
//! variants (baseline, O0/O1/O2, iteration sync) and of the device
//! runtime's stream scheduling (1/2/4/8 streams over a fixed budget).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsword_core::prelude::*;

fn bench_device(c: &mut Criterion) {
    let data = gsword_core::datasets::dataset("dblp");
    let query = QueryGraph::extract(&data, 8, 0xD1).expect("query");
    let (cg, _) = build_candidate_graph(&data, &query, &BuildConfig::default());
    let order = quicksi_order(&query, &data);
    let ctx = QueryCtx::new(&cg, &order);

    const N: u64 = 2_000;
    let dev = DeviceConfig {
        num_blocks: 2,
        threads_per_block: 64,
        host_threads: 2,
    };
    let mut group = c.benchmark_group("device_kernels");
    group.throughput(Throughput::Elements(N));
    let configs = [
        ("baseline", EngineConfig::gpu_baseline(N)),
        ("o0", EngineConfig::o0(N)),
        ("o1", EngineConfig::o1(N)),
        ("o2", EngineConfig::o2(N)),
        ("itersync", EngineConfig::iteration_sync(N)),
    ];
    for (name, cfg) in configs {
        let cfg = EngineConfig { device: dev, ..cfg };
        group.bench_with_input(BenchmarkId::new("alley", name), &cfg, |b, cfg| {
            b.iter(|| run_engine(&ctx, &Alley, cfg).estimate.value())
        });
    }
    group.finish();
}

/// Stream scaling: the same fixed sample budget sharded over 1, 2, 4, and
/// 8 streams of one device (plus a 2×2 multi-device point). Estimates are
/// bit-identical across rows — only where the global grid's shards execute
/// changes — so the interesting number is wall-clock throughput.
fn bench_streams(c: &mut Criterion) {
    let data = gsword_core::datasets::dataset("dblp");
    let query = QueryGraph::extract(&data, 8, 0xD1).expect("query");
    let (cg, _) = build_candidate_graph(&data, &query, &BuildConfig::default());
    let order = quicksi_order(&query, &data);
    let ctx = QueryCtx::new(&cg, &order);

    const N: u64 = 8_000;
    // One host thread per block-shard worker: stream parallelism, not
    // intra-launch block parallelism, is what this group measures.
    let dev = DeviceConfig {
        num_blocks: 8,
        threads_per_block: 64,
        host_threads: 1,
    };
    let mut group = c.benchmark_group("stream_scaling");
    group.throughput(Throughput::Elements(N));
    for streams in [1usize, 2, 4, 8] {
        let cfg = EngineConfig {
            device: dev,
            ..EngineConfig::gsword(N)
        }
        .with_topology(1, streams);
        group.bench_with_input(BenchmarkId::new("1-device", streams), &cfg, |b, cfg| {
            b.iter(|| run_engine(&ctx, &Alley, cfg).estimate.value())
        });
    }
    let two_by_two = EngineConfig {
        device: dev,
        ..EngineConfig::gsword(N)
    }
    .with_topology(2, 2);
    group.bench_with_input(
        BenchmarkId::new("2-devices", 2usize),
        &two_by_two,
        |b, cfg| b.iter(|| run_engine(&ctx, &Alley, cfg).estimate.value()),
    );
    // Profiled twins of the 4-stream and 2×2 rows: comparing against the
    // rows above quantifies the profiler's overhead (the `Option<Arc>`
    // handle is designed to cost nothing when off and little when on).
    let profiled_4s = EngineConfig {
        device: dev,
        ..EngineConfig::gsword(N)
    }
    .with_topology(1, 4)
    .with_profile(true);
    group.bench_with_input(
        BenchmarkId::new("1-device-profiled", 4usize),
        &profiled_4s,
        |b, cfg| b.iter(|| run_engine(&ctx, &Alley, cfg).estimate.value()),
    );
    let profiled_2x2 = two_by_two.with_profile(true);
    group.bench_with_input(
        BenchmarkId::new("2-devices-profiled", 2usize),
        &profiled_2x2,
        |b, cfg| b.iter(|| run_engine(&ctx, &Alley, cfg).estimate.value()),
    );
    group.finish();
}

criterion_group!(benches, bench_device, bench_streams);
criterion_main!(benches);
