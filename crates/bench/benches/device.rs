//! Criterion: functional simulation throughput of the device kernel
//! variants (baseline, O0/O1/O2, iteration sync).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsword_core::prelude::*;

fn bench_device(c: &mut Criterion) {
    let data = gsword_core::datasets::dataset("dblp");
    let query = QueryGraph::extract(&data, 8, 0xD1).expect("query");
    let (cg, _) = build_candidate_graph(&data, &query, &BuildConfig::default());
    let order = quicksi_order(&query, &data);
    let ctx = QueryCtx::new(&cg, &order);

    const N: u64 = 2_000;
    let dev = DeviceConfig {
        num_blocks: 2,
        threads_per_block: 64,
        host_threads: 2,
    };
    let mut group = c.benchmark_group("device_kernels");
    group.throughput(Throughput::Elements(N));
    let configs = [
        ("baseline", EngineConfig::gpu_baseline(N)),
        ("o0", EngineConfig::o0(N)),
        ("o1", EngineConfig::o1(N)),
        ("o2", EngineConfig::o2(N)),
        ("itersync", EngineConfig::iteration_sync(N)),
    ];
    for (name, cfg) in configs {
        let cfg = EngineConfig { device: dev, ..cfg };
        group.bench_with_input(BenchmarkId::new("alley", name), &cfg, |b, cfg| {
            b.iter(|| run_engine(&ctx, &Alley, cfg).estimate.value())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_device);
criterion_main!(benches);
