//! Criterion: the adaptive intersection engine's three strategies across
//! skew ratios (1×/16×/256×) plus the k-way path on a power-law analogue
//! of candidate-segment sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsword_graph::intersect::{self, BitmapIndex};
use gsword_graph::VertexId;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Sorted deduped set of roughly `len` elements spread over `0..span`.
fn mk_set(seed: u64, len: usize, span: u32) -> Vec<VertexId> {
    let mut s = seed | 1;
    let mut v: Vec<VertexId> = (0..len)
        .map(|_| (xorshift(&mut s) % u64::from(span)) as VertexId)
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn bench_pairwise(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect");
    const SMALL: usize = 512;
    for skew in [1usize, 16, 256] {
        let a = mk_set(0xA5, SMALL, (SMALL * skew * 4) as u32);
        let b = mk_set(0x5A, SMALL * skew, (SMALL * skew * 4) as u32);
        group.throughput(Throughput::Elements(a.len() as u64));
        let mut out = Vec::with_capacity(SMALL);

        group.bench_with_input(
            BenchmarkId::new("merge", format!("{skew}x")),
            &skew,
            |ben, _| {
                ben.iter(|| {
                    intersect::merge_into(&a, &b, &mut out);
                    out.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gallop", format!("{skew}x")),
            &skew,
            |ben, _| {
                ben.iter(|| {
                    intersect::gallop_into(&a, &b, &mut out);
                    out.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("adaptive", format!("{skew}x")),
            &skew,
            |ben, _| {
                ben.iter(|| {
                    intersect::intersect_into(&a, &b, &mut out);
                    out.len()
                })
            },
        );
        // Bitmap probe cost with the build amortized away — the regime the
        // candidate builder uses it in (one pivot, many probe sets).
        let mut idx = BitmapIndex::new();
        idx.build(&b);
        group.bench_with_input(
            BenchmarkId::new("bitmap_probe", format!("{skew}x")),
            &skew,
            |ben, _| {
                ben.iter(|| {
                    idx.intersect_into(&a, &mut out);
                    out.len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bitmap_build_probe", format!("{skew}x")),
            &skew,
            |ben, _| {
                ben.iter(|| {
                    idx.build(&b);
                    idx.intersect_into(&a, &mut out);
                    out.len()
                })
            },
        );
    }
    group.finish();
}

fn bench_kway(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect_kway");
    // Power-law analogue of backward candidate segments: sizes fall off
    // roughly ×4 per constraint, like degree-sorted candidate sets.
    let sizes = [16_384usize, 4_096, 1_024, 256, 64];
    let sets: Vec<Vec<VertexId>> = sizes
        .iter()
        .enumerate()
        .map(|(i, &len)| mk_set(0xBEEF + i as u64, len, 65_536))
        .collect();
    let mut out = Vec::new();
    for k in [2usize, 3, 5] {
        let refs: Vec<&[VertexId]> = sets[..k].iter().map(|v| v.as_slice()).collect();
        group.bench_with_input(BenchmarkId::new("powerlaw", k), &k, |ben, _| {
            ben.iter(|| {
                intersect::intersect_multi_into(&refs, &mut out);
                out.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pairwise, bench_kway);
criterion_main!(benches);
