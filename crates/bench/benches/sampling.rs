//! Criterion: CPU sampling throughput of the two RW estimators across
//! three representative datasets (uniform, lexical, power-law).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gsword_core::prelude::*;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_sampling");
    const N: u64 = 2_000;
    group.throughput(Throughput::Elements(N));
    for name in ["yeast", "wordnet", "eu2005"] {
        let data = gsword_core::datasets::dataset(name);
        let Some(query) = QueryGraph::extract(&data, 8, 0xBE) else {
            continue;
        };
        let (cg, _) = build_candidate_graph(&data, &query, &BuildConfig::default());
        let order = quicksi_order(&query, &data);
        let ctx = QueryCtx::new(&cg, &order);
        for kind in [EstimatorKind::WanderJoin, EstimatorKind::Alley] {
            group.bench_with_input(BenchmarkId::new(kind.short(), name), &ctx, |b, ctx| {
                b.iter(|| {
                    gsword_core::estimators::with_estimator(kind, |est| {
                        gsword_core::estimators::run_sequential(ctx, est, N, 7)
                            .estimate
                            .value()
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
