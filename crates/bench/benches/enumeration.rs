//! Criterion: exact enumeration throughput — sequential vs parallel, and
//! the trawling extension-count path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gsword_core::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_enumeration(c: &mut Criterion) {
    let data = gsword_core::datasets::dataset("yeast");
    let query = QueryGraph::extract(&data, 6, 0xE0).expect("query");
    let (cg, _) = build_candidate_graph(&data, &query, &BuildConfig::default());
    let order = quicksi_order(&query, &data);
    let ctx = QueryCtx::new(&cg, &order);

    let mut group = c.benchmark_group("enumeration");
    group.sample_size(20);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("count_instances", threads),
            &threads,
            |b, &t| b.iter(|| count_instances_parallel(&ctx, EnumLimits::unlimited(), t).count),
        );
    }
    group.bench_function("trawl_once", |b| {
        let dist = DepthDist::new(3, ctx.len());
        let mut rng = SmallRng::seed_from_u64(9);
        b.iter(|| gsword_core::pipeline::trawl_once(&ctx, &Alley, &dist, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
