//! Criterion: overhead of the SIMT warp primitives and the coalescing
//! memory model — the per-instruction cost floor of the simulator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gsword_core::simt::memory::{warp_load, LaneAddr};
use gsword_core::simt::warp;
use gsword_core::simt::WarpSanitizer;
use gsword_core::simt::{KernelCounters, Region, WARP_SIZE};

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("warp_primitives");
    group.throughput(Throughput::Elements(1));

    group.bench_function("ballot", |b| {
        let mut ctr = KernelCounters::default();
        let san = WarpSanitizer::disabled();
        let mut pred = [false; WARP_SIZE];
        pred[7] = true;
        pred[21] = true;
        b.iter(|| warp::ballot(&mut ctr, &san, u32::MAX, &pred))
    });

    group.bench_function("reduce_max_by_key", |b| {
        let mut ctr = KernelCounters::default();
        let san = WarpSanitizer::disabled();
        let mut keys = [0.0f64; WARP_SIZE];
        for (i, k) in keys.iter_mut().enumerate() {
            *k = (i as f64 * 0.37) % 1.0;
        }
        b.iter(|| warp::reduce_max_by_key(&mut ctr, &san, u32::MAX, &keys))
    });

    group.bench_function("warp_load_coalesced", |b| {
        let mut ctr = KernelCounters::default();
        let san = WarpSanitizer::disabled();
        let mut addrs: [LaneAddr; WARP_SIZE] = [None; WARP_SIZE];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = Some((Region::LOCAL, 4096 + i));
        }
        b.iter(|| warp_load(&mut ctr, &san, &addrs))
    });

    group.bench_function("warp_load_scattered", |b| {
        let mut ctr = KernelCounters::default();
        let san = WarpSanitizer::disabled();
        let mut addrs: [LaneAddr; WARP_SIZE] = [None; WARP_SIZE];
        for (i, a) in addrs.iter_mut().enumerate() {
            *a = Some((Region::LOCAL, i * 131_072));
        }
        b.iter(|| warp_load(&mut ctr, &san, &addrs))
    });

    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
