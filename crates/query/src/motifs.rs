//! Standard motif constructors — the query shapes of graph-kernel and
//! motif-census workloads (the paper's motivating applications).

use gsword_graph::Label;

use crate::query::{QueryGraph, QueryVertex};

/// A path `v0 − v1 − … − v(k−1)` (the paper's *sparse* query shape).
pub fn path(labels: &[Label]) -> QueryGraph {
    assert!(labels.len() >= 2, "a path needs at least 2 vertices");
    let edges: Vec<(QueryVertex, QueryVertex)> = (1..labels.len())
        .map(|i| ((i - 1) as QueryVertex, i as QueryVertex))
        .collect();
    QueryGraph::new(labels.to_vec(), &edges).expect("paths are connected")
}

/// A cycle over `labels.len() ≥ 3` vertices.
pub fn cycle(labels: &[Label]) -> QueryGraph {
    let k = labels.len();
    assert!(k >= 3, "a cycle needs at least 3 vertices");
    let mut edges: Vec<(QueryVertex, QueryVertex)> = (1..k)
        .map(|i| ((i - 1) as QueryVertex, i as QueryVertex))
        .collect();
    edges.push((0, (k - 1) as QueryVertex));
    QueryGraph::new(labels.to_vec(), &edges).expect("cycles are connected")
}

/// A star: `labels[0]` is the hub, the rest are leaves.
pub fn star(labels: &[Label]) -> QueryGraph {
    assert!(labels.len() >= 2, "a star needs at least 2 vertices");
    let edges: Vec<(QueryVertex, QueryVertex)> =
        (1..labels.len()).map(|i| (0, i as QueryVertex)).collect();
    QueryGraph::new(labels.to_vec(), &edges).expect("stars are connected")
}

/// A clique over all vertices.
pub fn clique(labels: &[Label]) -> QueryGraph {
    let k = labels.len();
    assert!(k >= 2, "a clique needs at least 2 vertices");
    let mut edges = Vec::with_capacity(k * (k - 1) / 2);
    for i in 0..k {
        for j in i + 1..k {
            edges.push((i as QueryVertex, j as QueryVertex));
        }
    }
    QueryGraph::new(labels.to_vec(), &edges).expect("cliques are connected")
}

/// The triangle (3-clique) with uniform label.
pub fn triangle(label: Label) -> QueryGraph {
    clique(&[label; 3])
}

/// All classic small motifs with a uniform label, tagged with their
/// conventional names — convenient for census applications.
pub fn census_motifs(label: Label) -> Vec<(&'static str, QueryGraph)> {
    vec![
        ("edge", path(&[label; 2])),
        ("path-3", path(&[label; 3])),
        ("triangle", triangle(label)),
        ("path-4", path(&[label; 4])),
        ("star-4", star(&[label; 4])),
        ("cycle-4", cycle(&[label; 4])),
        ("tailed-triangle", {
            QueryGraph::new(vec![label; 4], &[(0, 1), (1, 2), (0, 2), (2, 3)]).expect("connected")
        }),
        ("diamond", {
            QueryGraph::new(vec![label; 4], &[(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)])
                .expect("connected")
        }),
        ("clique-4", clique(&[label; 4])),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryClass;

    #[test]
    fn path_shape() {
        let p = path(&[0, 1, 2, 3]);
        assert_eq!(p.num_vertices(), 4);
        assert_eq!(p.num_edges(), 3);
        assert_eq!(p.max_degree(), 2);
        assert_eq!(p.class(), QueryClass::Sparse);
        assert_eq!(p.label(2), 2);
    }

    #[test]
    fn cycle_shape() {
        let c = cycle(&[0; 5]);
        assert_eq!(c.num_edges(), 5);
        assert!(c.has_edge(0, 4));
        assert_eq!(c.max_degree(), 2);
    }

    #[test]
    fn star_shape() {
        let s = star(&[7, 1, 1, 1, 1]);
        assert_eq!(s.num_edges(), 4);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.class(), QueryClass::Dense);
        assert_eq!(s.label(0), 7);
    }

    #[test]
    fn clique_shape() {
        let k = clique(&[0; 5]);
        assert_eq!(k.num_edges(), 10);
        assert_eq!(k.max_degree(), 4);
    }

    #[test]
    fn census_list_is_distinct_and_connected() {
        let motifs = census_motifs(3);
        assert_eq!(motifs.len(), 9);
        for (name, m) in &motifs {
            assert!(m.num_vertices() >= 2, "{name}");
            assert!(m.label(0) == 3, "{name}");
        }
        // Edge counts distinguish the 4-vertex motifs.
        let by_name: std::collections::HashMap<_, _> = motifs
            .iter()
            .map(|(n, m)| (*n, (m.num_vertices(), m.num_edges())))
            .collect();
        assert_eq!(by_name["diamond"], (4, 5));
        assert_eq!(by_name["clique-4"], (4, 6));
        assert_eq!(by_name["tailed-triangle"], (4, 4));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_rejected() {
        cycle(&[0, 1]);
    }
}
