//! Query graph serialization in the same `t/v/e` text format as data
//! graphs — query workloads can be saved and replayed across runs.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use gsword_graph::{GraphError, Label};

use crate::query::{QueryGraph, QueryVertex};

/// Parse a query graph from `t/v/e` text.
pub fn read_query<R: Read>(reader: R) -> Result<QueryGraph, GraphError> {
    let reader = BufReader::new(reader);
    let mut labels: Vec<Label> = Vec::new();
    let mut edges: Vec<(QueryVertex, QueryVertex)> = Vec::new();
    let mut declared = 0usize;
    let mut line_no = 0usize;
    for line in reader.lines() {
        line_no += 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let parse_err = |message: &str| GraphError::Parse {
            line: line_no,
            message: message.to_string(),
        };
        match it.next().unwrap() {
            "t" => {
                declared = it
                    .next()
                    .ok_or_else(|| parse_err("missing vertex count"))?
                    .parse()
                    .map_err(|_| parse_err("bad vertex count"))?;
                if declared > QueryGraph::MAX_VERTICES {
                    return Err(parse_err("query too large"));
                }
                labels = vec![0; declared];
            }
            "v" => {
                let id: usize = it
                    .next()
                    .ok_or_else(|| parse_err("missing id"))?
                    .parse()
                    .map_err(|_| parse_err("bad id"))?;
                let label: Label = it
                    .next()
                    .ok_or_else(|| parse_err("missing label"))?
                    .parse()
                    .map_err(|_| parse_err("bad label"))?;
                if id >= declared {
                    return Err(parse_err("vertex id exceeds declared count"));
                }
                labels[id] = label;
            }
            "e" => {
                let u: QueryVertex = it
                    .next()
                    .ok_or_else(|| parse_err("missing endpoint"))?
                    .parse()
                    .map_err(|_| parse_err("bad endpoint"))?;
                let v: QueryVertex = it
                    .next()
                    .ok_or_else(|| parse_err("missing endpoint"))?
                    .parse()
                    .map_err(|_| parse_err("bad endpoint"))?;
                edges.push((u, v));
            }
            _ => return Err(parse_err("unknown record tag")),
        }
    }
    QueryGraph::new(labels, &edges).ok_or(GraphError::Parse {
        line: line_no,
        message: "query is empty, disconnected, or has bad edges".to_string(),
    })
}

/// Serialize a query graph to `t/v/e` text.
pub fn write_query<W: Write>(query: &QueryGraph, writer: W) -> Result<(), GraphError> {
    let mut w = std::io::BufWriter::new(writer);
    writeln!(w, "t {} {}", query.num_vertices(), query.num_edges())?;
    for u in 0..query.num_vertices() as QueryVertex {
        writeln!(w, "v {} {} {}", u, query.label(u), query.degree(u))?;
    }
    for (u, v) in query.edges() {
        writeln!(w, "e {u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Load a query graph from a file.
pub fn load_query<P: AsRef<Path>>(path: P) -> Result<QueryGraph, GraphError> {
    read_query(std::fs::File::open(path)?)
}

/// Save a query graph to a file.
pub fn save_query<P: AsRef<Path>>(query: &QueryGraph, path: P) -> Result<(), GraphError> {
    write_query(query, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motifs;

    #[test]
    fn round_trip() {
        let q = motifs::cycle(&[0, 1, 2, 1]);
        let mut buf = Vec::new();
        write_query(&q, &mut buf).unwrap();
        let q2 = read_query(&buf[..]).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn rejects_disconnected() {
        let text = "t 3 1\nv 0 0 1\nv 1 0 1\nv 2 0 0\ne 0 1\n";
        assert!(read_query(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_oversized() {
        let text = "t 99 0\n";
        assert!(read_query(text.as_bytes()).is_err());
    }

    #[test]
    fn parses_hand_written() {
        let text = "# triangle\nt 3 3\nv 0 5 2\nv 1 5 2\nv 2 5 2\ne 0 1\ne 1 2\ne 0 2\n";
        let q = read_query(text.as_bytes()).unwrap();
        assert_eq!(q.num_edges(), 3);
        assert_eq!(q.label(0), 5);
    }
}
