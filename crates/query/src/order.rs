//! Matching orders (Definition 2) and their backward-neighbor tables.

use gsword_graph::GraphStorage;

use crate::query::{QueryGraph, QueryVertex};

/// Which ordering heuristic produced a [`MatchingOrder`] — compared in the
/// paper's appendix (Figures 20–25).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderKind {
    /// QuickSI-style: greedy by label selectivity and constraint count (the
    /// paper's default).
    QuickSi,
    /// G-CARE-style: BFS from the highest-degree query vertex.
    GCare,
}

/// A permutation `φ` of query vertices with connected prefixes, plus the
/// precomputed backward-neighbor table the samplers iterate over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingOrder {
    phi: Vec<QueryVertex>,
    pos: Vec<u8>,
    /// `backward[i]` = positions `j < i` such that `e(φ[j], φ[i])` is a
    /// query edge. Non-empty for every `i ≥ 1` (connected prefixes).
    backward: Vec<Vec<u8>>,
}

impl MatchingOrder {
    /// Build from an explicit permutation. Returns `None` when `phi` is not
    /// a permutation of the query vertices or some prefix is disconnected.
    pub fn new(query: &QueryGraph, phi: Vec<QueryVertex>) -> Option<Self> {
        let n = query.num_vertices();
        if phi.len() != n {
            return None;
        }
        let mut pos = vec![u8::MAX; n];
        for (i, &u) in phi.iter().enumerate() {
            if u as usize >= n || pos[u as usize] != u8::MAX {
                return None;
            }
            pos[u as usize] = i as u8;
        }
        let mut backward = Vec::with_capacity(n);
        for i in 0..n {
            let bw: Vec<u8> = (0..i)
                .filter(|&j| query.has_edge(phi[j], phi[i]))
                .map(|j| j as u8)
                .collect();
            if i > 0 && bw.is_empty() {
                return None; // disconnected prefix
            }
            backward.push(bw);
        }
        Some(MatchingOrder { phi, pos, backward })
    }

    /// Number of positions (= query vertices).
    #[inline]
    pub fn len(&self) -> usize {
        self.phi.len()
    }

    /// Whether the order is empty (never true for valid queries).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.phi.is_empty()
    }

    /// The query vertex matched at position `i` (`φ[i]`).
    #[inline]
    pub fn vertex_at(&self, i: usize) -> QueryVertex {
        self.phi[i]
    }

    /// The position at which query vertex `u` is matched.
    #[inline]
    pub fn position_of(&self, u: QueryVertex) -> usize {
        self.pos[u as usize] as usize
    }

    /// Positions `j < i` whose query vertices are adjacent to `φ[i]`.
    #[inline]
    pub fn backward_positions(&self, i: usize) -> &[u8] {
        &self.backward[i]
    }

    /// The full permutation.
    #[inline]
    pub fn phi(&self) -> &[QueryVertex] {
        &self.phi
    }
}

/// QuickSI-style order: start from the most selective labeled vertex, then
/// greedily extend with the neighbor that is most constrained (most backward
/// edges) and most selective (rarest label in the data graph).
pub fn quicksi_order<S: GraphStorage>(query: &QueryGraph, data: &S) -> MatchingOrder {
    let n = query.num_vertices();
    let freq = |u: QueryVertex| data.vertices_with_label(query.label(u)).len() as f64;

    let start = (0..n as QueryVertex)
        .min_by(|&a, &b| {
            let sa = freq(a) / (query.degree(a).max(1) as f64);
            let sb = freq(b) / (query.degree(b).max(1) as f64);
            sa.partial_cmp(&sb).unwrap()
        })
        .expect("non-empty query");

    greedy_order(query, start, |u, backward_edges| {
        // Lower is better: selective labels first, more constraints first.
        freq(u) / (backward_edges as f64)
    })
}

/// G-CARE-style order: BFS from the highest-degree query vertex.
pub fn gcare_order<S: GraphStorage>(query: &QueryGraph, _data: &S) -> MatchingOrder {
    let n = query.num_vertices();
    let start = (0..n as QueryVertex)
        .max_by_key(|&u| query.degree(u))
        .expect("non-empty query");
    greedy_order(query, start, |u, _backward_edges| {
        // BFS flavor: prefer high-degree vertices, no data-graph knowledge.
        -(query.degree(u) as f64)
    })
}

/// Build an order by repeatedly appending the connected vertex minimizing
/// `score(vertex, #backward_edges_into_prefix)`.
fn greedy_order<F: Fn(QueryVertex, usize) -> f64>(
    query: &QueryGraph,
    start: QueryVertex,
    score: F,
) -> MatchingOrder {
    let n = query.num_vertices();
    let mut phi = vec![start];
    let mut in_order = 1u32 << start;
    while phi.len() < n {
        let next = (0..n as QueryVertex)
            .filter(|&u| in_order & (1 << u) == 0)
            .filter(|&u| query.adjacency_mask(u) & in_order != 0)
            .min_by(|&a, &b| {
                let ba = (query.adjacency_mask(a) & in_order).count_ones() as usize;
                let bb = (query.adjacency_mask(b) & in_order).count_ones() as usize;
                score(a, ba)
                    .partial_cmp(&score(b, bb))
                    .unwrap()
                    .then(a.cmp(&b))
            })
            .expect("query is connected, so a frontier vertex always exists");
        phi.push(next);
        in_order |= 1 << next;
    }
    MatchingOrder::new(query, phi).expect("greedy construction keeps prefixes connected")
}

/// Convenience dispatcher over [`OrderKind`].
pub fn make_order<S: GraphStorage>(kind: OrderKind, query: &QueryGraph, data: &S) -> MatchingOrder {
    match kind {
        OrderKind::QuickSi => quicksi_order(query, data),
        OrderKind::GCare => gcare_order(query, data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsword_graph::{Graph, GraphBuilder};

    fn path_query() -> QueryGraph {
        QueryGraph::new(vec![0, 1, 2, 1], &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    fn small_data() -> Graph {
        let mut b = GraphBuilder::new();
        for l in [0, 1, 2, 1, 0, 1] {
            b.add_vertex(l);
        }
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 3)] {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn explicit_order_validates_permutation() {
        let q = path_query();
        assert!(MatchingOrder::new(&q, vec![0, 1, 2, 3]).is_some());
        assert!(MatchingOrder::new(&q, vec![0, 1, 1, 3]).is_none()); // dup
        assert!(MatchingOrder::new(&q, vec![0, 1, 2]).is_none()); // short
        assert!(MatchingOrder::new(&q, vec![0, 2, 1, 3]).is_none()); // prefix (0,2) disconnected
    }

    #[test]
    fn backward_positions_match_query_edges() {
        let q = path_query();
        let o = MatchingOrder::new(&q, vec![1, 0, 2, 3]).unwrap();
        assert_eq!(o.backward_positions(0), &[] as &[u8]);
        assert_eq!(o.backward_positions(1), &[0]); // 0 adj 1
        assert_eq!(o.backward_positions(2), &[0]); // 2 adj 1
        assert_eq!(o.backward_positions(3), &[2]); // 3 adj 2
        assert_eq!(o.position_of(2), 2);
        assert_eq!(o.vertex_at(2), 2);
    }

    #[test]
    fn quicksi_order_is_valid_and_deterministic() {
        let q = path_query();
        let g = small_data();
        let o1 = quicksi_order(&q, &g);
        let o2 = quicksi_order(&q, &g);
        assert_eq!(o1, o2);
        assert_eq!(o1.len(), 4);
        for i in 1..o1.len() {
            assert!(!o1.backward_positions(i).is_empty(), "prefix {i} connected");
        }
    }

    #[test]
    fn quicksi_starts_selective() {
        let q = path_query();
        let g = small_data();
        let o = quicksi_order(&q, &g);
        // Label 2 occurs once in the data graph — query vertex 2 is the most
        // selective start.
        assert_eq!(o.vertex_at(0), 2);
    }

    #[test]
    fn gcare_starts_at_max_degree() {
        let q = QueryGraph::new(vec![0; 4], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let g = small_data();
        let o = gcare_order(&q, &g);
        assert_eq!(o.vertex_at(0), 0);
        for i in 1..4 {
            assert!(!o.backward_positions(i).is_empty());
        }
    }

    #[test]
    fn orders_cover_all_vertices() {
        let q = QueryGraph::new(
            vec![0, 1, 0, 1, 0],
            &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)],
        )
        .unwrap();
        let g = small_data();
        for kind in [OrderKind::QuickSi, OrderKind::GCare] {
            let o = make_order(kind, &q, &g);
            let mut seen: Vec<_> = o.phi().to_vec();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3, 4], "{kind:?}");
        }
    }
}
