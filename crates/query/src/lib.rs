//! Query graphs, random-walk query extraction, and matching orders.
//!
//! Queries in the paper are connected, vertex-labeled graphs with 4, 8, or
//! 16 vertices, extracted from the data graph by random walks; *sparse*
//! queries have maximum degree < 3 (paths), *dense* queries are induced
//! subgraphs. The matching order (Definition 2) is the permutation of query
//! vertices the sampler follows; every position after the first must have at
//! least one backward neighbor so partial instances stay connected.

pub mod io;
pub mod motifs;
pub mod order;
pub mod query;

pub use order::{gcare_order, make_order, quicksi_order, MatchingOrder, OrderKind};
pub use query::{QueryClass, QueryGraph, QueryVertex};
