//! Connected, vertex-labeled query graphs and their random-walk extraction.

use gsword_graph::{GraphStorage, Label, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Index of a query vertex. Queries hold at most [`QueryGraph::MAX_VERTICES`]
/// vertices, so `u8` is ample and keeps per-sample state tiny.
pub type QueryVertex = u8;

/// Sparse vs dense classification used by the evaluation (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Maximum degree < 3 (the paper's definition of a sparse query).
    Sparse,
    /// Maximum degree ≥ 3.
    Dense,
}

/// A connected, vertex-labeled query graph.
///
/// Adjacency is stored as one bitmask per vertex (queries never exceed 32
/// vertices), giving `O(1)` edge probes and trivially cheap copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryGraph {
    labels: Vec<Label>,
    adj: Vec<u32>,
}

impl QueryGraph {
    /// Upper bound on query size (the paper evaluates up to 16; the bitmask
    /// representation supports 32).
    pub const MAX_VERTICES: usize = 32;

    /// Build a query graph from labels and an undirected edge list.
    ///
    /// Returns `None` if the graph is empty, too large, has out-of-range or
    /// self-loop edges, or is not connected.
    pub fn new(labels: Vec<Label>, edges: &[(QueryVertex, QueryVertex)]) -> Option<Self> {
        let n = labels.len();
        if n == 0 || n > Self::MAX_VERTICES {
            return None;
        }
        let mut adj = vec![0u32; n];
        for &(u, v) in edges {
            if u as usize >= n || v as usize >= n || u == v {
                return None;
            }
            adj[u as usize] |= 1 << v;
            adj[v as usize] |= 1 << u;
        }
        let q = QueryGraph { labels, adj };
        q.is_connected().then_some(q)
    }

    /// Number of query vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of query edges.
    pub fn num_edges(&self) -> usize {
        self.adj
            .iter()
            .map(|m| m.count_ones() as usize)
            .sum::<usize>()
            / 2
    }

    /// Label of query vertex `u`.
    #[inline]
    pub fn label(&self, u: QueryVertex) -> Label {
        self.labels[u as usize]
    }

    /// Degree of query vertex `u`.
    #[inline]
    pub fn degree(&self, u: QueryVertex) -> usize {
        self.adj[u as usize].count_ones() as usize
    }

    /// Whether the query edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: QueryVertex, v: QueryVertex) -> bool {
        self.adj[u as usize] & (1 << v) != 0
    }

    /// Adjacency bitmask of `u` (bit `v` set ⇔ edge `(u, v)`).
    #[inline]
    pub fn adjacency_mask(&self, u: QueryVertex) -> u32 {
        self.adj[u as usize]
    }

    /// Iterator over the neighbors of `u`.
    pub fn neighbors(&self, u: QueryVertex) -> impl Iterator<Item = QueryVertex> + '_ {
        let mask = self.adj[u as usize];
        (0..self.num_vertices() as QueryVertex).filter(move |&v| mask & (1 << v) != 0)
    }

    /// Iterator over undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (QueryVertex, QueryVertex)> + '_ {
        (0..self.num_vertices() as QueryVertex).flat_map(move |u| {
            self.neighbors(u)
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as QueryVertex)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Sparse/dense classification per the paper (max degree < 3 ⇒ sparse).
    pub fn class(&self) -> QueryClass {
        if self.max_degree() < 3 {
            QueryClass::Sparse
        } else {
            QueryClass::Dense
        }
    }

    fn is_connected(&self) -> bool {
        let n = self.num_vertices();
        let mut seen = 1u32;
        let mut stack = vec![0 as QueryVertex];
        while let Some(u) = stack.pop() {
            let fresh = self.adj[u as usize] & !seen;
            seen |= fresh;
            for v in 0..n as QueryVertex {
                if fresh & (1 << v) != 0 {
                    stack.push(v);
                }
            }
        }
        seen.count_ones() as usize == n
    }

    /// Extract a *dense* query with `k` vertices from `data` by random walk:
    /// collect `k` distinct vertices along a walk and take the induced
    /// subgraph (the paper's extraction method). Returns `None` if `data`
    /// has no component with `k` vertices reachable in the attempt budget.
    pub fn extract<S: GraphStorage>(data: &S, k: usize, seed: u64) -> Option<Self> {
        Self::extract_class(data, k, seed, None)
    }

    /// Extract a *sparse* query (a path, max degree 2) with `k` vertices via
    /// a self-avoiding walk, keeping only the walk edges.
    pub fn extract_sparse<S: GraphStorage>(data: &S, k: usize, seed: u64) -> Option<Self> {
        assert!((2..=Self::MAX_VERTICES).contains(&k));
        let mut rng = SmallRng::seed_from_u64(seed);
        'attempt: for _ in 0..512 {
            let mut walk: Vec<VertexId> = Vec::with_capacity(k);
            let start = rng.gen_range(0..data.num_vertices() as VertexId);
            walk.push(start);
            while walk.len() < k {
                let cur = *walk.last().unwrap();
                let nbrs = data.neighbors_ref(cur);
                if nbrs.is_empty() {
                    continue 'attempt;
                }
                // A few tries to step to an unvisited neighbor.
                let mut stepped = false;
                for _ in 0..8 {
                    let v = nbrs[rng.gen_range(0..nbrs.len())];
                    if !walk.contains(&v) {
                        walk.push(v);
                        stepped = true;
                        break;
                    }
                }
                if !stepped {
                    continue 'attempt;
                }
            }
            let labels: Vec<Label> = walk.iter().map(|&v| data.label(v)).collect();
            let edges: Vec<(QueryVertex, QueryVertex)> = (1..k)
                .map(|i| ((i - 1) as QueryVertex, i as QueryVertex))
                .collect();
            if let Some(q) = QueryGraph::new(labels, &edges) {
                return Some(q);
            }
        }
        None
    }

    /// Extract a query and insist on the given class (retrying extraction
    /// until the induced subgraph matches). `None` target accepts anything.
    pub fn extract_class<S: GraphStorage>(
        data: &S,
        k: usize,
        seed: u64,
        want: Option<QueryClass>,
    ) -> Option<Self> {
        assert!((2..=Self::MAX_VERTICES).contains(&k));
        if data.num_vertices() < k {
            return None;
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        'attempt: for _ in 0..1024 {
            // Random walk collecting k distinct vertices (with restarts when
            // stuck at a visited pocket).
            let mut verts: Vec<VertexId> = Vec::with_capacity(k);
            let start = rng.gen_range(0..data.num_vertices() as VertexId);
            verts.push(start);
            let mut cur = start;
            let mut stuck = 0;
            while verts.len() < k {
                let nbrs = data.neighbors_ref(cur);
                if nbrs.is_empty() {
                    continue 'attempt;
                }
                let v = nbrs[rng.gen_range(0..nbrs.len())];
                if !verts.contains(&v) {
                    verts.push(v);
                    stuck = 0;
                } else {
                    stuck += 1;
                    if stuck > 32 {
                        continue 'attempt;
                    }
                }
                cur = v;
            }
            // Induced subgraph.
            let labels: Vec<Label> = verts.iter().map(|&v| data.label(v)).collect();
            let mut edges = Vec::new();
            for i in 0..k {
                for j in i + 1..k {
                    if data.has_edge(verts[i], verts[j]) {
                        edges.push((i as QueryVertex, j as QueryVertex));
                    }
                }
            }
            if let Some(q) = QueryGraph::new(labels, &edges) {
                if want.is_none() || want == Some(q.class()) {
                    return Some(q);
                }
            }
        }
        None
    }

    /// Generate the paper's per-dataset query workload: `count` queries of
    /// `k` vertices. For `k ≥ 8`, half are sparse and half dense (Section
    /// 6.1); for `k = 4` the class is unconstrained.
    pub fn workload<S: GraphStorage>(data: &S, k: usize, count: usize, seed: u64) -> Vec<Self> {
        let mut out = Vec::with_capacity(count);
        let mut attempt_seed = seed;
        while out.len() < count {
            let idx = out.len();
            let q = if k >= 8 {
                if idx % 2 == 0 {
                    QueryGraph::extract_sparse(data, k, attempt_seed)
                        .or_else(|| QueryGraph::extract(data, k, attempt_seed ^ 0xABCD))
                } else {
                    QueryGraph::extract_class(data, k, attempt_seed, Some(QueryClass::Dense))
                        .or_else(|| QueryGraph::extract(data, k, attempt_seed ^ 0xABCD))
                }
            } else {
                QueryGraph::extract(data, k, attempt_seed)
            };
            match q {
                Some(q) => out.push(q),
                None => {
                    // Pathological data graph for this size; give up rather
                    // than loop forever. Callers treat shorter workloads as
                    // "dataset cannot host queries of this size".
                    break;
                }
            }
            attempt_seed = attempt_seed.wrapping_add(0x9E3779B97F4A7C15);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsword_graph::{Graph, GraphBuilder};

    fn ring(n: usize) -> Graph {
        let mut b = GraphBuilder::with_vertices(n);
        for v in 0..n {
            b.add_edge(v as VertexId, ((v + 1) % n) as VertexId);
        }
        b.build().unwrap()
    }

    #[test]
    fn new_rejects_disconnected() {
        assert!(QueryGraph::new(vec![0, 0, 0], &[(0, 1)]).is_none());
        assert!(QueryGraph::new(vec![0, 0, 0], &[(0, 1), (1, 2)]).is_some());
    }

    #[test]
    fn new_rejects_self_loops_and_out_of_range() {
        assert!(QueryGraph::new(vec![0, 0], &[(0, 0)]).is_none());
        assert!(QueryGraph::new(vec![0, 0], &[(0, 5)]).is_none());
        assert!(QueryGraph::new(vec![], &[]).is_none());
    }

    #[test]
    fn triangle_properties() {
        let q = QueryGraph::new(vec![1, 2, 3], &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(q.num_vertices(), 3);
        assert_eq!(q.num_edges(), 3);
        assert_eq!(q.degree(0), 2);
        assert!(q.has_edge(2, 0));
        assert_eq!(q.edges().collect::<Vec<_>>(), vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(q.class(), QueryClass::Sparse); // max degree 2
    }

    #[test]
    fn star_is_dense() {
        let q = QueryGraph::new(vec![0; 4], &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(q.class(), QueryClass::Dense);
    }

    #[test]
    fn extract_is_connected_and_label_consistent() {
        let g = ring(64);
        let q = QueryGraph::extract(&g, 5, 42).unwrap();
        assert_eq!(q.num_vertices(), 5);
        // Ring has one label per construction default (0).
        assert!(q.edges().count() >= 4);
    }

    #[test]
    fn extract_sparse_is_path() {
        let g = gsword_graph::gen::barabasi_albert(500, 4, vec![0; 500], 3);
        let q = QueryGraph::extract_sparse(&g, 8, 9).unwrap();
        assert_eq!(q.num_vertices(), 8);
        assert_eq!(q.num_edges(), 7);
        assert!(q.max_degree() <= 2);
        assert_eq!(q.class(), QueryClass::Sparse);
    }

    #[test]
    fn extract_fails_gracefully_on_tiny_graph() {
        let g = ring(3);
        assert!(QueryGraph::extract(&g, 8, 1).is_none());
    }

    #[test]
    fn workload_mixes_classes_for_large_queries() {
        let g = gsword_graph::gen::barabasi_albert(2000, 6, vec![0; 2000], 5);
        let w = QueryGraph::workload(&g, 8, 10, 77);
        assert_eq!(w.len(), 10);
        let sparse = w.iter().filter(|q| q.class() == QueryClass::Sparse).count();
        assert!(sparse >= 3, "expected a sparse share, got {sparse}/10");
        assert!(
            sparse <= 7,
            "expected a dense share, got {}/10",
            10 - sparse
        );
    }

    #[test]
    fn extraction_is_deterministic() {
        let g = gsword_graph::gen::erdos_renyi(300, 1200, vec![0; 300], 8);
        assert_eq!(QueryGraph::extract(&g, 6, 5), QueryGraph::extract(&g, 6, 5));
    }
}
