//! The triple-CSR candidate graph structure and its lookup API.

use gsword_graph::VertexId;
use gsword_query::QueryVertex;

/// Address-space region of a candidate-graph array — used by the SIMT memory
/// model to reason about spatial locality of accesses (Example 4 / Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// The global candidate array.
    Global,
    /// The per-edge candidate array (second CSR).
    Cand,
    /// The local candidate lists (third CSR).
    Local,
}

/// Candidate graph in the paper's triple-CSR format (Fig. 4).
///
/// All arrays are immutable after construction; segments are sorted so
/// membership probes are `O(log n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateGraph {
    pub(crate) num_query_vertices: usize,
    /// Global candidate sets: `global[global_off[u]..global_off[u+1]]`,
    /// sorted.
    pub(crate) global_off: Vec<usize>,
    pub(crate) global: Vec<VertexId>,
    /// First CSR — directed query edges: the out-edges of query vertex `u`
    /// are `edge_dst[edge_off[u]..edge_off[u+1]]`.
    pub(crate) edge_off: Vec<usize>,
    pub(crate) edge_dst: Vec<QueryVertex>,
    /// Second CSR — candidates of the source vertex per directed edge `k`:
    /// `cand_vtx[cand_off[k]..cand_off[k+1]]`, sorted.
    pub(crate) cand_off: Vec<usize>,
    pub(crate) cand_vtx: Vec<VertexId>,
    /// Third CSR — local candidate list per `(edge, candidate)` tuple `t`:
    /// `local[local_off[t]..local_off[t+1]]`, sorted.
    pub(crate) local_off: Vec<usize>,
    pub(crate) local: Vec<VertexId>,
}

impl CandidateGraph {
    /// Number of query vertices.
    #[inline]
    pub fn num_query_vertices(&self) -> usize {
        self.num_query_vertices
    }

    /// Number of directed query edges stored (2× the undirected count).
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.edge_dst.len()
    }

    /// The global candidate set `C(u)`, sorted by data-vertex id.
    #[inline]
    pub fn global(&self, u: QueryVertex) -> &[VertexId] {
        &self.global[self.global_off[u as usize]..self.global_off[u as usize + 1]]
    }

    /// Like [`CandidateGraph::global`], also returning the segment's element
    /// offset within the backing array (for the SIMT memory model).
    #[inline]
    pub fn global_with_addr(&self, u: QueryVertex) -> (&[VertexId], usize) {
        let s = self.global_off[u as usize];
        (&self.global[s..self.global_off[u as usize + 1]], s)
    }

    /// Index of the directed query edge `u → u'`, if it exists.
    #[inline]
    pub fn edge_index(&self, u: QueryVertex, u2: QueryVertex) -> Option<usize> {
        let s = self.edge_off[u as usize];
        let e = self.edge_off[u as usize + 1];
        self.edge_dst[s..e]
            .iter()
            .position(|&d| d == u2)
            .map(|p| s + p)
    }

    /// Destination query vertex of directed edge `k`.
    #[inline]
    pub fn edge_dst(&self, k: usize) -> QueryVertex {
        self.edge_dst[k]
    }

    /// The local candidate set `C(u, u', v)` for directed edge `k = (u→u')`
    /// and candidate `v ∈ C(u)`. Empty when `v` is not a stored candidate or
    /// has no compatible neighbors.
    #[inline]
    pub fn local(&self, k: usize, v: VertexId) -> &[VertexId] {
        self.local_with_addr(k, v).0
    }

    /// Like [`CandidateGraph::local`], also returning the element offset of
    /// the segment within the backing `local` array.
    pub fn local_with_addr(&self, k: usize, v: VertexId) -> (&[VertexId], usize) {
        let cs = self.cand_off[k];
        let ce = self.cand_off[k + 1];
        match self.cand_vtx[cs..ce].binary_search(&v) {
            Ok(p) => {
                let t = cs + p;
                let s = self.local_off[t];
                (&self.local[s..self.local_off[t + 1]], s)
            }
            Err(_) => (&[], 0),
        }
    }

    /// Whether the candidate-graph edge `(v ∈ C(u)) — (v' ∈ C(u'))` exists
    /// for query edge `u → u'` with directed index `k`. `O(log)` probes.
    #[inline]
    pub fn has_local(&self, k: usize, v: VertexId, v2: VertexId) -> bool {
        self.local(k, v).binary_search(&v2).is_ok()
    }

    /// Total byte footprint of the structure — the quantity the paper's
    /// Table 3 "CPU-GPU transfer" column is driven by.
    pub fn byte_size(&self) -> usize {
        use std::mem::size_of;
        (self.global_off.len() + self.edge_off.len() + self.cand_off.len() + self.local_off.len())
            * size_of::<usize>()
            + (self.global.len() + self.cand_vtx.len() + self.local.len()) * size_of::<VertexId>()
            + self.edge_dst.len() * size_of::<QueryVertex>()
    }

    /// Sum of all local candidate list lengths (a proxy for candidate-graph
    /// edge count).
    pub fn num_local_entries(&self) -> usize {
        self.local.len()
    }

    /// Check internal invariants (sorted segments, consistent offsets).
    /// Used by tests and debug assertions.
    pub fn validate_invariants(&self) -> Result<(), String> {
        let n = self.num_query_vertices;
        if self.global_off.len() != n + 1 || self.edge_off.len() != n + 1 {
            return Err("offset arrays must have n+1 entries".into());
        }
        if *self.global_off.last().unwrap() != self.global.len() {
            return Err("global offsets do not cover the global array".into());
        }
        if *self.edge_off.last().unwrap() != self.edge_dst.len() {
            return Err("edge offsets do not cover the edge array".into());
        }
        if self.cand_off.len() != self.edge_dst.len() + 1
            || *self.cand_off.last().unwrap() != self.cand_vtx.len()
        {
            return Err("cand CSR inconsistent".into());
        }
        if self.local_off.len() != self.cand_vtx.len() + 1
            || *self.local_off.last().unwrap() != self.local.len()
        {
            return Err("local CSR inconsistent".into());
        }
        for u in 0..n {
            let seg = &self.global[self.global_off[u]..self.global_off[u + 1]];
            if !seg.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("global segment of u{u} not strictly sorted"));
            }
        }
        for k in 0..self.edge_dst.len() {
            let seg = &self.cand_vtx[self.cand_off[k]..self.cand_off[k + 1]];
            if !seg.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("cand segment of edge {k} not strictly sorted"));
            }
        }
        for t in 0..self.cand_vtx.len() {
            let seg = &self.local[self.local_off[t]..self.local_off[t + 1]];
            if !seg.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("local segment of tuple {t} not strictly sorted"));
            }
        }
        Ok(())
    }
}
