//! Candidate graph construction and the triple-CSR format of gSWORD Fig. 4.
//!
//! A candidate graph (Definition 5) stores, for every query vertex `u`, the
//! global candidate set `C(u)`, and for every query edge `e(u, u')` and
//! candidate `v ∈ C(u)`, the local candidate set
//! `C(u, u', v) = N(v) ∩ C(u')`. The samplers draw exclusively from these
//! sets, which shrinks the sample space versus walking the data graph
//! directly (evaluated in the paper's appendix, Figures 26–28).
//!
//! The storage layout follows the paper: a first CSR over query edges, a
//! second CSR listing the candidates of the edge's source vertex, and a
//! third CSR holding each candidate's local candidate list.

pub mod build;
pub mod format;

pub use build::{build_candidate_graph, BuildConfig, BuildStats};
pub use format::{CandidateGraph, Region};
