//! Candidate graph construction: label/degree/NLF filters, fixpoint pruning,
//! and assembly of the triple-CSR structure.

use std::time::Instant;

use gsword_graph::intersect::{self, BitmapIndex};
use gsword_graph::{GraphStorage, VertexId};
use gsword_query::{QueryGraph, QueryVertex};

use crate::format::CandidateGraph;

/// Configuration of the candidate filters.
///
/// The default is the paper-faithful label + degree filter: the candidate
/// graph deliberately keeps vertices that participate in no instance
/// (Fig. 2's example keeps `v2` and `e(v2, v6)`), which is what leaves RW
/// samples exposed to dead ends — the underestimation regime Section 5
/// exists for. [`BuildConfig::strong`] adds NLF filtering and fixpoint
/// pruning (a CECI-style near-exact candidate graph) as an extension;
/// [`BuildConfig::unfiltered`] drops everything but the label filter — the
/// stand-in for "sampling directly on the data graph" in the appendix
/// comparison (Figures 26–28).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildConfig {
    /// Require `deg_G(v) ≥ deg_q(u)`.
    pub degree_filter: bool,
    /// Neighbor-label-frequency filter: for every label `l`, `v` must have
    /// at least as many `l`-labeled neighbors as `u` does in the query.
    pub nlf_filter: bool,
    /// Fixpoint pruning rounds: drop `v` from `C(u)` when some query edge
    /// `(u, u')` leaves it without any compatible neighbor.
    pub prune_rounds: u32,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            degree_filter: true,
            nlf_filter: false,
            prune_rounds: 0,
        }
    }
}

impl BuildConfig {
    /// The "no candidate graph" configuration used by the appendix
    /// comparison: label filter only, no pruning.
    pub fn unfiltered() -> Self {
        BuildConfig {
            degree_filter: false,
            nlf_filter: false,
            prune_rounds: 0,
        }
    }

    /// Aggressive filtering: NLF plus fixpoint pruning to a near-exact
    /// candidate graph. Not what the paper evaluates (it hides the
    /// underestimation regime), but a useful extension when accuracy per
    /// sample matters more than build time.
    pub fn strong() -> Self {
        BuildConfig {
            degree_filter: true,
            nlf_filter: true,
            prune_rounds: 2,
        }
    }
}

/// Timing and size observations from one construction — the raw material of
/// the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildStats {
    /// Wall-clock construction time in milliseconds.
    pub construction_ms: f64,
    /// Structure footprint in bytes.
    pub bytes: usize,
    /// Modeled CPU→GPU transfer time in milliseconds assuming a PCIe 3.0
    /// x16 effective bandwidth of 12 GB/s (the paper's RTX 2080 Ti setup).
    pub transfer_ms: f64,
}

const PCIE_BYTES_PER_MS: f64 = 12.0e9 / 1e3;

/// Minimum pivot-set size before a [`BitmapIndex`] build can pay off: below
/// this, adaptive merge/gallop beats the `O(|pivot| + span/64)` build.
const BITMAP_MIN_PIVOT: usize = 64;

/// Minimum number of probe sets (candidates of the source side) sharing one
/// pivot before the bitmap build amortizes.
const BITMAP_MIN_REUSE: usize = 8;

/// Build the candidate graph for `query` on `data` under `config`.
///
/// The result is *sound*: every embedding of the query in the data graph is
/// contained in the candidate graph (tested by exhaustive comparison against
/// a naive matcher).
pub fn build_candidate_graph<S: GraphStorage>(
    data: &S,
    query: &QueryGraph,
    config: &BuildConfig,
) -> (CandidateGraph, BuildStats) {
    let t0 = Instant::now();
    let n = query.num_vertices();

    // Per-query-vertex neighbor label frequency (NLF) signatures.
    let label_count = data.label_count().max(
        (0..n as QueryVertex)
            .map(|u| query.label(u) as usize + 1)
            .max()
            .unwrap_or(0),
    );
    let nlf: Vec<Vec<u16>> = (0..n as QueryVertex)
        .map(|u| {
            let mut f = vec![0u16; label_count];
            for w in query.neighbors(u) {
                f[query.label(w) as usize] += 1;
            }
            f
        })
        .collect();

    // Global candidates with label (+degree, +NLF) filters.
    let mut global_sets: Vec<Vec<VertexId>> = (0..n as QueryVertex)
        .map(|u| {
            data.vertices_with_label(query.label(u))
                .iter()
                .copied()
                .filter(|&v| !config.degree_filter || data.degree(v) >= query.degree(u))
                .filter(|&v| !config.nlf_filter || nlf_pass(data, v, &nlf[u as usize]))
                .collect()
        })
        .collect();

    // Fixpoint pruning: v survives in C(u) iff every query edge (u,u') gives
    // it at least one neighbor in C(u').
    let mut nv: Vec<VertexId> = Vec::new();
    for _ in 0..config.prune_rounds {
        let mut changed = false;
        for u in 0..n as QueryVertex {
            let mut kept = Vec::with_capacity(global_sets[u as usize].len());
            for &v in &global_sets[u as usize] {
                // N(v) is invariant across the query-neighbor loop below:
                // decode it once into a reused buffer instead of streaming
                // (and re-decoding) the adjacency once per query edge.
                nv.clear();
                data.neighbors_into(v, &mut nv);
                let ok = query.neighbors(u).all(|u2| {
                    let cu2 = &global_sets[u2 as usize];
                    nv.iter().any(|&w| intersect::member(cu2, w))
                });
                if ok {
                    kept.push(v);
                }
            }
            if kept.len() != global_sets[u as usize].len() {
                changed = true;
                global_sets[u as usize] = kept;
            }
        }
        if !changed {
            break;
        }
    }

    // Assemble the triple CSR.
    let mut global_off = Vec::with_capacity(n + 1);
    global_off.push(0);
    let mut global = Vec::new();
    for set in &global_sets {
        global.extend_from_slice(set);
        global_off.push(global.len());
    }

    let mut edge_off = Vec::with_capacity(n + 1);
    edge_off.push(0);
    let mut edge_dst: Vec<QueryVertex> = Vec::new();
    for u in 0..n as QueryVertex {
        for u2 in query.neighbors(u) {
            edge_dst.push(u2);
        }
        edge_off.push(edge_dst.len());
    }

    let mut cand_off = Vec::with_capacity(edge_dst.len() + 1);
    cand_off.push(0);
    let mut cand_vtx: Vec<VertexId> = Vec::new();
    let mut local_off = vec![0usize];
    let mut local: Vec<VertexId> = Vec::new();
    let mut pivot_index = BitmapIndex::new();
    for u in 0..n {
        for &dst in &edge_dst[edge_off[u]..edge_off[u + 1]] {
            let u2 = dst as usize;
            let cu2 = &global_sets[u2];
            // The pivot C(u') is intersected against N(v) for *every*
            // v ∈ C(u), so for large pivots with enough reuse one bitmap
            // build amortizes to O(1) membership per neighbor. Small or
            // rarely-reused pivots fall back to the adaptive pairwise
            // strategy (merge / gallop by skew). Every strategy produces
            // the same sorted local sets — only the cost differs.
            let use_bitmap =
                cu2.len() >= BITMAP_MIN_PIVOT && global_sets[u].len() >= BITMAP_MIN_REUSE;
            if use_bitmap {
                pivot_index.build(cu2);
            }
            for &v in &global_sets[u] {
                cand_vtx.push(v);
                if use_bitmap {
                    // Stream-decoded equivalent of the slice bitmap path:
                    // neighbors arrive ascending, so pushes stay sorted.
                    data.for_each_neighbor(v, |w| {
                        if pivot_index.contains(w) {
                            local.push(w);
                        }
                        true
                    });
                } else {
                    data.intersect_neighbors_into(v, cu2, &mut local);
                }
                local_off.push(local.len());
            }
            cand_off.push(cand_vtx.len());
        }
    }

    let cg = CandidateGraph {
        num_query_vertices: n,
        global_off,
        global,
        edge_off,
        edge_dst,
        cand_off,
        cand_vtx,
        local_off,
        local,
    };
    debug_assert_eq!(cg.validate_invariants(), Ok(()));
    let construction_ms = t0.elapsed().as_secs_f64() * 1e3;
    let bytes = cg.byte_size();
    let stats = BuildStats {
        construction_ms,
        bytes,
        transfer_ms: bytes as f64 / PCIE_BYTES_PER_MS,
    };
    (cg, stats)
}

fn nlf_pass<S: GraphStorage>(data: &S, v: VertexId, required: &[u16]) -> bool {
    let mut have = vec![0u16; required.len()];
    data.for_each_neighbor(v, |w| {
        let l = data.label(w) as usize;
        if l < have.len() {
            have[l] += 1;
        }
        true
    });
    required.iter().zip(&have).all(|(r, h)| h >= r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsword_graph::{Graph, GraphBuilder};

    /// The running example of the paper (Figure 2): query q with 5 vertices
    /// labeled A,B,A,C,B and the data graph with 9 vertices. We reconstruct
    /// a consistent instance: labels A=0, B=1, C=2.
    fn paper_like() -> (Graph, QueryGraph) {
        let mut b = GraphBuilder::new();
        // v1..v9 -> ids 0..8; labels from Figure 2 reading: v1,v2: A; v3..v6: B; v7: C; v8: B? …
        // The figure is partially specified; we use a graph with one known
        // embedding and extra near-miss structure.
        for l in [0, 0, 1, 1, 1, 1, 2, 1, 2] {
            b.add_vertex(l);
        }
        for (u, v) in [
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 4),
            (1, 5),
            (2, 3),
            (2, 6),
            (2, 8),
            (3, 6),
            (6, 7),
            (3, 7),
        ] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        // Query: u1(A)-u2(B), u1-u3(B), u2-u3, u2-u4(C), u4-u5(B)
        let q = QueryGraph::new(
            vec![0, 1, 1, 2, 1],
            &[(0, 1), (0, 2), (1, 2), (1, 3), (3, 4)],
        )
        .unwrap();
        (g, q)
    }

    /// Exhaustive embedding enumeration straight on the data graph — the
    /// independent oracle for soundness tests.
    fn naive_embeddings(data: &Graph, query: &QueryGraph) -> Vec<Vec<VertexId>> {
        let n = query.num_vertices();
        let mut out = Vec::new();
        let mut partial: Vec<VertexId> = Vec::with_capacity(n);
        fn rec(
            data: &Graph,
            query: &QueryGraph,
            partial: &mut Vec<VertexId>,
            out: &mut Vec<Vec<VertexId>>,
        ) {
            let d = partial.len();
            if d == query.num_vertices() {
                out.push(partial.clone());
                return;
            }
            for v in 0..data.num_vertices() as VertexId {
                if partial.contains(&v) || data.label(v) != query.label(d as QueryVertex) {
                    continue;
                }
                let ok = (0..d).all(|j| {
                    !query.has_edge(j as QueryVertex, d as QueryVertex)
                        || data.has_edge(partial[j], v)
                });
                if ok {
                    partial.push(v);
                    rec(data, query, partial, out);
                    partial.pop();
                }
            }
        }
        rec(data, query, &mut partial, &mut out);
        out
    }

    #[test]
    fn invariants_hold() {
        let (g, q) = paper_like();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        cg.validate_invariants().unwrap();
    }

    #[test]
    fn soundness_every_embedding_is_covered() {
        let (g, q) = paper_like();
        for cfg in [BuildConfig::default(), BuildConfig::unfiltered()] {
            let (cg, _) = build_candidate_graph(&g, &q, &cfg);
            let embeddings = naive_embeddings(&g, &q);
            assert!(!embeddings.is_empty(), "test graph must contain instances");
            for emb in &embeddings {
                for u in 0..q.num_vertices() as QueryVertex {
                    assert!(
                        cg.global(u).binary_search(&emb[u as usize]).is_ok(),
                        "embedding vertex {} missing from C({u}) under {cfg:?}",
                        emb[u as usize]
                    );
                }
                for (u, u2) in q.edges() {
                    let k = cg.edge_index(u, u2).unwrap();
                    assert!(
                        cg.has_local(k, emb[u as usize], emb[u2 as usize]),
                        "embedding edge missing from local set under {cfg:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn local_sets_are_neighbor_subsets() {
        let (g, q) = paper_like();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        for (u, u2) in q.edges() {
            let k = cg.edge_index(u, u2).unwrap();
            for &v in cg.global(u) {
                for &v2 in cg.local(k, v) {
                    assert!(g.has_edge(v, v2));
                    assert!(cg.global(u2).binary_search(&v2).is_ok());
                }
            }
        }
    }

    #[test]
    fn pruning_shrinks_or_preserves() {
        let (g, q) = paper_like();
        let (unpruned, _) = build_candidate_graph(
            &g,
            &q,
            &BuildConfig {
                prune_rounds: 0,
                ..BuildConfig::default()
            },
        );
        let (pruned, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        for u in 0..q.num_vertices() as QueryVertex {
            assert!(pruned.global(u).len() <= unpruned.global(u).len());
        }
    }

    #[test]
    fn unfiltered_is_superset() {
        let (g, q) = paper_like();
        let (filt, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        let (unfilt, _) = build_candidate_graph(&g, &q, &BuildConfig::unfiltered());
        for u in 0..q.num_vertices() as QueryVertex {
            for &v in filt.global(u) {
                assert!(unfilt.global(u).binary_search(&v).is_ok());
            }
        }
        assert!(unfilt.byte_size() >= filt.byte_size());
    }

    #[test]
    fn missing_edge_index_and_local() {
        let (g, q) = paper_like();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::default());
        assert!(cg.edge_index(0, 3).is_none(), "u1-u4 is not a query edge");
        let k = cg.edge_index(0, 1).unwrap();
        assert!(cg.local(k, 9999).is_empty(), "unknown candidate → empty");
    }

    #[test]
    fn build_stats_populated() {
        let (g, q) = paper_like();
        let (cg, stats) = build_candidate_graph(&g, &q, &BuildConfig::default());
        assert_eq!(stats.bytes, cg.byte_size());
        assert!(stats.construction_ms >= 0.0);
        assert!(stats.transfer_ms > 0.0);
    }

    #[test]
    fn bitmap_and_pairwise_paths_agree() {
        // Force both local-set assembly paths over the same inputs: a data
        // graph big enough that some pivot clears BITMAP_MIN_PIVOT with
        // BITMAP_MIN_REUSE probes, cross-checked per candidate against the
        // adaptive pairwise intersection.
        let mut b = GraphBuilder::new();
        for i in 0..200u32 {
            b.add_vertex((i % 2) as gsword_graph::Label);
        }
        for i in 0..200u32 {
            for j in (i + 1)..200u32 {
                if (i * 7 + j * 13) % 3 == 0 {
                    b.add_edge(i, j);
                }
            }
        }
        let g = b.build().unwrap();
        let q = QueryGraph::new(vec![0, 1], &[(0, 1)]).unwrap();
        let (cg, _) = build_candidate_graph(&g, &q, &BuildConfig::unfiltered());
        for (u, u2) in q.edges() {
            let k = cg.edge_index(u, u2).unwrap();
            for &v in cg.global(u) {
                let mut want = Vec::new();
                intersect::intersect_into(g.neighbors(v), cg.global(u2), &mut want);
                assert_eq!(cg.local(k, v), &want[..], "local set mismatch at v={v}");
            }
        }
    }
}
