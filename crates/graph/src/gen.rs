//! Seeded synthetic graph generators.
//!
//! The dataset suite ([`crate::datasets`]) combines these primitives to
//! reproduce the *shape* of the paper's eight evaluation graphs: degree
//! skew, density, and label selectivity are the properties that drive the
//! sampling behaviour studied in the paper.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Graph, GraphBuilder, Label, VertexId};

/// Draw labels for `n` vertices from a Zipf-like distribution over
/// `label_count` labels with exponent `skew` (0 = uniform).
///
/// Real labeled graphs have highly non-uniform label frequencies; the label
/// distribution controls global candidate-set sizes and is therefore central
/// to sampling difficulty.
pub fn zipf_labels(n: usize, label_count: usize, skew: f64, seed: u64) -> Vec<Label> {
    assert!(label_count > 0, "label_count must be positive");
    assert!(label_count <= Label::MAX as usize + 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    // Precompute the CDF of p(l) ∝ 1/(l+1)^skew.
    let mut cdf = Vec::with_capacity(label_count);
    let mut acc = 0.0f64;
    for l in 0..label_count {
        acc += 1.0 / ((l + 1) as f64).powf(skew);
        cdf.push(acc);
    }
    let total = acc;
    (0..n)
        .map(|_| {
            let x = rng.gen::<f64>() * total;
            let idx = cdf.partition_point(|&c| c < x);
            idx.min(label_count - 1) as Label
        })
        .collect()
}

/// Erdős–Rényi `G(n, m)` with the given labels.
///
/// Produces near-uniform degrees — the regime of the biology graphs (Yeast,
/// HPRD) where warp workloads are naturally balanced.
pub fn erdos_renyi(n: usize, m: usize, labels: Vec<Label>, seed: u64) -> Graph {
    assert_eq!(labels.len(), n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(n);
    for (v, &l) in labels.iter().enumerate() {
        b.set_label(v as VertexId, l);
    }
    if n < 2 {
        return b.build().expect("generator edges are in range");
    }
    // Sample edges with replacement; duplicates are deduplicated by the
    // builder, so overshoot slightly to land near m distinct edges.
    let attempts = m + m / 8 + 8;
    for _ in 0..attempts {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        b.add_edge(u, v);
    }
    b.build().expect("generator edges are in range")
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_attach` existing vertices chosen proportionally to degree.
///
/// Produces the power-law degree skew of the web/social graphs (eu2005,
/// Orkut, uk2002) that drives the paper's refine-imbalance problem.
pub fn barabasi_albert(n: usize, m_attach: usize, labels: Vec<Label>, seed: u64) -> Graph {
    assert_eq!(labels.len(), n);
    assert!(m_attach >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(n);
    for (v, &l) in labels.iter().enumerate() {
        b.set_label(v as VertexId, l);
    }
    if n < 2 {
        return b.build().expect("generator edges are in range");
    }
    // `targets` holds one entry per edge endpoint: sampling uniformly from it
    // is preferential attachment.
    let mut targets: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    let seed_vertices = (m_attach + 1).min(n);
    for u in 0..seed_vertices {
        for v in 0..u {
            b.add_edge(u as VertexId, v as VertexId);
            targets.push(u as VertexId);
            targets.push(v as VertexId);
        }
    }
    for u in seed_vertices..n {
        for _ in 0..m_attach {
            let v = targets[rng.gen_range(0..targets.len())];
            b.add_edge(u as VertexId, v);
            targets.push(u as VertexId);
            targets.push(v);
        }
    }
    b.build().expect("generator edges are in range")
}

/// Sparse "lexical"-style generator: a forest of shallow hub trees with a few
/// cross links, mimicking WordNet (avg degree ≈ 3, very few labels, long
/// chains). Matching large queries here is extremely unlikely — the
/// underestimation regime of Section 5.
pub fn sparse_lexical(n: usize, label_count: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Heavily skewed labels (~70% mass on the top label), like WordNet's
    // part-of-speech tags: large-query instance counts are then huge while
    // any individual sample still dies in the sparse structure — the
    // underestimation regime of Section 5.
    let labels = zipf_labels(n, label_count, 2.2, seed ^ 0x5EED);
    let mut b = GraphBuilder::with_vertices(n);
    for (v, &l) in labels.iter().enumerate() {
        b.set_label(v as VertexId, l);
    }
    if n < 2 {
        return b.build().expect("generator edges are in range");
    }
    // Chain/tree backbone: each vertex links to a close predecessor, giving
    // depth and low degree.
    for v in 1..n {
        let window = 16.min(v);
        let u = v - 1 - rng.gen_range(0..window);
        b.add_edge(u as VertexId, v as VertexId);
    }
    // Sparse random cross links (~0.55 per vertex) to reach avg degree ≈ 3.1.
    let extra = n.saturating_mul(11) / 20;
    for _ in 0..extra {
        let u = rng.gen_range(0..n as VertexId);
        let v = rng.gen_range(0..n as VertexId);
        b.add_edge(u, v);
    }
    b.build().expect("generator edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_labels_in_range_and_skewed() {
        let labels = zipf_labels(20_000, 10, 1.2, 7);
        assert!(labels.iter().all(|&l| l < 10));
        let count0 = labels.iter().filter(|&&l| l == 0).count();
        let count9 = labels.iter().filter(|&&l| l == 9).count();
        assert!(
            count0 > 4 * count9.max(1),
            "label 0 ({count0}) should dominate label 9 ({count9})"
        );
    }

    #[test]
    fn zipf_zero_skew_is_roughly_uniform() {
        let labels = zipf_labels(50_000, 5, 0.0, 3);
        for l in 0..5 {
            let c = labels.iter().filter(|&&x| x == l).count();
            assert!((8_000..12_000).contains(&c), "label {l} count {c}");
        }
    }

    #[test]
    fn erdos_renyi_shape() {
        let g = erdos_renyi(1000, 5000, zipf_labels(1000, 8, 1.0, 1), 42);
        assert_eq!(g.num_vertices(), 1000);
        // Deduplication loses a few; should land close to the target.
        assert!(
            g.num_edges() > 4500 && g.num_edges() < 5700,
            "{}",
            g.num_edges()
        );
    }

    #[test]
    fn erdos_renyi_deterministic() {
        let l = zipf_labels(500, 4, 1.0, 9);
        let g1 = erdos_renyi(500, 2000, l.clone(), 11);
        let g2 = erdos_renyi(500, 2000, l, 11);
        assert_eq!(g1, g2);
    }

    #[test]
    fn barabasi_albert_is_skewed() {
        let g = barabasi_albert(2000, 4, vec![0; 2000], 5);
        assert_eq!(g.num_vertices(), 2000);
        let max_d = g.max_degree() as f64;
        let avg_d = g.avg_degree();
        assert!(
            max_d > 8.0 * avg_d,
            "power-law graph should have heavy hubs: max {max_d}, avg {avg_d}"
        );
    }

    #[test]
    fn sparse_lexical_shape() {
        let g = sparse_lexical(10_000, 5, 17);
        let avg = g.avg_degree();
        assert!((2.0..4.5).contains(&avg), "avg degree {avg}");
        assert!(g.label_count() <= 5);
    }

    #[test]
    fn generators_handle_tiny_inputs() {
        assert_eq!(erdos_renyi(1, 10, vec![0], 0).num_edges(), 0);
        assert_eq!(barabasi_albert(1, 3, vec![0], 0).num_edges(), 0);
        assert_eq!(sparse_lexical(1, 3, 0).num_edges(), 0);
        assert_eq!(sparse_lexical(0, 3, 0).num_vertices(), 0);
    }
}
