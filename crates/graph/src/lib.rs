//! Labeled-graph substrate for the gSWORD reproduction.
//!
//! This crate provides the data-graph foundation that every other layer of
//! the system builds on:
//!
//! * [`Graph`] — an undirected, vertex-labeled graph stored in compressed
//!   sparse row (CSR) form with sorted adjacency lists, supporting `O(log d)`
//!   edge probes and `O(1)` neighbor-slice access.
//! * [`GraphBuilder`] — incremental construction with duplicate-edge and
//!   self-loop elimination.
//! * [`io`] — readers/writers for the text format used throughout the
//!   subgraph-matching literature (`t/v/e` records).
//! * [`gen`] — seeded synthetic generators (Erdős–Rényi, Barabási–Albert
//!   power-law, sparse lexical-style graphs) plus a Zipf label assigner.
//! * [`datasets`] — the eight-dataset suite mirroring Table 1 of the paper
//!   at reduced scale.
//! * [`stats`] — the statistics reported in Table 1.
//! * [`intersect`] — the degree-adaptive sorted-set intersection engine
//!   (merge / gallop / bitmap) shared by the candidate builder, the
//!   estimators' Refine step, and the SIMT kernels' memory charging.
//! * [`storage`] — the [`GraphStorage`] trait every data-graph consumer is
//!   generic over, plus [`AnyGraph`] for runtime backend selection.
//! * [`compressed`] — [`CompressedGraph`]: gap-coded varint adjacency with
//!   Elias-Fano indexing, packed into an mmap-able on-disk image
//!   ([`mmap`]), with decode-on-the-fly / block-skip intersection.

pub mod compressed;
pub mod csr;
pub mod datasets;
pub mod gen;
pub mod intersect;
pub mod io;
pub mod mmap;
pub mod ops;
pub mod stats;
pub mod storage;

pub use compressed::CompressedGraph;
pub use csr::{Graph, GraphBuilder};
pub use datasets::{dataset, dataset_names, DatasetSpec};
pub use stats::GraphStats;
pub use storage::{AnyGraph, GraphStorage, NeighborsRef};

/// Identifier of a data vertex. `u32` keeps hot structures compact (the
/// largest suite graph has far fewer than 2^32 vertices, as do the paper's).
pub type VertexId = u32;

/// Vertex label. The paper's datasets have 5..=307 labels, so `u16` suffices.
pub type Label = u16;

/// Errors produced while constructing or loading graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referenced a vertex outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u64,
        /// The graph's declared vertex count.
        num_vertices: u64,
    },
    /// The input file/stream was malformed.
    Parse {
        /// 1-based line number of the offending record (0 when unknown).
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// An I/O failure while reading or writing a graph file.
    Io(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range (graph has {num_vertices} vertices)"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(message) => write!(f, "i/o error: {message}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}
