//! Succinct graph storage: Rice-coded gap adjacency with Elias-Fano
//! indexing, packed into a single mmap-able image.
//!
//! The representation follows the WebGraph/BvGraph recipe adapted to this
//! workspace's access patterns (DESIGN.md §13):
//!
//! * Each vertex's strictly ascending neighbor list is split into blocks
//!   of [`BLOCK`] entries. A block starts with its first neighbor as an
//!   absolute LEB128 varint, then a one-byte Rice parameter `k` chosen
//!   per block to minimize total bits, then the remaining entries as
//!   Rice-coded `gap − 1` values (gaps are ≥ 1 in a strict list):
//!   quotient in unary, `k` low bits binary, LSB-first, padded to a byte
//!   boundary at block end. Per-block Rice beats plain LEB128 varints by
//!   ~20% on the power-law suites (a 580-mean gap costs ~11 bits instead
//!   of 16). Multi-block vertices carry a restart table of `u32` byte
//!   offsets so membership probes binary-search *blocks* and decode at
//!   most one of them — the block-skippable variant of the adaptive
//!   intersection engine.
//! * Two Elias-Fano monotone sequences index the stream: cumulative
//!   degrees (degree in O(1)-ish, universe `2|E|`) and cumulative byte
//!   offsets of each vertex's adjacency region.
//! * Labels, the label→vertices index, and its offsets are stored raw so
//!   [`GraphStorage::vertices_with_label`] stays zero-copy.
//!
//! The on-disk image *is* the in-memory representation: [`pack_to_vec`]
//! produces the file bytes, and [`CompressedGraph::load`] maps them with
//! no per-vertex materialization. All sections are 8-byte aligned and
//! little-endian; a header magic/version/endianness probe rejects foreign
//! images instead of misreading them.
//!
//! Repeated access is served by a **per-thread decoded-adjacency cache**
//! (DESIGN.md §15): the storage-trait entry points and the cached
//! membership probe decode a vertex's list once per thread and serve later
//! touches from the decoded copy, LRU-evicted under a per-graph byte
//! budget ([`CompressedGraph::with_decode_cache`]). The cache is invisible
//! to the memory model — cached probes replay the exact byte-offset
//! sequence the streaming decoder would report, so modeled traffic is
//! bit-identical with the cache on or off — and `mem_bytes` stays
//! capacity-honest by counting resident cache bytes.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::mmap::Bytes;
use crate::storage::{GraphStorage, NeighborsRef};
use crate::{intersect, Graph, GraphBuilder, GraphError, Label, VertexId};

/// Entries per adjacency block (one restart point each).
pub const BLOCK: usize = 64;

/// Image magic: "GSWDPK" + 2-digit format version.
pub const MAGIC: [u8; 8] = *b"GSWDPK01";

const ENDIAN_PROBE: u64 = 0x0102_0304_0506_0708;

/// Header size in bytes: magic, probe, n, m, label_count, two EF low-bit
/// widths, then 8 `(offset, len)` section entries.
const HEADER_LEN: usize = 48 + SECTIONS * 16;
const SECTIONS: usize = 8;

// ---------------------------------------------------------------------------
// Varints
// ---------------------------------------------------------------------------

fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

// ---------------------------------------------------------------------------
// Rice-coded bit stream (LSB-first within each byte)
// ---------------------------------------------------------------------------

/// Bit-granular writer appending to a byte vector.
struct BitWriter {
    cur: u8,
    fill: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter { cur: 0, fill: 0 }
    }

    #[inline]
    fn push_bit(&mut self, out: &mut Vec<u8>, bit: u32) {
        self.cur |= ((bit & 1) as u8) << self.fill;
        self.fill += 1;
        if self.fill == 8 {
            out.push(self.cur);
            self.cur = 0;
            self.fill = 0;
        }
    }

    /// Rice code of `v` with parameter `k`: `v >> k` one-bits, a zero
    /// terminator, then the `k` low bits.
    fn write_rice(&mut self, out: &mut Vec<u8>, v: u32, k: u32) {
        for _ in 0..(v >> k) {
            self.push_bit(out, 1);
        }
        self.push_bit(out, 0);
        for i in 0..k {
            self.push_bit(out, v >> i);
        }
    }

    /// Flush the partial byte (zero-padded) — the per-block alignment.
    fn finish(&mut self, out: &mut Vec<u8>) {
        if self.fill > 0 {
            out.push(self.cur);
            self.cur = 0;
            self.fill = 0;
        }
    }
}

/// The Rice parameter minimizing the exact encoded size of `gaps`.
fn rice_param(gaps: &[u32]) -> u32 {
    let mut best_k = 0u32;
    let mut best_cost = u64::MAX;
    for k in 0..32u32 {
        let cost: u64 = gaps
            .iter()
            .map(|&v| u64::from(v >> k) + 1 + u64::from(k))
            .sum();
        if cost < best_cost {
            best_cost = cost;
            best_k = k;
        }
    }
    best_k
}

/// Bit-granular cursor over one adjacency region: byte position plus bit
/// offset within that byte. Block starts are byte-aligned (absolute-first
/// varint and the `k` parameter byte), gap entries are Rice-coded bits.
#[derive(Debug, Clone, Copy)]
struct BlockCursor {
    pos: usize,
    bit: u32,
    k: u32,
}

impl BlockCursor {
    fn at(pos: usize) -> Self {
        BlockCursor { pos, bit: 0, k: 0 }
    }

    #[inline]
    fn align(&mut self) {
        if self.bit != 0 {
            self.pos += 1;
            self.bit = 0;
        }
    }

    /// Unary quotient: count one-bits up to the zero terminator,
    /// byte-chunked (a sentinel bit above the valid range stops
    /// `trailing_ones` from running into undefined bits).
    #[inline]
    fn read_unary(&mut self, bytes: &[u8]) -> u32 {
        let mut q = 0u32;
        loop {
            let avail = 8 - self.bit;
            let chunk = (u32::from(bytes[self.pos]) >> self.bit) | (1u32 << avail);
            let ones = chunk.trailing_ones().min(avail);
            q += ones;
            if ones == avail {
                self.pos += 1;
                self.bit = 0;
            } else {
                self.bit += ones + 1;
                if self.bit == 8 {
                    self.pos += 1;
                    self.bit = 0;
                }
                return q;
            }
        }
    }

    /// `width` bits, LSB-first, byte-chunked.
    #[inline]
    fn read_bits(&mut self, bytes: &[u8], width: u32) -> u32 {
        let mut v = 0u32;
        let mut got = 0u32;
        while got < width {
            let avail = (8 - self.bit).min(width - got);
            let chunk = (u32::from(bytes[self.pos]) >> self.bit) & ((1u32 << avail) - 1);
            v |= chunk << got;
            got += avail;
            self.bit += avail;
            if self.bit == 8 {
                self.pos += 1;
                self.bit = 0;
            }
        }
        v
    }

    /// The next Rice-coded gap value under the current block's `k`.
    #[inline]
    fn read_gap(&mut self, bytes: &[u8]) -> u32 {
        let q = self.read_unary(bytes);
        let low = self.read_bits(bytes, self.k);
        (q << self.k) | low
    }
}

/// Decode the next list entry at `idx`: block starts re-align and read the
/// absolute varint plus the block's Rice parameter; later entries are
/// `prev + 1 + gap`.
#[inline]
fn decode_next(
    cur: &mut BlockCursor,
    bytes: &[u8],
    idx: usize,
    deg: usize,
    prev: VertexId,
) -> VertexId {
    if idx.is_multiple_of(BLOCK) {
        cur.align();
        let v = read_varint(bytes, &mut cur.pos);
        if (deg - idx - 1).min(BLOCK - 1) > 0 {
            cur.k = u32::from(bytes[cur.pos]);
            cur.pos += 1;
        }
        v
    } else {
        prev + 1 + cur.read_gap(bytes)
    }
}

// ---------------------------------------------------------------------------
// Elias-Fano
// ---------------------------------------------------------------------------

/// Owned Elias-Fano encoding of a monotone non-decreasing `u64` sequence —
/// the build-side representation; the load side reads the same words
/// zero-copy through [`EfView`].
#[derive(Debug, Clone)]
struct EliasFano {
    l: u32,
    lows: Vec<u64>,
    highs: Vec<u64>,
}

fn ef_low_width(n: usize, universe: u64) -> u32 {
    if n == 0 || universe < n as u64 {
        0
    } else {
        (universe / n as u64).ilog2()
    }
}

fn set_bits(words: &mut [u64], bitpos: usize, value: u64, width: u32) {
    if width == 0 {
        return;
    }
    let w = bitpos / 64;
    let o = (bitpos % 64) as u32;
    words[w] |= value << o;
    if o + width > 64 {
        words[w + 1] |= value >> (64 - o);
    }
}

fn get_bits(words: &[u64], bitpos: usize, width: u32) -> u64 {
    if width == 0 {
        return 0;
    }
    let w = bitpos / 64;
    let o = (bitpos % 64) as u32;
    let mut v = words[w] >> o;
    if o + width > 64 {
        v |= words[w + 1] << (64 - o);
    }
    v & ((1u64 << width) - 1)
}

impl EliasFano {
    /// Encode `values` (monotone non-decreasing).
    fn encode(values: &[u64]) -> Self {
        let n = values.len();
        let universe = values.last().copied().unwrap_or(0);
        let l = ef_low_width(n, universe);
        let mut lows = vec![0u64; (n * l as usize).div_ceil(64)];
        let high_bits = (universe >> l) as usize + n + 1;
        let mut highs = vec![0u64; high_bits.div_ceil(64)];
        for (i, &v) in values.iter().enumerate() {
            set_bits(&mut lows, i * l as usize, v & ((1u64 << l) - 1), l);
            let high = (v >> l) as usize + i;
            highs[high / 64] |= 1u64 << (high % 64);
        }
        EliasFano { l, lows, highs }
    }
}

/// Zero-copy Elias-Fano reader over externally stored words plus a small
/// per-word cumulative-rank table built at load time for `select1`.
#[derive(Debug, Clone, Copy)]
struct EfView<'a> {
    l: u32,
    lows: &'a [u64],
    highs: &'a [u64],
    rank: &'a [u32],
}

/// Exclusive cumulative popcount per word of `highs` — the select
/// accelerator ([`EfView::get`] binary-searches it).
fn build_rank(highs: &[u64]) -> Vec<u32> {
    let mut rank = Vec::with_capacity(highs.len());
    let mut acc = 0u32;
    for &w in highs {
        rank.push(acc);
        acc += w.count_ones();
    }
    rank
}

impl EfView<'_> {
    /// The `i`-th encoded value.
    fn get(&self, i: usize) -> u64 {
        // select1(i): the word holding the i-th set bit, then its offset.
        let w = self.rank.partition_point(|&r| r <= i as u32) - 1;
        let mut word = self.highs[w];
        for _ in 0..(i as u32 - self.rank[w]) {
            word &= word - 1;
        }
        let bitpos = w * 64 + word.trailing_zeros() as usize;
        let high = (bitpos - i) as u64;
        (high << self.l) | get_bits(self.lows, i * self.l as usize, self.l)
    }
}

// ---------------------------------------------------------------------------
// Adjacency block coding
// ---------------------------------------------------------------------------

fn encode_adjacency(nbrs: &[VertexId], out: &mut Vec<u8>) {
    let d = nbrs.len();
    if d == 0 {
        return;
    }
    let nblocks = d.div_ceil(BLOCK);
    let table_pos = out.len();
    if nblocks > 1 {
        out.resize(out.len() + nblocks * 4, 0);
    }
    let data_start = out.len();
    for (b, chunk) in nbrs.chunks(BLOCK).enumerate() {
        if nblocks > 1 {
            let off = (out.len() - data_start) as u32;
            out[table_pos + b * 4..table_pos + b * 4 + 4].copy_from_slice(&off.to_le_bytes());
        }
        write_varint(out, chunk[0]);
        if chunk.len() > 1 {
            let gaps: Vec<u32> = chunk.windows(2).map(|w| w[1] - w[0] - 1).collect();
            let k = rice_param(&gaps);
            out.push(k as u8);
            let mut bw = BitWriter::new();
            for &gap in &gaps {
                bw.write_rice(out, gap, k);
            }
            bw.finish(out);
        }
    }
}

/// One vertex's adjacency region: restart table (multi-block vertices
/// only) followed by the gap-coded blocks. Decoding is streaming; seeks
/// are block-skippable.
#[derive(Debug, Clone, Copy)]
pub struct CompressedNeighbors<'a> {
    region: &'a [u8],
    deg: usize,
    /// Byte offset of `region` within the whole adjacency section — what
    /// probe callbacks report, so the coalescing model charges real
    /// stream addresses.
    base: usize,
}

impl<'a> CompressedNeighbors<'a> {
    /// Number of neighbors.
    #[inline]
    pub fn len(&self) -> usize {
        self.deg
    }

    /// Whether the list is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.deg == 0
    }

    #[inline]
    fn nblocks(&self) -> usize {
        self.deg.div_ceil(BLOCK)
    }

    #[inline]
    fn data_start(&self) -> usize {
        let nb = self.nblocks();
        if nb > 1 {
            nb * 4
        } else {
            0
        }
    }

    #[inline]
    fn block_off(&self, b: usize) -> usize {
        if self.nblocks() > 1 {
            let p = b * 4;
            u32::from_le_bytes(self.region[p..p + 4].try_into().unwrap()) as usize
        } else {
            0
        }
    }

    /// First neighbor of block `b` (decoded from the block's absolute
    /// varint restart).
    fn block_first(&self, b: usize) -> VertexId {
        let mut pos = self.data_start() + self.block_off(b);
        read_varint(self.region, &mut pos)
    }

    /// Streaming decoder over the list (ascending).
    pub fn iter(&self) -> Decoder<'a> {
        Decoder {
            bytes: self.region,
            cur: BlockCursor::at(self.data_start()),
            idx: 0,
            deg: self.deg,
            prev: 0,
        }
    }

    /// Append the decoded list to `out`.
    pub fn decode_into(&self, out: &mut Vec<VertexId>) {
        out.reserve(self.deg);
        out.extend(self.iter());
    }

    /// Membership probe: binary-search the restart table, decode at most
    /// one block. `O(log #blocks + BLOCK)`.
    pub fn contains(&self, x: VertexId) -> bool {
        self.contains_with_probes(x, |_| {})
    }

    /// [`Self::contains`] reporting every byte offset (within the
    /// adjacency section) the probe touches — restart-table reads and
    /// decoded entry positions — so device kernels can charge the
    /// coalescing memory model with the compressed stream's actual
    /// addresses.
    pub fn contains_with_probes(&self, x: VertexId, mut probe: impl FnMut(usize)) -> bool {
        if self.deg == 0 {
            return false;
        }
        let nb = self.nblocks();
        // Locate the last block with first ≤ x.
        let mut block = 0usize;
        if nb > 1 {
            let (mut lo, mut hi) = (0usize, nb);
            while lo + 1 < hi {
                let mid = lo + (hi - lo) / 2;
                probe(self.base + mid * 4); // restart-table read
                let pos = self.data_start() + self.block_off(mid);
                probe(self.base + pos); // block-first decode
                if self.block_first(mid) <= x {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            block = lo;
        }
        // Linear decode within the block. Entries after the first are bit
        // stream reads; the probe reports the byte each read starts in.
        let mut cur = BlockCursor::at(self.data_start() + self.block_off(block));
        let mut idx = block * BLOCK;
        let end = ((block + 1) * BLOCK).min(self.deg);
        let mut prev = 0;
        while idx < end {
            probe(self.base + cur.pos);
            let v = decode_next(
                &mut cur,
                self.region,
                idx % BLOCK,
                end - (idx - idx % BLOCK),
                prev,
            );
            if v >= x {
                return v == x;
            }
            prev = v;
            idx += 1;
        }
        false
    }

    /// Monotone seek cursor (for ascending probe sequences).
    pub fn seeker(&self) -> Seeker<'a> {
        Seeker {
            list: *self,
            block: 0,
            cur: BlockCursor::at(self.data_start()),
            idx: 0,
            prev: 0,
            have: false,
        }
    }

    /// Append `self ∩ other` (ascending) to `out`.
    ///
    /// Picks between two strategies with identical output: decode the
    /// stream and gallop into `other`, or — when `other` is smaller by
    /// the engine's [`intersect::GALLOP_RATIO`] — seek block-skippingly
    /// through the compressed list for each element of `other`.
    pub fn intersect_into(&self, other: &[VertexId], out: &mut Vec<VertexId>) {
        if self.deg == 0 || other.is_empty() {
            return;
        }
        if other.len() * intersect::GALLOP_RATIO < self.deg {
            let mut seek = self.seeker();
            for &x in other {
                if seek.advance_to(x) {
                    out.push(x);
                }
            }
        } else {
            let mut cursor = 0usize;
            for v in self.iter() {
                if cursor >= other.len() {
                    break;
                }
                if intersect::gallop_member(other, &mut cursor, v) {
                    out.push(v);
                }
            }
        }
    }
}

impl<'a> IntoIterator for CompressedNeighbors<'a> {
    type Item = VertexId;
    type IntoIter = Decoder<'a>;

    fn into_iter(self) -> Decoder<'a> {
        self.iter()
    }
}

/// Streaming gap decoder for one adjacency region.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    cur: BlockCursor,
    idx: usize,
    deg: usize,
    prev: VertexId,
}

impl Iterator for Decoder<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.idx >= self.deg {
            return None;
        }
        let v = decode_next(&mut self.cur, self.bytes, self.idx, self.deg, self.prev);
        self.prev = v;
        self.idx += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.deg - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Decoder<'_> {}

/// Monotone block-skipping cursor over one compressed list: successive
/// [`Seeker::advance_to`] calls with ascending targets decode each block
/// at most once — the compressed analogue of
/// [`intersect::gallop_member`]'s forward-only cursor.
#[derive(Debug, Clone)]
pub struct Seeker<'a> {
    list: CompressedNeighbors<'a>,
    block: usize,
    cur: BlockCursor,
    idx: usize,
    prev: VertexId,
    have: bool,
}

impl Seeker<'_> {
    /// Advance to the first value ≥ `x`; returns whether it equals `x`.
    /// Targets must be non-decreasing across calls.
    pub fn advance_to(&mut self, x: VertexId) -> bool {
        if self.have && self.prev >= x {
            return self.prev == x;
        }
        // Skip whole blocks while the next one still starts ≤ x.
        let nb = self.list.nblocks();
        while self.block + 1 < nb && self.list.block_first(self.block + 1) <= x {
            self.block += 1;
            self.idx = self.block * BLOCK;
            self.cur = BlockCursor::at(self.list.data_start() + self.list.block_off(self.block));
            self.have = false;
        }
        while self.idx < self.list.deg {
            let v = decode_next(
                &mut self.cur,
                self.list.region,
                self.idx,
                self.list.deg,
                self.prev,
            );
            self.prev = v;
            self.have = true;
            self.idx += 1;
            if self.idx.is_multiple_of(BLOCK) && self.block + 1 < nb {
                self.block += 1;
            }
            if v >= x {
                return v == x;
            }
        }
        false
    }
}

// ---------------------------------------------------------------------------
// The packed image
// ---------------------------------------------------------------------------

fn pad8(out: &mut Vec<u8>) {
    while !out.len().is_multiple_of(8) {
        out.push(0);
    }
}

fn push_words(out: &mut Vec<u8>, words: &[u64]) -> (u64, u64) {
    pad8(out);
    let off = out.len() as u64;
    for &w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    (off, (words.len() * 8) as u64)
}

/// Serialize `g` into the packed image ([`MAGIC`] format). The returned
/// bytes are exactly what [`CompressedGraph::load`] maps from disk.
pub fn pack_to_vec(g: &Graph) -> Vec<u8> {
    let n = g.num_vertices();

    // Adjacency stream + the two monotone index sequences.
    let mut adj = Vec::new();
    let mut cum_deg = Vec::with_capacity(n + 1);
    let mut cum_off = Vec::with_capacity(n + 1);
    cum_deg.push(0u64);
    cum_off.push(0u64);
    for v in 0..n as VertexId {
        encode_adjacency(g.neighbors(v), &mut adj);
        cum_deg.push(cum_deg.last().unwrap() + g.degree(v) as u64);
        cum_off.push(adj.len() as u64);
    }
    let deg_ef = EliasFano::encode(&cum_deg);
    let off_ef = EliasFano::encode(&cum_off);

    let mut out = vec![0u8; HEADER_LEN];
    // labels: u16 per vertex.
    pad8(&mut out);
    let labels_off = out.len() as u64;
    for &l in g.labels() {
        out.extend_from_slice(&l.to_le_bytes());
    }
    let labels_len = (n * 2) as u64;

    // label_offsets: u64 × (label_count + 1); label_index: u32 × n.
    pad8(&mut out);
    let loff_off = out.len() as u64;
    let mut acc = 0u64;
    out.extend_from_slice(&acc.to_le_bytes());
    for l in 0..g.label_count() {
        acc += g.vertices_with_label(l as Label).len() as u64;
        out.extend_from_slice(&acc.to_le_bytes());
    }
    let loff_len = ((g.label_count() + 1) * 8) as u64;

    pad8(&mut out);
    let lidx_off = out.len() as u64;
    for l in 0..g.label_count() {
        for &v in g.vertices_with_label(l as Label) {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let lidx_len = (n * 4) as u64;

    let (dl_off, dl_len) = push_words(&mut out, &deg_ef.lows);
    let (dh_off, dh_len) = push_words(&mut out, &deg_ef.highs);
    let (ol_off, ol_len) = push_words(&mut out, &off_ef.lows);
    let (oh_off, oh_len) = push_words(&mut out, &off_ef.highs);

    pad8(&mut out);
    let adj_off = out.len() as u64;
    out.extend_from_slice(&adj);
    let adj_len = adj.len() as u64;
    pad8(&mut out);

    // Header last, once every offset is known.
    out[0..8].copy_from_slice(&MAGIC);
    out[8..16].copy_from_slice(&ENDIAN_PROBE.to_le_bytes());
    out[16..24].copy_from_slice(&(n as u64).to_le_bytes());
    out[24..32].copy_from_slice(&(g.num_edges() as u64).to_le_bytes());
    out[32..40].copy_from_slice(&(g.label_count() as u64).to_le_bytes());
    out[40..44].copy_from_slice(&deg_ef.l.to_le_bytes());
    out[44..48].copy_from_slice(&off_ef.l.to_le_bytes());
    let table = [
        (labels_off, labels_len),
        (loff_off, loff_len),
        (lidx_off, lidx_len),
        (dl_off, dl_len),
        (dh_off, dh_len),
        (ol_off, ol_len),
        (oh_off, oh_len),
        (adj_off, adj_len),
    ];
    for (i, (off, len)) in table.iter().enumerate() {
        let p = 48 + i * 16;
        out[p..p + 8].copy_from_slice(&off.to_le_bytes());
        out[p + 8..p + 16].copy_from_slice(&len.to_le_bytes());
    }
    out
}

type Range = std::ops::Range<usize>;

// ---------------------------------------------------------------------------
// The per-thread decoded-adjacency cache
// ---------------------------------------------------------------------------

/// Default per-thread decoded-adjacency budget per graph, in bytes
/// (16 MiB — enough to hold every suite dataset's decoded adjacency;
/// eu2005, the largest, needs ~7.5 MiB).
pub const DECODE_CACHE_DEFAULT_BYTES: usize = 1 << 24;

/// Fixed per-entry overhead charged against the budget (map slot, LRU
/// bookkeeping) on top of the decoded vectors themselves.
const CACHE_ENTRY_OVERHEAD: usize = 64;

static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// One decode cache per thread (per *sim worker* under the parallel
    /// runtime): lockstep block workers never contend on it, and the
    /// graph's shared byte counter keeps `mem_bytes` honest across all of
    /// them.
    static DECODE_CACHE: RefCell<DecodeCache> =
        const { RefCell::new(DecodeCache { shards: Vec::new() }) };
}

/// Multiplicative hasher for the cache's small integer keys. The hit path
/// runs once per adjacency access, where SipHash is most of the lookup
/// cost; one multiply plus an xor-fold is plenty for vertex ids.
#[derive(Default)]
struct FastHasher(u64);

impl std::hash::Hasher for FastHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0 ^ u64::from(v)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }
}

type FastMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FastHasher>>;

/// One cached vertex: the decoded list plus the byte offset each entry's
/// decode starts at, so membership probes replay the streaming decoder's
/// exact address sequence.
struct CacheEntry {
    decoded: Vec<VertexId>,
    pos: Vec<u32>,
    bytes: usize,
    /// Second-chance bit: set on every hit, cleared (one rotation's grace)
    /// by the eviction clock hand.
    hot: bool,
    /// Sticky hit bit (never cleared): did this entry serve at least one
    /// hit while resident? Feeds the shard's thrash guard.
    touched: bool,
    /// The owning graph's resident-bytes counter; decremented on drop
    /// (eviction or thread exit) so accounting never leaks.
    counter: Arc<AtomicUsize>,
}

impl Drop for CacheEntry {
    fn drop(&mut self) {
        self.counter.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// This thread's cache shard for one graph. Eviction is CLOCK
/// (second-chance): hits only set a flag — no queue traffic — and the
/// ring holds each resident vertex exactly once, rotated at insert time.
///
/// A thrash guard keeps the cache from degrading below the uncached
/// path: when a working set far exceeds the budget (a cyclic scan over a
/// large graph, say), every admission evicts an entry that never served a
/// hit, paying map and eviction overhead for nothing. After a full
/// capacity's worth of consecutive *futile* evictions (victim never hit
/// while resident) the shard stops admitting and serves as a pinned set —
/// residents keep hitting, everything else streams at uncached cost. Any
/// hit resets the guard, so workloads with real reuse never trip it.
#[derive(Default)]
struct GraphShard {
    entries: FastMap<VertexId, CacheEntry>,
    ring: VecDeque<VertexId>,
    bytes: usize,
    /// Consecutive evictions of never-hit entries; cleared on every hit.
    futile_evictions: usize,
}

impl GraphShard {
    /// Insert under `capacity`, advancing the clock hand as needed. A list
    /// too large to ever fit — or arriving while the thrash guard is
    /// engaged — is handed back instead of flushing the shard.
    #[allow(clippy::result_large_err)]
    fn insert(
        &mut self,
        v: VertexId,
        decoded: Vec<VertexId>,
        pos: Vec<u32>,
        capacity: usize,
        counter: &Arc<AtomicUsize>,
    ) -> Result<&CacheEntry, (Vec<VertexId>, Vec<u32>)> {
        let bytes = decoded.capacity() * 4 + pos.capacity() * 4 + CACHE_ENTRY_OVERHEAD;
        if bytes > capacity {
            return Err((decoded, pos));
        }
        if self.futile_evictions >= self.entries.len().max(64) {
            return Err((decoded, pos));
        }
        while self.bytes + bytes > capacity {
            let Some(victim) = self.ring.pop_front() else {
                break;
            };
            let e = self.entries.get_mut(&victim).expect("ring tracks entries");
            if e.hot {
                e.hot = false;
                self.ring.push_back(victim);
            } else {
                let e = self.entries.remove(&victim).expect("present");
                self.bytes -= e.bytes;
                if !e.touched {
                    self.futile_evictions += 1;
                }
            }
        }
        counter.fetch_add(bytes, Ordering::Relaxed);
        self.bytes += bytes;
        self.ring.push_back(v);
        Ok(self.entries.entry(v).or_insert(CacheEntry {
            decoded,
            pos,
            bytes,
            hot: false,
            touched: false,
            counter: Arc::clone(counter),
        }))
    }
}

/// A thread's shards, one per live graph image. A linear scan over a
/// two-or-three element vec beats hashing on the per-access path.
struct DecodeCache {
    shards: Vec<(u64, GraphShard)>,
}

impl DecodeCache {
    fn shard(&mut self, id: u64) -> &mut GraphShard {
        if let Some(i) = self.shards.iter().position(|(sid, _)| *sid == id) {
            return &mut self.shards[i].1;
        }
        self.shards.push((id, GraphShard::default()));
        &mut self.shards.last_mut().expect("just pushed").1
    }
}

/// The succinct, mmap-backed graph backend.
///
/// Holds the packed image (owned or mapped) plus two small select-rank
/// tables built at load time; adjacency is never materialized as
/// per-vertex vectors — repeated access goes through the per-thread
/// decoded cache instead.
#[derive(Debug, Clone)]
pub struct CompressedGraph {
    bytes: Bytes,
    n: usize,
    m: usize,
    label_count: usize,
    deg_l: u32,
    off_l: u32,
    labels: Range,
    label_offsets: Range,
    label_index: Range,
    deg_lows: Range,
    deg_highs: Range,
    off_lows: Range,
    off_highs: Range,
    adj: Range,
    deg_rank: Vec<u32>,
    off_rank: Vec<u32>,
    /// Identity of this image in the per-thread decode cache. Clones share
    /// it (same bytes, same decoded lists).
    cache_id: u64,
    /// Per-thread decoded-adjacency budget in bytes; `0` disables caching.
    cache_capacity: usize,
    /// Bytes currently resident in this graph's decode-cache entries,
    /// summed over every thread — the capacity-honest `mem_bytes` input.
    cache_bytes: Arc<AtomicUsize>,
}

fn parse_err(message: impl Into<String>) -> GraphError {
    GraphError::Parse {
        line: 0,
        message: message.into(),
    }
}

fn read_u64(b: &[u8], p: usize) -> u64 {
    u64::from_le_bytes(b[p..p + 8].try_into().unwrap())
}

impl CompressedGraph {
    /// Compress an in-memory CSR graph (pack + reparse: the result is
    /// bit-identical to a disk round trip by construction).
    pub fn from_graph(g: &Graph) -> Self {
        Self::from_bytes(Bytes::from_vec(pack_to_vec(g)))
            .expect("freshly packed image always parses")
    }

    /// Map a packed image from disk (zero-copy on unix).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, GraphError> {
        Self::from_bytes(Bytes::map_file(path.as_ref())?)
    }

    /// Write the packed image to disk (the in-memory bytes *are* the file
    /// format).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), GraphError> {
        std::fs::write(path, self.bytes.as_slice())?;
        Ok(())
    }

    /// The raw packed image — what `save` writes and `load` maps.
    pub fn as_bytes(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// Parse a packed image.
    pub fn from_bytes(bytes: Bytes) -> Result<Self, GraphError> {
        let b = bytes.as_slice();
        if b.len() < HEADER_LEN {
            return Err(parse_err("packed graph: truncated header"));
        }
        if b[0..8] != MAGIC {
            return Err(parse_err(format!(
                "packed graph: bad magic {:?} (expected {:?})",
                &b[0..8],
                MAGIC
            )));
        }
        if read_u64(b, 8) != ENDIAN_PROBE {
            return Err(parse_err(
                "packed graph: endianness mismatch (image written on a foreign byte order)",
            ));
        }
        let n = read_u64(b, 16) as usize;
        let m = read_u64(b, 24) as usize;
        let label_count = read_u64(b, 32) as usize;
        let deg_l = u32::from_le_bytes(b[40..44].try_into().unwrap());
        let off_l = u32::from_le_bytes(b[44..48].try_into().unwrap());
        let mut sections: [Range; SECTIONS] = std::array::from_fn(|_| 0..0);
        for (i, s) in sections.iter_mut().enumerate() {
            let p = 48 + i * 16;
            let off = read_u64(b, p) as usize;
            let len = read_u64(b, p + 8) as usize;
            let end = off
                .checked_add(len)
                .ok_or_else(|| parse_err(format!("packed graph: section {i} overflows")))?;
            if !off.is_multiple_of(8) || end > b.len() {
                return Err(parse_err(format!(
                    "packed graph: section {i} out of bounds ({off}..{end} of {})",
                    b.len()
                )));
            }
            *s = off..end;
        }
        let [labels, label_offsets, label_index, deg_lows, deg_highs, off_lows, off_highs, adj] =
            sections;
        if labels.len() != n * 2
            || label_offsets.len() != (label_count + 1) * 8
            || label_index.len() != n * 4
        {
            return Err(parse_err(
                "packed graph: label section sizes disagree with header",
            ));
        }
        if deg_l >= 64 || off_l >= 64 {
            return Err(parse_err("packed graph: Elias-Fano low width out of range"));
        }
        let g = CompressedGraph {
            deg_rank: build_rank(words_u64(&bytes, &deg_highs)),
            off_rank: build_rank(words_u64(&bytes, &off_highs)),
            cache_id: NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed),
            cache_capacity: DECODE_CACHE_DEFAULT_BYTES,
            cache_bytes: Arc::new(AtomicUsize::new(0)),
            bytes,
            n,
            m,
            label_count,
            deg_l,
            off_l,
            labels,
            label_offsets,
            label_index,
            deg_lows,
            deg_highs,
            off_lows,
            off_highs,
            adj,
        };
        // Index sanity: the final cumulative degree must be 2|E| and the
        // final cumulative offset the adjacency length.
        if g.n > 0 || g.m > 0 {
            if g.deg_ef().get(g.n) != 2 * g.m as u64 {
                return Err(parse_err("packed graph: degree index disagrees with |E|"));
            }
            if g.off_ef().get(g.n) != g.adj.len() as u64 {
                return Err(parse_err(
                    "packed graph: offset index disagrees with adjacency length",
                ));
            }
        }
        Ok(g)
    }

    fn deg_ef(&self) -> EfView<'_> {
        EfView {
            l: self.deg_l,
            lows: words_u64(&self.bytes, &self.deg_lows),
            highs: words_u64(&self.bytes, &self.deg_highs),
            rank: &self.deg_rank,
        }
    }

    fn off_ef(&self) -> EfView<'_> {
        EfView {
            l: self.off_l,
            lows: words_u64(&self.bytes, &self.off_lows),
            highs: words_u64(&self.bytes, &self.off_highs),
            rank: &self.off_rank,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges (each counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Number of distinct label values the graph can hold.
    #[inline]
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// The label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        let p = self.labels.start + v as usize * 2;
        u16::from_le_bytes(self.bytes.as_slice()[p..p + 2].try_into().unwrap())
    }

    /// Degree of vertex `v` (two Elias-Fano selects).
    pub fn degree(&self, v: VertexId) -> usize {
        let ef = self.deg_ef();
        (ef.get(v as usize + 1) - ef.get(v as usize)) as usize
    }

    /// The compressed adjacency region of `v` — decode, probe, or
    /// intersect without materializing.
    pub fn neighbors(&self, v: VertexId) -> CompressedNeighbors<'_> {
        let ef = self.off_ef();
        let start = ef.get(v as usize) as usize;
        let end = ef.get(v as usize + 1) as usize;
        CompressedNeighbors {
            region: &self.bytes.as_slice()[self.adj.start + start..self.adj.start + end],
            deg: self.degree(v),
            base: start,
        }
    }

    /// Whether the undirected edge `(u, v)` exists (probes the smaller
    /// side, like the CSR backend).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        match self.with_cached(a, |decoded, _| decoded.binary_search(&b).is_ok()) {
            Some(hit) => hit,
            None => self.neighbors(a).contains(b),
        }
    }

    /// Override the per-thread decoded-adjacency cache budget, in bytes
    /// (default [`DECODE_CACHE_DEFAULT_BYTES`]); `0` disables the cache.
    /// Purely a wall-clock knob: every query result and every modeled
    /// probe address is identical with the cache on or off.
    pub fn with_decode_cache(mut self, capacity_bytes: usize) -> Self {
        self.cache_capacity = capacity_bytes;
        self
    }

    /// The configured per-thread cache budget in bytes (`0` = disabled).
    pub fn decode_cache_capacity(&self) -> usize {
        self.cache_capacity
    }

    /// Bytes currently resident in this graph's decode-cache entries,
    /// summed over all threads.
    pub fn decode_cache_bytes(&self) -> usize {
        self.cache_bytes.load(Ordering::Relaxed)
    }

    /// Cached membership probe of `x` in `v`'s adjacency. Replays the
    /// exact byte-offset sequence [`CompressedNeighbors::contains_with_probes`]
    /// reports — restart-table reads, block-first decodes, and per-entry
    /// stream positions — so the coalescing memory model charges identical
    /// modeled traffic whether the decoded list was cached or the Rice
    /// stream was walked.
    pub fn contains_with_probes(
        &self,
        v: VertexId,
        x: VertexId,
        mut probe: impl FnMut(usize),
    ) -> bool {
        let nb = self.neighbors(v);
        match self.with_cached(v, |decoded, pos| {
            replay_contains(&nb, decoded, pos, x, &mut probe)
        }) {
            Some(hit) => hit,
            None => nb.contains_with_probes(x, probe),
        }
    }

    /// Decode `v`'s full adjacency, recording the byte offset each entry's
    /// decode starts at — exactly the positions the per-block probe path
    /// reports, so a cached entry can replay them.
    fn decode_with_positions(&self, v: VertexId) -> (Vec<VertexId>, Vec<u32>) {
        let nb = self.neighbors(v);
        let mut decoded = Vec::with_capacity(nb.deg);
        let mut pos = Vec::with_capacity(nb.deg);
        let mut cur = BlockCursor::at(nb.data_start());
        let mut prev = 0;
        for idx in 0..nb.deg {
            if idx.is_multiple_of(BLOCK) {
                // `decode_next` re-aligns at block starts; align first so
                // the recorded position is the block's byte-aligned
                // restart — what `contains_with_probes` probes.
                cur.align();
            }
            pos.push(cur.pos as u32);
            let w = decode_next(&mut cur, nb.region, idx, nb.deg, prev);
            decoded.push(w);
            prev = w;
        }
        (decoded, pos)
    }

    /// Run `f` over the cached decode of `v` (inserting on miss). `None`
    /// when the cache is disabled, unavailable (re-entrant storage call on
    /// this thread — `f` runs under the cache borrow), or the list exceeds
    /// the whole budget — callers fall back to the streaming decoder.
    fn with_cached<R>(&self, v: VertexId, f: impl FnOnce(&[VertexId], &[u32]) -> R) -> Option<R> {
        if self.cache_capacity == 0 {
            return None;
        }
        DECODE_CACHE.with(|tls| {
            let mut cache = tls.try_borrow_mut().ok()?;
            let shard = cache.shard(self.cache_id);
            let GraphShard {
                ref mut entries,
                ref mut futile_evictions,
                ..
            } = *shard;
            if let Some(e) = entries.get_mut(&v) {
                e.hot = true;
                e.touched = true;
                *futile_evictions = 0;
                return Some(f(&e.decoded, &e.pos));
            }
            let (decoded, pos) = self.decode_with_positions(v);
            match shard.insert(v, decoded, pos, self.cache_capacity, &self.cache_bytes) {
                Ok(e) => Some(f(&e.decoded, &e.pos)),
                Err((decoded, pos)) => Some(f(&decoded, &pos)),
            }
        })
    }

    /// Vertices carrying label `l`, sorted by id — zero-copy from the
    /// image.
    pub fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        let l = l as usize;
        if l >= self.label_count {
            return &[];
        }
        let offs = words_u64(&self.bytes, &self.label_offsets);
        let idx = words_u32(&self.bytes, &self.label_index);
        &idx[offs[l] as usize..offs[l + 1] as usize]
    }

    /// Whether the image is a live file mapping (vs owned bytes).
    pub fn is_mapped(&self) -> bool {
        self.bytes.is_mapped()
    }

    /// Resident footprint: the image (mapped extent or owned capacity),
    /// the load-time select-rank tables, and every byte currently held by
    /// this graph's decode-cache entries across all threads — the cache
    /// is capacity-bounded, and its cost is never hidden from the
    /// compression accounting.
    pub fn mem_bytes(&self) -> usize {
        self.bytes.mem_bytes()
            + (self.deg_rank.capacity() + self.off_rank.capacity()) * 4
            + self.decode_cache_bytes()
    }

    /// Decompress back into an in-memory CSR graph (the `unpack`
    /// direction of the round-trip property).
    pub fn to_csr(&self) -> Graph {
        let mut b = GraphBuilder::with_vertices(self.n);
        for v in 0..self.n as VertexId {
            b.set_label(v, self.label(v));
            for w in self.neighbors(v).iter() {
                if v < w {
                    b.add_edge(v, w);
                }
            }
        }
        b.build().expect("decoded adjacency is in range")
    }
}

/// Replay [`CompressedNeighbors::contains_with_probes`] from a cached
/// decode: the same restart-table binary search (probing table reads and
/// block-first positions) followed by the same truncated in-block scan,
/// with every probe address taken from the recorded entry positions.
fn replay_contains(
    nb: &CompressedNeighbors<'_>,
    decoded: &[VertexId],
    pos: &[u32],
    x: VertexId,
    probe: &mut impl FnMut(usize),
) -> bool {
    if decoded.is_empty() {
        return false;
    }
    let nblocks = nb.nblocks();
    let mut block = 0usize;
    if nblocks > 1 {
        let (mut lo, mut hi) = (0usize, nblocks);
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            probe(nb.base + mid * 4); // restart-table read
            probe(nb.base + pos[mid * BLOCK] as usize); // block-first decode
            if decoded[mid * BLOCK] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        block = lo;
    }
    let end = ((block + 1) * BLOCK).min(decoded.len());
    for idx in block * BLOCK..end {
        probe(nb.base + pos[idx] as usize);
        let v = decoded[idx];
        if v >= x {
            return v == x;
        }
    }
    false
}

/// View an 8-byte-aligned little-endian section as `&[u64]`.
fn words_u64<'a>(bytes: &'a Bytes, r: &Range) -> &'a [u64] {
    let s = &bytes.as_slice()[r.clone()];
    debug_assert_eq!(s.as_ptr() as usize % 8, 0);
    debug_assert_eq!(s.len() % 8, 0);
    // SAFETY: the section was written as little-endian u64 words at an
    // 8-byte-aligned offset of the 8-byte-aligned buffer (asserted above),
    // every bit pattern is a valid u64, and the view borrows `bytes`.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u64, s.len() / 8) }
}

/// View a 4-byte-aligned little-endian section as `&[u32]`.
fn words_u32<'a>(bytes: &'a Bytes, r: &Range) -> &'a [u32] {
    let s = &bytes.as_slice()[r.clone()];
    debug_assert_eq!(s.as_ptr() as usize % 4, 0);
    debug_assert_eq!(s.len() % 4, 0);
    // SAFETY: the section was written as little-endian u32 words at a
    // 4-byte-aligned offset (asserted above), every bit pattern is a valid
    // u32, and the view borrows `bytes`.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u32, s.len() / 4) }
}

impl GraphStorage for CompressedGraph {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> usize {
        self.m
    }

    fn label_count(&self) -> usize {
        self.label_count
    }

    fn label(&self, v: VertexId) -> Label {
        CompressedGraph::label(self, v)
    }

    fn degree(&self, v: VertexId) -> usize {
        CompressedGraph::degree(self, v)
    }

    fn neighbors_ref(&self, v: VertexId) -> NeighborsRef<'_> {
        match self.with_cached(v, |decoded, _| decoded.to_vec()) {
            Some(out) => NeighborsRef::Owned(out),
            None => {
                let nb = self.neighbors(v);
                let mut out = Vec::with_capacity(nb.len());
                nb.decode_into(&mut out);
                NeighborsRef::Owned(out)
            }
        }
    }

    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        if self
            .with_cached(v, |decoded, _| out.extend_from_slice(decoded))
            .is_none()
        {
            self.neighbors(v).decode_into(out);
        }
    }

    fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId) -> bool) {
        // `f` runs under the cache borrow; a storage call inside it falls
        // back to the streaming decoder (`with_cached` → `None`) rather
        // than deadlocking or panicking.
        if self
            .with_cached(v, |decoded, _| {
                for &w in decoded {
                    if !f(w) {
                        break;
                    }
                }
            })
            .is_some()
        {
            return;
        }
        for w in self.neighbors(v).iter() {
            if !f(w) {
                break;
            }
        }
    }

    fn intersect_neighbors_into(&self, v: VertexId, other: &[VertexId], out: &mut Vec<VertexId>) {
        if self
            .with_cached(v, |decoded, _| {
                intersect::intersect_into(decoded, other, out)
            })
            .is_none()
        {
            self.neighbors(v).intersect_into(other, out);
        }
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        CompressedGraph::has_edge(self, u, v)
    }

    fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        CompressedGraph::vertices_with_label(self, l)
    }

    fn mem_bytes(&self) -> usize {
        CompressedGraph::mem_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    fn check_equiv(g: &Graph, c: &CompressedGraph) {
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        assert_eq!(c.label_count(), g.label_count());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(c.label(v), g.label(v), "label({v})");
            assert_eq!(c.degree(v), g.degree(v), "degree({v})");
            let decoded: Vec<VertexId> = c.neighbors(v).iter().collect();
            assert_eq!(decoded, g.neighbors(v), "neighbors({v})");
        }
        for l in 0..g.label_count() as Label {
            assert_eq!(
                c.vertices_with_label(l),
                g.vertices_with_label(l),
                "label {l}"
            );
        }
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let vals = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        for &v in &vals {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(read_varint(&buf, &mut pos), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn elias_fano_round_trip() {
        for (n, step) in [(0usize, 0u64), (1, 0), (5, 3), (1000, 7), (1000, 0)] {
            let values: Vec<u64> = (0..n as u64).map(|i| i * step + (i % 2)).collect();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let ef = EliasFano::encode(&sorted);
            let rank = build_rank(&ef.highs);
            let view = EfView {
                l: ef.l,
                lows: &ef.lows,
                highs: &ef.highs,
                rank: &rank,
            };
            for (i, &v) in sorted.iter().enumerate() {
                assert_eq!(view.get(i), v, "i={i} n={n} step={step}");
            }
        }
    }

    #[test]
    fn yeast_round_trips_through_pack() {
        let g = datasets::dataset("yeast");
        let c = CompressedGraph::from_graph(&g);
        check_equiv(&g, &c);
        assert_eq!(c.to_csr(), g, "unpack reproduces the CSR bitwise");
    }

    #[test]
    fn multi_block_lists_and_seeks() {
        // A hub with degree far past BLOCK, with irregular gaps.
        let n = 1000u32;
        let mut b = GraphBuilder::with_vertices(n as usize);
        for v in 1..n {
            if v % 3 != 0 {
                b.add_edge(0, v);
            }
        }
        let g = b.build().unwrap();
        let c = CompressedGraph::from_graph(&g);
        check_equiv(&g, &c);
        let nb = c.neighbors(0);
        assert!(nb.nblocks() > 1, "hub must span blocks");
        for v in 0..n + 2 {
            assert_eq!(
                nb.contains(v),
                g.neighbors(0).binary_search(&v).is_ok(),
                "v={v}"
            );
        }
        // Monotone seeker agrees with contains.
        let mut seek = nb.seeker();
        for v in 0..n + 2 {
            assert_eq!(seek.advance_to(v), nb.contains(v), "seek v={v}");
        }
        // Both intersect strategies (skew forces the seek path; a same-size
        // operand forces the decode-merge path) match the engine.
        let small: Vec<VertexId> = (0..n).step_by(97).collect();
        let big: Vec<VertexId> = (0..n).step_by(2).collect();
        for other in [&small, &big] {
            let mut got = Vec::new();
            nb.intersect_into(other, &mut got);
            let mut want = Vec::new();
            intersect::intersect_into(g.neighbors(0), other, &mut want);
            assert_eq!(got, want);
        }
    }

    /// A hub graph whose vertex 0 spans several blocks — the shape that
    /// exercises the restart-table binary search.
    fn hub_graph(n: u32) -> Graph {
        let mut b = GraphBuilder::with_vertices(n as usize);
        for v in 1..n {
            if v % 3 != 0 {
                b.add_edge(0, v);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn cached_probes_replay_the_streaming_sequence_bitwise() {
        let g = hub_graph(1000);
        let cached = CompressedGraph::from_graph(&g);
        let uncached = cached.clone().with_decode_cache(0);
        assert!(cached.neighbors(0).nblocks() > 1);
        for v in [0u32, 1, 500] {
            for x in 0..1002u32 {
                let mut want = Vec::new();
                let miss = uncached
                    .neighbors(v)
                    .contains_with_probes(x, |p| want.push(p));
                // First call may populate the cache (miss), second must
                // hit — both replay the identical probe sequence.
                for round in 0..2 {
                    let mut got = Vec::new();
                    let hit = cached.contains_with_probes(v, x, |p| got.push(p));
                    assert_eq!(hit, miss, "v={v} x={x} round={round}");
                    assert_eq!(got, want, "probe addresses v={v} x={x} round={round}");
                }
            }
        }
        assert!(
            cached.decode_cache_bytes() > 0,
            "probes populated the cache"
        );
    }

    #[test]
    fn cache_respects_its_budget_and_accounts_in_mem_bytes() {
        let g = hub_graph(4000);
        let c = CompressedGraph::from_graph(&g).with_decode_cache(8 * 1024);
        let base = c.mem_bytes();
        for v in 0..g.num_vertices() as VertexId {
            let _ = c.neighbors_ref(v);
        }
        let resident = c.decode_cache_bytes();
        assert!(resident > 0, "scan populated the cache");
        assert!(
            resident <= 8 * 1024,
            "resident {resident}B exceeds the 8KiB budget"
        );
        assert_eq!(c.mem_bytes(), base + resident, "mem_bytes counts the cache");
        // Disabled cache: no growth, identical answers.
        let off = CompressedGraph::from_graph(&g).with_decode_cache(0);
        let before = off.mem_bytes();
        for v in 0..64 {
            assert_eq!(&*off.neighbors_ref(v), &*c.neighbors_ref(v), "v={v}");
        }
        assert_eq!(off.mem_bytes(), before, "disabled cache never grows");
    }

    #[test]
    fn thrash_guard_freezes_admission_under_cyclic_scans() {
        // A working set far beyond the budget: without the guard every
        // access would decode, insert, and evict for zero hits. With it,
        // admission freezes after a capacity's worth of futile evictions,
        // the resident set pins, and answers stay exact.
        let g = hub_graph(4000);
        let c = CompressedGraph::from_graph(&g).with_decode_cache(8 * 1024);
        let n = g.num_vertices() as VertexId;
        for _ in 0..3 {
            for v in 0..n {
                assert_eq!(&*c.neighbors_ref(v), g.neighbors(v));
            }
        }
        let resident = c.decode_cache_bytes();
        assert!(resident > 0, "pinned set survives the scans");
        assert!(resident <= 8 * 1024, "guard never overflows the budget");
    }

    #[test]
    fn cached_storage_methods_match_streaming_decode() {
        let g = hub_graph(1000);
        let c = CompressedGraph::from_graph(&g);
        // Twice: first pass misses, second hits the cache.
        for round in 0..2 {
            for v in [0u32, 5, 999] {
                assert_eq!(&*c.neighbors_ref(v), g.neighbors(v), "round={round}");
                let mut buf = Vec::new();
                c.neighbors_into(v, &mut buf);
                assert_eq!(buf, g.neighbors(v));
                let mut seen = Vec::new();
                c.for_each_neighbor(v, |w| {
                    seen.push(w);
                    seen.len() < 70
                });
                assert_eq!(&seen[..], &g.neighbors(v)[..seen.len()]);
                let other: Vec<VertexId> = (0..1000).step_by(7).collect();
                let mut got = Vec::new();
                c.intersect_neighbors_into(v, &other, &mut got);
                let mut want = Vec::new();
                intersect::intersect_into(g.neighbors(v), &other, &mut want);
                assert_eq!(got, want);
                for x in [0u32, 1, 4, 500, 998] {
                    assert_eq!(
                        GraphStorage::has_edge(&c, v, x),
                        g.neighbors(v).binary_search(&x).is_ok(),
                        "has_edge({v},{x}) round={round}"
                    );
                }
            }
        }
    }

    #[test]
    fn disk_round_trip_via_mmap() {
        let g = datasets::dataset("yeast");
        let c = CompressedGraph::from_graph(&g);
        let path = std::env::temp_dir().join(format!("gsword-pack-{}.gsw", std::process::id()));
        c.save(&path).unwrap();
        let loaded = CompressedGraph::load(&path).unwrap();
        #[cfg(unix)]
        assert!(loaded.is_mapped(), "disk load maps the image");
        check_equiv(&g, &loaded);
        assert_eq!(loaded.to_csr(), g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let g = datasets::dataset("yeast");
        let mut img = pack_to_vec(&g);
        assert!(CompressedGraph::from_bytes(Bytes::from_vec(b"short".to_vec())).is_err());
        let mut bad_magic = img.clone();
        bad_magic[0] = b'X';
        assert!(CompressedGraph::from_bytes(Bytes::from_vec(bad_magic)).is_err());
        let mut bad_endian = img.clone();
        bad_endian[8..16].copy_from_slice(&ENDIAN_PROBE.to_be_bytes());
        assert!(CompressedGraph::from_bytes(Bytes::from_vec(bad_endian)).is_err());
        // Lie about |E|: the degree-index cross-check must trip.
        img[24..32].copy_from_slice(&(g.num_edges() as u64 + 1).to_le_bytes());
        assert!(CompressedGraph::from_bytes(Bytes::from_vec(img)).is_err());
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let empty = GraphBuilder::new().build().unwrap();
        let c = CompressedGraph::from_graph(&empty);
        assert_eq!(c.num_vertices(), 0);
        assert_eq!(c.to_csr(), empty);
        let mut b = GraphBuilder::with_vertices(3);
        b.set_label(1, 7);
        let g = b.build().unwrap(); // no edges at all
        let c = CompressedGraph::from_graph(&g);
        check_equiv(&g, &c);
        assert!(c.neighbors(0).is_empty());
        assert!(!GraphStorage::has_edge(&c, 0, 1));
    }

    #[test]
    fn compression_beats_csr_on_power_law_suites() {
        let g = datasets::dataset("eu2005");
        let c = CompressedGraph::from_graph(&g);
        let ratio = c.mem_bytes() as f64 / g.mem_bytes() as f64;
        assert!(
            ratio < 0.5,
            "compressed/CSR = {ratio:.2} ({} / {} bytes)",
            c.mem_bytes(),
            g.mem_bytes()
        );
    }
}
