//! Text-format readers and writers.
//!
//! The format is the one used across the subgraph-matching literature
//! (CECI, GuP, the in-depth study of Sun & Luo, the original gSWORD
//! artifacts):
//!
//! ```text
//! t <num_vertices> <num_edges>
//! v <id> <label> <degree>
//! ...
//! e <u> <v>
//! ...
//! ```
//!
//! The degree column on `v` lines is informational and ignored on load.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{Graph, GraphBuilder, GraphError, Label, VertexId};

/// Parse a graph from a reader in `t/v/e` text format.
pub fn read_graph<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut builder: Option<GraphBuilder> = None;
    let mut line_no = 0usize;

    for line in reader.lines() {
        line_no += 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let tag = it.next().unwrap();
        let parse_err = |message: &str| GraphError::Parse {
            line: line_no,
            message: message.to_string(),
        };
        match tag {
            "t" => {
                let n: usize = it
                    .next()
                    .ok_or_else(|| parse_err("missing vertex count"))?
                    .parse()
                    .map_err(|_| parse_err("bad vertex count"))?;
                builder = Some(GraphBuilder::with_vertices(n));
            }
            "v" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err("'v' record before 't' header"))?;
                let id: VertexId = it
                    .next()
                    .ok_or_else(|| parse_err("missing vertex id"))?
                    .parse()
                    .map_err(|_| parse_err("bad vertex id"))?;
                let label: Label = it
                    .next()
                    .ok_or_else(|| parse_err("missing label"))?
                    .parse()
                    .map_err(|_| parse_err("bad label"))?;
                if (id as usize) >= b.num_vertices() {
                    return Err(parse_err("vertex id exceeds declared count"));
                }
                b.set_label(id, label);
            }
            "e" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err("'e' record before 't' header"))?;
                let u: VertexId = it
                    .next()
                    .ok_or_else(|| parse_err("missing edge endpoint"))?
                    .parse()
                    .map_err(|_| parse_err("bad edge endpoint"))?;
                let v: VertexId = it
                    .next()
                    .ok_or_else(|| parse_err("missing edge endpoint"))?
                    .parse()
                    .map_err(|_| parse_err("bad edge endpoint"))?;
                b.add_edge(u, v);
            }
            _ => return Err(parse_err("unknown record tag")),
        }
    }
    builder
        .ok_or(GraphError::Parse {
            line: line_no,
            message: "empty input (no 't' header)".to_string(),
        })?
        .build()
}

/// Load a graph from a file in `t/v/e` text format.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_graph(std::fs::File::open(path)?)
}

/// Serialize a graph to a writer in `t/v/e` text format.
pub fn write_graph<W: Write>(graph: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "t {} {}", graph.num_vertices(), graph.num_edges())?;
    for v in 0..graph.num_vertices() as VertexId {
        writeln!(w, "v {} {} {}", v, graph.label(v), graph.degree(v))?;
    }
    for (u, v) in graph.edges() {
        writeln!(w, "e {u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Save a graph to a file in `t/v/e` text format.
pub fn save_graph<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<(), GraphError> {
    write_graph(graph, std::fs::File::create(path)?)
}

/// Parse a SNAP-style whitespace edge list (`u v` per line, `#`/`%`
/// comments). Vertex ids may be sparse; they are compacted to `0..n`.
/// All vertices receive label 0 — assign labels afterwards (e.g. via
/// [`crate::gen::zipf_labels`] and [`relabel`]), matching the paper's
/// treatment of unlabeled datasets.
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut id_map: std::collections::HashMap<u64, VertexId> = std::collections::HashMap::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let parse_err = |message: &str| GraphError::Parse {
            line: line_no,
            message: message.to_string(),
        };
        let u: u64 = it
            .next()
            .ok_or_else(|| parse_err("missing endpoint"))?
            .parse()
            .map_err(|_| parse_err("bad endpoint"))?;
        let v: u64 = it
            .next()
            .ok_or_else(|| parse_err("missing endpoint"))?
            .parse()
            .map_err(|_| parse_err("bad endpoint"))?;
        let mut intern = |x: u64| -> VertexId {
            let next = id_map.len() as VertexId;
            *id_map.entry(x).or_insert(next)
        };
        let (a, b) = (intern(u), intern(v));
        edges.push((a, b));
    }
    let mut builder = GraphBuilder::with_vertices(id_map.len());
    for (a, b) in edges {
        builder.add_edge(a, b);
    }
    builder.build()
}

/// Load a SNAP-style edge list from a file. See [`read_edge_list`].
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Rebuild a graph with new vertex labels (same structure).
pub fn relabel(graph: &Graph, labels: &[Label]) -> Result<Graph, GraphError> {
    if labels.len() != graph.num_vertices() {
        return Err(GraphError::Parse {
            line: 0,
            message: format!(
                "label count {} does not match vertex count {}",
                labels.len(),
                graph.num_vertices()
            ),
        });
    }
    let mut b = GraphBuilder::with_vertices(graph.num_vertices());
    for (v, &l) in labels.iter().enumerate() {
        b.set_label(v as VertexId, l);
    }
    for (u, v) in graph.edges() {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# comment
t 4 5
v 0 0 2
v 1 1 3
v 2 1 3
v 3 2 2
e 0 1
e 0 2
e 1 2
e 1 3
e 2 3
";

    #[test]
    fn parse_sample() {
        let g = read_graph(SAMPLE.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.label(1), 1);
        assert!(g.has_edge(1, 3));
    }

    #[test]
    fn round_trip() {
        let g = read_graph(SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_graph("v 0 1 0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_bad_vertex_id() {
        let err = read_graph("t 1 0\nv 9 0 0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_unknown_tag() {
        let err = read_graph("t 1 0\nx 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(read_graph("".as_bytes()).is_err());
    }

    #[test]
    fn edge_list_compacts_sparse_ids() {
        let g = read_edge_list("# snap header\n10 20\n20 30\n10 30\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("1 x\n".as_bytes()).is_err());
        assert!(read_edge_list("1\n".as_bytes()).is_err());
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = read_edge_list("0 1\n1 2\n".as_bytes()).unwrap();
        let g2 = relabel(&g, &[5, 6, 7]).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.label(1), 6);
        assert!(relabel(&g, &[1]).is_err());
    }
}
