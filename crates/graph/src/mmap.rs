//! Zero-copy file mapping for packed graphs, with an aligned owned
//! fallback.
//!
//! The workspace vendors no `libc`, so the unix path declares the two
//! syscall wrappers it needs (`mmap`/`munmap`) directly. Non-unix targets
//! (and empty files) fall back to reading the file into an owned buffer.
//! Either way the bytes are guaranteed 8-byte aligned: mapped pages are
//! page-aligned, and the owned buffer is backed by a `Vec<u64>` — which is
//! what lets the packed-format reader cast its `u64`/`u32`/`u16` sections
//! in place instead of copying them out.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;

/// An owned byte buffer with 8-byte alignment (backed by `Vec<u64>`).
#[derive(Debug, Clone, Default)]
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copy `data` into a fresh aligned buffer.
    pub fn from_slice(data: &[u8]) -> Self {
        let mut words = vec![0u64; data.len().div_ceil(8)];
        // SAFETY: the byte view covers exactly the `Vec<u64>` allocation
        // (len * 8 bytes), u8 has no alignment requirement, and `words` is
        // exclusively borrowed for the duration of the view.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8)
        };
        dst[..data.len()].copy_from_slice(data);
        AlignedBytes {
            words,
            len: data.len(),
        }
    }

    /// The buffer contents.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `len <= words.len() * 8` by construction (`from_slice`
        // sizes the word buffer to cover it), the words stay alive for
        // `'self`, and a shared byte view of initialized u64s is valid.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    /// Heap footprint in bytes (allocated capacity).
    pub fn capacity_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed(p: *mut c_void) -> bool {
        p as usize == usize::MAX || p.is_null()
    }
}

/// Read-only bytes of a packed graph: either a private file mapping (unix,
/// non-empty files) or an owned aligned buffer. Always 8-byte aligned.
#[derive(Debug)]
pub enum Bytes {
    /// Owned, 8-byte-aligned copy.
    Owned(AlignedBytes),
    /// A live `mmap` of the file.
    #[cfg(unix)]
    Mapped {
        /// Page-aligned mapping base.
        ptr: *const u8,
        /// Mapped length in bytes.
        len: usize,
    },
}

// SAFETY: the mapped variant is a private, read-only mapping never mutated
// or remapped after construction, so moving it across threads and sharing
// references is sound; the owned variant is plain Vec-backed data.
#[cfg(unix)]
unsafe impl Send for Bytes {}
// SAFETY: same invariant as Send — all access paths are read-only.
#[cfg(unix)]
unsafe impl Sync for Bytes {}

impl Clone for Bytes {
    fn clone(&self) -> Self {
        // Cloning a mapping degrades to an owned copy — clones are rare
        // (CLI plumbing), mappings are not refcounted.
        Bytes::Owned(AlignedBytes::from_slice(self.as_slice()))
    }
}

impl Bytes {
    /// Take ownership of `data` in an aligned buffer.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes::Owned(AlignedBytes::from_slice(&data))
    }

    /// Map `path` read-only (unix) or read it into an aligned owned buffer
    /// (other targets, empty files, or mapping failure).
    pub fn map_file(path: &Path) -> io::Result<Self> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            if len > 0 {
                // SAFETY: a null-addr PROT_READ/MAP_PRIVATE request with a
                // nonzero length and a live fd is a valid mmap call; the
                // result is checked against MAP_FAILED before use.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if !sys::map_failed(ptr) {
                    return Ok(Bytes::Mapped {
                        ptr: ptr as *const u8,
                        len,
                    });
                }
                // Fall through to the buffered read on mapping failure.
            }
        }
        let mut buf = Vec::with_capacity(len);
        file.read_to_end(&mut buf)?;
        Ok(Bytes::from_vec(buf))
    }

    /// The bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Bytes::Owned(b) => b.as_slice(),
            #[cfg(unix)]
            // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
            // bytes, unmapped only in Drop, so the view is valid for 'self.
            Bytes::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Bytes::Owned(b) => b.len,
            #[cfg(unix)]
            Bytes::Mapped { len, .. } => *len,
        }
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the bytes are a live file mapping (vs an owned copy).
    pub fn is_mapped(&self) -> bool {
        match self {
            Bytes::Owned(_) => false,
            #[cfg(unix)]
            Bytes::Mapped { .. } => true,
        }
    }

    /// Resident footprint: allocated capacity for owned buffers, the
    /// mapped extent for mappings.
    pub fn mem_bytes(&self) -> usize {
        match self {
            Bytes::Owned(b) => b.capacity_bytes(),
            #[cfg(unix)]
            Bytes::Mapped { len, .. } => *len,
        }
    }
}

impl Drop for Bytes {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Bytes::Mapped { ptr, len } = self {
            // SAFETY: `ptr`/`len` came from a successful mmap and Drop runs
            // once, so this is the unique munmap of that mapping.
            unsafe {
                sys::munmap(*ptr as *mut std::ffi::c_void, *len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gsword-mmap-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn aligned_bytes_round_trip_and_alignment() {
        for n in [0usize, 1, 7, 8, 9, 4096] {
            let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            let a = AlignedBytes::from_slice(&data);
            assert_eq!(a.as_slice(), &data[..]);
            assert_eq!(a.as_slice().as_ptr() as usize % 8, 0);
        }
    }

    #[test]
    fn map_file_reads_back_contents() {
        let path = temp_path("roundtrip");
        let data: Vec<u8> = (0..10_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::write(&path, &data).unwrap();
        let bytes = Bytes::map_file(&path).unwrap();
        assert_eq!(bytes.as_slice(), &data[..]);
        assert_eq!(bytes.len(), data.len());
        assert_eq!(bytes.as_slice().as_ptr() as usize % 8, 0);
        #[cfg(unix)]
        assert!(bytes.is_mapped(), "non-empty files map on unix");
        assert!(bytes.mem_bytes() >= data.len());
        let clone = bytes.clone();
        assert!(!clone.is_mapped(), "clones degrade to owned copies");
        assert_eq!(clone.as_slice(), bytes.as_slice());
        drop(bytes);
        drop(clone);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_falls_back_to_owned() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let bytes = Bytes::map_file(&path).unwrap();
        assert!(bytes.is_empty());
        assert!(!bytes.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(Bytes::map_file(Path::new("/nonexistent/gsword.pack")).is_err());
    }
}
