//! Graph statistics — the columns of Table 1.

use crate::storage::GraphStorage;
use crate::VertexId;

/// Summary statistics of a data graph (Table 1's columns plus the degree
/// extremes the workload-imbalance discussion depends on).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// |V|.
    pub num_vertices: usize,
    /// |E| (undirected, counted once).
    pub num_edges: usize,
    /// Average degree `2|E|/|V|`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of distinct labels that occur.
    pub labels: usize,
    /// Coefficient of variation of the degree distribution (stddev/mean) —
    /// the skew proxy behind refine imbalance.
    pub degree_cv: f64,
    /// Resident footprint of the backend in bytes (allocated capacity /
    /// mapped extent) — compared across backends for honest compression
    /// ratios.
    pub mem_bytes: usize,
}

impl GraphStats {
    /// Compute statistics for any storage backend.
    pub fn of<S: GraphStorage>(g: &S) -> Self {
        let n = g.num_vertices();
        let degrees: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
        let mean = if n == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / n as f64
        };
        let var = if n == 0 {
            0.0
        } else {
            degrees
                .iter()
                .map(|&d| {
                    let x = d as f64 - mean;
                    x * x
                })
                .sum::<f64>()
                / n as f64
        };
        GraphStats {
            num_vertices: n,
            num_edges: g.num_edges(),
            avg_degree: g.avg_degree(),
            max_degree: degrees.iter().copied().max().unwrap_or(0),
            labels: g.distinct_labels(),
            degree_cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
            mem_bytes: g.mem_bytes(),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|V|={} |E|={} d={:.1} dmax={} L={} cv={:.2} mem={}B",
            self.num_vertices,
            self.num_edges,
            self.avg_degree,
            self.max_degree,
            self.labels,
            self.degree_cv,
            self.mem_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_of_triangle() {
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let s = GraphStats::of(&b.build().unwrap());
        assert_eq!(s.num_vertices, 3);
        assert_eq!(s.num_edges, 3);
        assert!((s.avg_degree - 2.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.labels, 1);
        assert!(s.degree_cv.abs() < 1e-12, "regular graph has zero cv");
    }

    #[test]
    fn stats_of_empty() {
        let s = GraphStats::of(&GraphBuilder::new().build().unwrap());
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.degree_cv, 0.0);
    }

    #[test]
    fn skew_increases_cv() {
        // Star graph: one hub of degree 9, nine leaves of degree 1.
        let mut b = GraphBuilder::with_vertices(10);
        for v in 1..10 {
            b.add_edge(0, v);
        }
        let s = GraphStats::of(&b.build().unwrap());
        assert!(s.degree_cv > 1.0, "star cv {}", s.degree_cv);
    }
}
