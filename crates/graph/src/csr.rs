//! Compressed sparse row storage for undirected, vertex-labeled graphs.

use crate::{GraphError, Label, VertexId};

/// An undirected, vertex-labeled graph in CSR form.
///
/// Both directions of every edge are stored, adjacency lists are sorted, and
/// the structure is immutable after construction — the access pattern the
/// sampling kernels rely on (contiguous neighbor slices, binary-search edge
/// probes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    neighbors: Vec<VertexId>,
    labels: Vec<Label>,
    /// Number of undirected edges (each counted once).
    num_edges: usize,
    /// Largest label value + 1.
    label_count: usize,
    /// Vertices grouped by label: `label_index[label_offsets[l]..label_offsets[l+1]]`.
    label_offsets: Vec<usize>,
    label_index: Vec<VertexId>,
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of undirected edges (each counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of distinct label values the graph can hold (max label + 1).
    #[inline]
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// The label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v as usize]
    }

    /// All vertex labels, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The sorted neighbor list of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Whether the undirected edge `(u, v)` exists. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        // Probe the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree (`2|E|/|V|`), as reported in Table 1.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        2.0 * self.num_edges as f64 / self.num_vertices() as f64
    }

    /// Vertices carrying label `l`, sorted by id.
    #[inline]
    pub fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        let l = l as usize;
        if l + 1 >= self.label_offsets.len() {
            return &[];
        }
        &self.label_index[self.label_offsets[l]..self.label_offsets[l + 1]]
    }

    /// Number of distinct labels that actually occur.
    pub fn distinct_labels(&self) -> usize {
        (0..self.label_count)
            .filter(|&l| !self.vertices_with_label(l as Label).is_empty())
            .count()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Payload size in bytes (used lengths only) — used to model
    /// candidate-graph transfer costs, where only the bytes actually
    /// shipped matter.
    pub fn byte_size(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
            + self.labels.len() * std::mem::size_of::<Label>()
            + self.label_offsets.len() * std::mem::size_of::<usize>()
            + self.label_index.len() * std::mem::size_of::<VertexId>()
    }

    /// Resident heap footprint in bytes, counting each vector's allocated
    /// *capacity* — what the process actually holds, and the honest
    /// numerator/denominator for compression ratios ([`byte_size`]
    /// (`Self::byte_size`) undercounts whenever a `Vec` over-allocated).
    pub fn mem_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.neighbors.capacity() * std::mem::size_of::<VertexId>()
            + self.labels.capacity() * std::mem::size_of::<Label>()
            + self.label_offsets.capacity() * std::mem::size_of::<usize>()
            + self.label_index.capacity() * std::mem::size_of::<VertexId>()
    }
}

impl crate::storage::GraphStorage for Graph {
    fn num_vertices(&self) -> usize {
        Graph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        Graph::num_edges(self)
    }

    fn label_count(&self) -> usize {
        Graph::label_count(self)
    }

    fn label(&self, v: VertexId) -> Label {
        Graph::label(self, v)
    }

    fn degree(&self, v: VertexId) -> usize {
        Graph::degree(self, v)
    }

    fn neighbors_ref(&self, v: VertexId) -> crate::storage::NeighborsRef<'_> {
        crate::storage::NeighborsRef::Borrowed(self.neighbors(v))
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        Graph::has_edge(self, u, v)
    }

    fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        Graph::vertices_with_label(self, l)
    }

    fn mem_bytes(&self) -> usize {
        Graph::mem_bytes(self)
    }

    fn max_degree(&self) -> usize {
        Graph::max_degree(self)
    }

    fn avg_degree(&self) -> f64 {
        Graph::avg_degree(self)
    }

    fn distinct_labels(&self) -> usize {
        Graph::distinct_labels(self)
    }
}

/// Incremental builder for [`Graph`].
///
/// Self-loops are dropped and duplicate edges are deduplicated at
/// [`GraphBuilder::build`] time.
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    labels: Vec<Label>,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Create a builder with no vertices.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a builder pre-sized for `n` vertices, all labeled `0`.
    pub fn with_vertices(n: usize) -> Self {
        GraphBuilder {
            labels: vec![0; n],
            edges: Vec::new(),
        }
    }

    /// Append a vertex with the given label, returning its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = self.labels.len() as VertexId;
        self.labels.push(label);
        id
    }

    /// Set the label of an existing vertex.
    pub fn set_label(&mut self, v: VertexId, label: Label) {
        self.labels[v as usize] = label;
    }

    /// Current number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Record an undirected edge. Self-loops are ignored.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        if u != v {
            self.edges.push((u.min(v), u.max(v)));
        }
    }

    /// Whether an edge has been recorded (linear scan; intended for small
    /// builders such as query extraction, not bulk loads).
    pub fn has_edge_slow(&self, u: VertexId, v: VertexId) -> bool {
        let key = (u.min(v), u.max(v));
        self.edges.contains(&key)
    }

    /// Finalize into an immutable CSR [`Graph`].
    pub fn build(mut self) -> Result<Graph, GraphError> {
        let n = self.labels.len();
        for &(u, v) in &self.edges {
            let hi = u.max(v) as u64;
            if hi >= n as u64 {
                return Err(GraphError::VertexOutOfRange {
                    vertex: hi,
                    num_vertices: n as u64,
                });
            }
        }
        self.edges.sort_unstable();
        self.edges.dedup();

        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for d in &degrees {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut neighbors = vec![0 as VertexId; offsets[n]];
        let mut cursor = offsets.clone();
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }

        let label_count = self
            .labels
            .iter()
            .map(|&l| l as usize + 1)
            .max()
            .unwrap_or(0);
        let mut label_counts = vec![0usize; label_count];
        for &l in &self.labels {
            label_counts[l as usize] += 1;
        }
        let mut label_offsets = Vec::with_capacity(label_count + 1);
        label_offsets.push(0usize);
        for c in &label_counts {
            label_offsets.push(label_offsets.last().unwrap() + c);
        }
        let mut label_index = vec![0 as VertexId; n];
        let mut lcursor = label_offsets.clone();
        for (v, &l) in self.labels.iter().enumerate() {
            label_index[lcursor[l as usize]] = v as VertexId;
            lcursor[l as usize] += 1;
        }

        Ok(Graph {
            offsets,
            neighbors,
            num_edges: self.edges.len(),
            labels: self.labels,
            label_count,
            label_offsets,
            label_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0-1, 0-2, 1-2, 1-3, 2-3 with labels 0,1,1,2
        let mut b = GraphBuilder::new();
        for l in [0, 1, 1, 2] {
            b.add_vertex(l);
        }
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = diamond();
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.neighbors(3), &[1, 2]);
        for u in 0..4u32 {
            for &v in g.neighbors(u) {
                assert!(g.has_edge(v, u), "edge ({u},{v}) not symmetric");
            }
        }
    }

    #[test]
    fn has_edge_probes() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(3, 0));
    }

    #[test]
    fn duplicate_edges_and_self_loops_collapse() {
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(2, 2);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn label_index_groups_vertices() {
        let g = diamond();
        assert_eq!(g.vertices_with_label(1), &[1, 2]);
        assert_eq!(g.vertices_with_label(0), &[0]);
        assert_eq!(g.vertices_with_label(7), &[] as &[VertexId]);
        assert_eq!(g.distinct_labels(), 3);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let mut b = GraphBuilder::with_vertices(2);
        b.add_edge(0, 5);
        assert!(matches!(
            b.build(),
            Err(GraphError::VertexOutOfRange { vertex: 5, .. })
        ));
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }
}
