//! The eight-dataset suite mirroring Table 1 of the paper at reduced scale.
//!
//! | Paper dataset | Category | Paper |V| / |E| / d / L | Suite |V| (scale) |
//! |---|---|---|---|
//! | Yeast    | Biology  | 3,112 / 12,519 / 8.0 / 71     | 3,112 (1×)    |
//! | HPRD     | Biology  | 9,460 / 34,998 / 7.4 / 307    | 9,460 (1×)    |
//! | WordNet  | Lexical  | 76,853 / 120,399 / 3.1 / 5    | 19,213 (4×)   |
//! | Patents  | Citation | 3.77M / 16.5M / 8.8 / 20      | 37,747 (100×) |
//! | DBLP     | Citation | 317,080 / 1.05M / 6.6 / 15    | 31,708 (10×)  |
//! | Orkut    | Social   | 3.07M / 117M / 38.1 / 150     | 30,724 (100×) |
//! | eu2005   | Web      | 862,664 / 16.1M / 37.4 / 40   | 21,566 (40×)  |
//! | uk2002   | Web      | 18.5M / 298M / 16.1 / 200     | 46,301 (400×) |
//!
//! The biology graphs are generated at full scale; the rest are scaled down
//! so the complete experiment suite runs on a laptop. Average degree, label
//! count, and degree-distribution family (near-uniform for biology,
//! power-law for citation/social/web, sparse tree-like for lexical) match
//! the originals — these are the properties that determine sampling
//! behaviour. See DESIGN.md §1 for the substitution argument.

use crate::gen::{barabasi_albert, erdos_renyi, sparse_lexical, zipf_labels};
use crate::Graph;

/// Degree-distribution family used for a suite dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Near-uniform degrees (Erdős–Rényi) — biology graphs.
    Uniform,
    /// Power-law degrees (Barabási–Albert) — citation/social/web graphs.
    PowerLaw,
    /// Sparse, label-poor, tree-like — the WordNet regime.
    Lexical,
}

/// Static description of one suite dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Suite name (lowercase paper name).
    pub name: &'static str,
    /// Category column of Table 1.
    pub category: &'static str,
    /// Generator family.
    pub family: Family,
    /// Suite vertex count.
    pub num_vertices: usize,
    /// Target undirected edge count (`Uniform`) or attachment count (`PowerLaw`).
    pub edge_param: usize,
    /// Number of distinct labels (Table 1's `L`).
    pub label_count: usize,
    /// Zipf skew of the label distribution.
    pub label_skew: f64,
    /// Scale-down factor relative to the paper's graph.
    pub scale: u32,
    /// Paper's |V|, |E|, avg degree for EXPERIMENTS.md cross-referencing.
    pub paper_vertices: u64,
    /// Paper's edge count.
    pub paper_edges: u64,
    /// Paper's average degree.
    pub paper_avg_degree: f64,
}

/// All eight specs, in Table 1 order.
pub const SPECS: [DatasetSpec; 8] = [
    DatasetSpec {
        name: "yeast",
        category: "Biology",
        family: Family::Uniform,
        num_vertices: 3_112,
        edge_param: 12_519,
        label_count: 71,
        label_skew: 0.8,
        scale: 1,
        paper_vertices: 3_112,
        paper_edges: 12_519,
        paper_avg_degree: 8.0,
    },
    DatasetSpec {
        name: "hprd",
        category: "Biology",
        family: Family::Uniform,
        num_vertices: 9_460,
        edge_param: 34_998,
        label_count: 307,
        label_skew: 0.8,
        scale: 1,
        paper_vertices: 9_460,
        paper_edges: 34_998,
        paper_avg_degree: 7.4,
    },
    DatasetSpec {
        name: "wordnet",
        category: "Lexical",
        family: Family::Lexical,
        num_vertices: 19_213,
        edge_param: 0,
        label_count: 5,
        label_skew: 0.8,
        scale: 4,
        paper_vertices: 76_853,
        paper_edges: 120_399,
        paper_avg_degree: 3.1,
    },
    DatasetSpec {
        name: "patents",
        category: "Citation",
        family: Family::PowerLaw,
        num_vertices: 37_747,
        edge_param: 4,
        label_count: 20,
        label_skew: 1.0,
        scale: 100,
        paper_vertices: 3_774_768,
        paper_edges: 16_518_947,
        paper_avg_degree: 8.8,
    },
    DatasetSpec {
        name: "dblp",
        category: "Citation",
        family: Family::PowerLaw,
        num_vertices: 31_708,
        edge_param: 3,
        label_count: 15,
        label_skew: 1.0,
        scale: 10,
        paper_vertices: 317_080,
        paper_edges: 1_049_866,
        paper_avg_degree: 6.6,
    },
    DatasetSpec {
        name: "orkut",
        category: "Social",
        family: Family::PowerLaw,
        num_vertices: 30_724,
        edge_param: 19,
        label_count: 150,
        label_skew: 1.0,
        scale: 100,
        paper_vertices: 3_072_441,
        paper_edges: 117_185_083,
        paper_avg_degree: 38.14,
    },
    DatasetSpec {
        name: "eu2005",
        category: "Web",
        family: Family::PowerLaw,
        num_vertices: 21_566,
        edge_param: 19,
        label_count: 40,
        label_skew: 1.1,
        scale: 40,
        paper_vertices: 862_664,
        paper_edges: 16_138_468,
        paper_avg_degree: 37.4,
    },
    DatasetSpec {
        name: "uk2002",
        category: "Web",
        family: Family::PowerLaw,
        num_vertices: 46_301,
        edge_param: 8,
        label_count: 200,
        label_skew: 1.1,
        scale: 400,
        paper_vertices: 18_520_486,
        paper_edges: 298_113_762,
        paper_avg_degree: 16.1,
    },
];

impl DatasetSpec {
    /// Generate the suite graph for this spec (deterministic).
    pub fn generate(&self) -> Graph {
        self.generate_at(self.scale)
    }

    /// Generate this dataset at an explicit scale divisor over the *paper*
    /// parameters: `scale_div == self.scale` reproduces the suite graph
    /// exactly; `scale_div == 1` generates at the paper's unscaled size
    /// (what `gsword pack --scale 1` writes for the compressed backend,
    /// which can hold graphs the `Vec`-based CSR cannot).
    pub fn generate_at(&self, scale_div: u32) -> Graph {
        let div = scale_div.max(1) as u64;
        let num_vertices = (self.paper_vertices / div).max(2) as usize;
        // Uniform graphs target an edge *count*, which scales with the
        // divisor; power-law attachment and the lexical generator already
        // express per-vertex density, so only |V| scales.
        let edge_param = match self.family {
            Family::Uniform => (self.paper_edges / div).max(1) as usize,
            Family::PowerLaw | Family::Lexical => self.edge_param,
        };
        let seed = fxhash_name(self.name);
        match self.family {
            Family::Uniform => {
                let labels = zipf_labels(num_vertices, self.label_count, self.label_skew, seed);
                erdos_renyi(num_vertices, edge_param, labels, seed ^ 0xE1)
            }
            Family::PowerLaw => {
                let labels = zipf_labels(num_vertices, self.label_count, self.label_skew, seed);
                barabasi_albert(num_vertices, edge_param, labels, seed ^ 0xBA)
            }
            Family::Lexical => sparse_lexical(num_vertices, self.label_count, seed ^ 0x1E),
        }
    }
}

/// Stable per-name seed so every dataset is reproducible independently.
fn fxhash_name(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Look up a dataset spec by suite name.
pub fn spec(name: &str) -> Option<&'static DatasetSpec> {
    SPECS.iter().find(|s| s.name == name)
}

/// Generate a suite dataset by name. Panics on unknown names (the suite is a
/// fixed eight-element registry; see [`dataset_names`]).
pub fn dataset(name: &str) -> Graph {
    spec(name)
        .unwrap_or_else(|| {
            panic!(
                "unknown dataset '{name}'; expected one of {:?}",
                dataset_names()
            )
        })
        .generate()
}

/// The eight suite names in Table 1 order.
pub fn dataset_names() -> Vec<&'static str> {
    SPECS.iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eight_names() {
        assert_eq!(
            dataset_names(),
            vec!["yeast", "hprd", "wordnet", "patents", "dblp", "orkut", "eu2005", "uk2002"]
        );
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = dataset("yeast");
        let b = dataset("yeast");
        assert_eq!(a, b);
    }

    #[test]
    fn yeast_matches_paper_scale() {
        let g = dataset("yeast");
        assert_eq!(g.num_vertices(), 3_112);
        let d = g.avg_degree();
        assert!((6.5..9.5).contains(&d), "avg degree {d}");
    }

    #[test]
    fn wordnet_is_sparse_and_label_poor() {
        let g = dataset("wordnet");
        assert!(g.avg_degree() < 4.5);
        assert!(g.label_count() <= 5);
    }

    #[test]
    fn web_graphs_are_skewed() {
        for name in ["eu2005", "orkut"] {
            let g = dataset(name);
            assert!(
                (g.max_degree() as f64) > 5.0 * g.avg_degree(),
                "{name} should be heavy-tailed"
            );
        }
    }

    #[test]
    fn avg_degrees_track_paper() {
        for s in &SPECS {
            let g = s.generate();
            let d = g.avg_degree();
            let target = s.paper_avg_degree;
            assert!(
                d > target * 0.55 && d < target * 1.45,
                "{}: suite avg degree {d:.1} vs paper {target:.1}",
                s.name
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        dataset("livejournal");
    }

    #[test]
    fn generate_at_suite_scale_reproduces_suite_graph() {
        for s in &SPECS {
            assert_eq!(s.generate_at(s.scale), s.generate(), "{}", s.name);
        }
    }

    #[test]
    fn generate_at_divisor_scales_vertex_count() {
        let s = spec("dblp").unwrap();
        assert!(s.generate_at(s.scale * 2).num_vertices() < s.num_vertices);
        assert_eq!(s.generate_at(5).num_vertices(), 317_080 / 5);
    }
}
