//! Degree-adaptive sorted-set intersection.
//!
//! Every hot path of the reproduction bottoms out here: candidate-graph
//! refinement intersects neighbor lists against candidate sets, the
//! estimators' Refine step intersects a minimum candidate segment against
//! every other backward segment, and the SIMT kernels charge the memory
//! model for the probe addresses those intersections touch (the paper's
//! Example 4 / Figures 5–6 access-pattern analysis). One fixed strategy is
//! wrong for all of those at once, so this module picks per call:
//!
//! * **Merge** — the classic two-pointer walk, `O(|a| + |b|)`. Best when
//!   operand sizes are comparable.
//! * **Gallop** — iterate the smaller set, exponential-probe + binary
//!   search into the larger one from a monotonically advancing cursor,
//!   `O(|small| · log(|large|/|small|))` amortized. Best when sizes are
//!   skewed by at least [`GALLOP_RATIO`].
//! * **Bitmap** — a reusable `u64`-block index over a pivot set
//!   ([`BitmapIndex`]): pay `O(|pivot| + span/64)` once, then every probe
//!   set intersects in `O(|probe|)` with one bit test per element. Best
//!   when one high-degree pivot set is intersected against many probe
//!   sets (the candidate builder's per-edge local sets).
//!
//! The k-way entry points ([`intersect_multi_into`],
//! [`intersect_filter_into`]) order operands smallest-first and
//! short-circuit on an empty intermediate result. All functions produce
//! identical output for identical inputs — strategy selection affects
//! cost only — which is what lets the estimators stay bit-identical while
//! the access pattern underneath them changes.
//!
//! The `*_probes` variants report every element offset a search touches,
//! so the SIMT kernels can charge the coalescing memory model with the
//! *actual* per-lane addresses instead of a synthetic model (DESIGN.md
//! §11).

use crate::VertexId;

/// Size-ratio cutover between merge and gallop: gallop when the larger
/// operand is more than `GALLOP_RATIO` times the smaller one. At ratio r,
/// merging costs `small·(1+r)` steps while galloping costs about
/// `small·(log2(r)+2)`; the curves cross near 8 and galloping's cursor
/// locality wins beyond it.
pub const GALLOP_RATIO: usize = 8;

/// The strategy [`intersect_into`] picks for a pair of operand sizes.
/// `Bitmap` is never auto-selected for a one-shot pair — its build cost
/// only amortizes across reuse, so callers opt in via [`BitmapIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Two-pointer linear merge.
    Merge,
    /// Exponential probe + binary search of the smaller set into the
    /// larger.
    Gallop,
    /// Probe against a prebuilt [`BitmapIndex`].
    Bitmap,
}

/// The strategy the adaptive pairwise intersection uses for operand sizes
/// `(a_len, b_len)`.
#[inline]
pub fn strategy_for(a_len: usize, b_len: usize) -> Strategy {
    let (small, large) = if a_len <= b_len {
        (a_len, b_len)
    } else {
        (b_len, a_len)
    };
    if large > GALLOP_RATIO * small {
        Strategy::Gallop
    } else {
        Strategy::Merge
    }
}

/// Append `a ∩ b` (both strictly sorted) to `out`, picking merge or gallop
/// by [`strategy_for`]. Output stays sorted; identical to every other
/// strategy's output.
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    match strategy_for(a.len(), b.len()) {
        Strategy::Gallop => {
            if a.len() <= b.len() {
                gallop_into(a, b, out)
            } else {
                gallop_into(b, a, out)
            }
        }
        _ => merge_into(a, b, out),
    }
}

/// Convenience: `a ∩ b` into a fresh vector.
pub fn intersect(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    intersect_into(a, b, &mut out);
    out
}

/// Two-pointer linear merge intersection (both inputs strictly sorted).
pub fn merge_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping intersection: iterate `small`, exponential-probe into `large`
/// from a cursor that only moves forward. Requires both inputs strictly
/// sorted; `small` need not actually be the smaller operand for
/// correctness, only for speed.
pub fn gallop_into(small: &[VertexId], large: &[VertexId], out: &mut Vec<VertexId>) {
    let mut cursor = 0usize;
    for &v in small {
        if cursor >= large.len() {
            break;
        }
        if gallop_member(large, &mut cursor, v) {
            out.push(v);
        }
    }
}

/// Membership test by binary search (strictly sorted `set`).
#[inline]
pub fn member(set: &[VertexId], v: VertexId) -> bool {
    set.binary_search(&v).is_ok()
}

/// Binary-search membership that reports every element offset the search
/// touches to `probe` — the SIMT kernels feed these to the coalescing
/// memory model as the actual addresses a device-side search would load.
pub fn member_with_probes(set: &[VertexId], v: VertexId, mut probe: impl FnMut(usize)) -> bool {
    let mut lo = 0usize;
    let mut hi = set.len();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probe(mid);
        match set[mid].cmp(&v) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Monotone galloping membership: test whether `v` is in `set[*cursor..]`,
/// advancing `*cursor` to the lower bound of `v`. Amortized `O(1 + log
/// gap)` per call when successive `v`s ascend — the engine's mechanism for
/// intersecting one ascending stream against a sorted segment.
#[inline]
pub fn gallop_member(set: &[VertexId], cursor: &mut usize, v: VertexId) -> bool {
    gallop_member_probes(set, cursor, v, |_| {})
}

/// [`gallop_member`] reporting every element offset probed (exponential
/// probes plus the binary-search refinement) to `probe`.
pub fn gallop_member_probes(
    set: &[VertexId],
    cursor: &mut usize,
    v: VertexId,
    mut probe: impl FnMut(usize),
) -> bool {
    let n = set.len();
    let mut lo = *cursor;
    if lo >= n {
        return false;
    }
    probe(lo);
    if set[lo] >= v {
        *cursor = lo;
        return set[lo] == v;
    }
    // set[lo] < v: gallop until we bracket v.
    let mut step = 1usize;
    let hi = loop {
        let idx = lo + step;
        if idx >= n {
            break n;
        }
        probe(idx);
        match set[idx].cmp(&v) {
            std::cmp::Ordering::Less => {
                lo = idx;
                step *= 2;
            }
            std::cmp::Ordering::Equal => {
                *cursor = idx;
                return true;
            }
            std::cmp::Ordering::Greater => break idx,
        }
    };
    // Binary search in (lo, hi): set[lo] < v and (hi == n or set[hi] > v).
    let mut l = lo + 1;
    let mut h = hi;
    while l < h {
        let mid = l + (h - l) / 2;
        probe(mid);
        match set[mid].cmp(&v) {
            std::cmp::Ordering::Less => l = mid + 1,
            std::cmp::Ordering::Greater => h = mid,
            std::cmp::Ordering::Equal => {
                *cursor = mid;
                return true;
            }
        }
    }
    *cursor = l;
    false
}

/// Stack capacity for k-way operand bookkeeping; spills to the heap for
/// wider intersections (queries are bounded well below this in practice).
const KWAY_STACK: usize = 32;

/// Append the k-way intersection of `sets` (each strictly sorted) to
/// `out`. Operands are ordered smallest-first and the walk short-circuits
/// the moment any operand (or the running result) is empty. Panics on an
/// empty `sets` slice — the intersection of zero sets is undefined.
pub fn intersect_multi_into(sets: &[&[VertexId]], out: &mut Vec<VertexId>) {
    assert!(!sets.is_empty(), "k-way intersection of zero sets");
    if sets.iter().any(|s| s.is_empty()) {
        return; // short-circuit: some operand is empty
    }
    let mut order_buf = [0usize; KWAY_STACK];
    let mut order_heap;
    let order: &mut [usize] = if sets.len() <= KWAY_STACK {
        &mut order_buf[..sets.len()]
    } else {
        order_heap = vec![0usize; sets.len()];
        &mut order_heap
    };
    for (i, slot) in order.iter_mut().enumerate() {
        *slot = i;
    }
    order.sort_by_key(|&i| sets[i].len());
    let base = sets[order[0]];
    intersect_filter_into(base, &order[1..], |i| sets[i], out);
}

/// Append the elements of `base` (strictly sorted) that are members of
/// *every* set `get(key)` for `key` in `keys` to `out`. The workhorse
/// behind [`intersect_multi_into`] and the Alley Refine step: one
/// ascending pass over `base` with a monotone gallop cursor per probe set.
/// With no keys, `base` is copied through unchanged.
fn intersect_filter_into<'s>(
    base: &[VertexId],
    keys: &[usize],
    get: impl Fn(usize) -> &'s [VertexId],
    out: &mut Vec<VertexId>,
) {
    if keys.is_empty() {
        out.extend_from_slice(base);
        return;
    }
    let mut cursor_buf = [0usize; KWAY_STACK];
    let mut cursor_heap;
    let cursors: &mut [usize] = if keys.len() <= KWAY_STACK {
        &mut cursor_buf[..keys.len()]
    } else {
        cursor_heap = vec![0usize; keys.len()];
        &mut cursor_heap
    };
    'next: for &v in base {
        for (k, cursor) in keys.iter().zip(cursors.iter_mut()) {
            let set = get(*k);
            if !gallop_member(set, cursor, v) {
                if *cursor >= set.len() {
                    return; // that probe set is exhausted: nothing later matches
                }
                continue 'next;
            }
        }
        out.push(v);
    }
}

/// Filter `base` by membership in every probe set, smallest probe set
/// first (fail fast). Output preserves `base` order, i.e. stays sorted —
/// exactly the per-element filter result, computed with monotone cursors
/// instead of independent binary searches.
pub fn filter_by_all_into(base: &[VertexId], probes: &[&[VertexId]], out: &mut Vec<VertexId>) {
    if probes.iter().any(|s| s.is_empty()) {
        return;
    }
    if probes.is_empty() {
        out.extend_from_slice(base);
        return;
    }
    let mut order_buf = [0usize; KWAY_STACK];
    let mut order_heap;
    let order: &mut [usize] = if probes.len() <= KWAY_STACK {
        &mut order_buf[..probes.len()]
    } else {
        order_heap = vec![0usize; probes.len()];
        &mut order_heap
    };
    for (i, slot) in order.iter_mut().enumerate() {
        *slot = i;
    }
    order.sort_by_key(|&i| probes[i].len());
    intersect_filter_into(base, order, |i| probes[i], out);
}

/// A reusable `u64`-block bitmap index over one sorted pivot set.
///
/// Build once (`O(|pivot| + span/64)`, where span is the id range the
/// pivot covers), then intersect many probe sets against it at one bit
/// test per probed element. The buffer is retained across
/// [`BitmapIndex::build`] calls, so a loop that re-indexes successive
/// pivot sets allocates only when the span grows.
///
/// Cost model (DESIGN.md §11): against `m` probe sets of average length
/// `p̄`, the bitmap costs `|pivot| + span/64 + m·p̄` word operations where
/// adaptive pairwise costs `m · min(p̄+|pivot|, p̄·log|pivot|)` — the
/// bitmap wins once `m` is a handful and the pivot is high-degree.
#[derive(Debug, Default, Clone)]
pub struct BitmapIndex {
    base: VertexId,
    blocks: Vec<u64>,
    len: usize,
}

impl BitmapIndex {
    /// An empty index (matches nothing).
    pub fn new() -> Self {
        BitmapIndex::default()
    }

    /// Number of elements in the indexed pivot set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the indexed pivot set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// (Re)build the index over `pivot` (strictly sorted), reusing the
    /// block buffer.
    pub fn build(&mut self, pivot: &[VertexId]) {
        self.len = pivot.len();
        let Some((&first, &last)) = pivot.first().zip(pivot.last()) else {
            self.blocks.clear();
            self.base = 0;
            return;
        };
        self.base = first & !63;
        let blocks = (last - self.base) as usize / 64 + 1;
        self.blocks.clear();
        self.blocks.resize(blocks, 0);
        for &v in pivot {
            let off = (v - self.base) as usize;
            self.blocks[off / 64] |= 1u64 << (off % 64);
        }
    }

    /// Is `v` in the pivot set?
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        if self.len == 0 || v < self.base {
            return false;
        }
        let off = (v - self.base) as usize;
        self.blocks
            .get(off / 64)
            .is_some_and(|b| b & (1u64 << (off % 64)) != 0)
    }

    /// Append `probe ∩ pivot` to `out` (probe strictly sorted; output
    /// order follows `probe`, i.e. stays sorted).
    pub fn intersect_into(&self, probe: &[VertexId], out: &mut Vec<VertexId>) {
        if self.len == 0 {
            return;
        }
        out.extend(probe.iter().copied().filter(|&v| self.contains(v)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = a.to_vec();
        out.retain(|v| b.contains(v));
        out
    }

    #[test]
    fn pairwise_strategies_agree_with_naive() {
        let a: Vec<VertexId> = vec![1, 3, 5, 7];
        let b: Vec<VertexId> = vec![2, 3, 4, 7, 9];
        let want = naive(&a, &b);
        for f in [merge_into, gallop_into, intersect_into] {
            let mut out = Vec::new();
            f(&a, &b, &mut out);
            assert_eq!(out, want);
        }
        let big: Vec<VertexId> = (0..1000).collect();
        let small: Vec<VertexId> = vec![5, 999, 1001];
        assert_eq!(intersect(&big, &small), vec![5, 999]);
        assert_eq!(intersect(&small, &big), vec![5, 999]);
        assert_eq!(intersect(&[], &big), Vec::<VertexId>::new());
    }

    #[test]
    fn strategy_cutover_boundary() {
        // 8× exactly merges; one past the ratio gallops.
        assert_eq!(strategy_for(4, 32), Strategy::Merge);
        assert_eq!(strategy_for(4, 33), Strategy::Gallop);
        assert_eq!(strategy_for(33, 4), Strategy::Gallop);
        assert_eq!(strategy_for(0, 1), Strategy::Gallop);
        assert_eq!(strategy_for(7, 7), Strategy::Merge);
    }

    #[test]
    fn gallop_cursor_is_monotone_and_correct() {
        let set: Vec<VertexId> = (0..200).map(|i| i * 3).collect();
        let mut cursor = 0;
        let mut probes = Vec::new();
        for v in 0..620 {
            let got = gallop_member_probes(&set, &mut cursor, v, |p| probes.push(p));
            assert_eq!(got, v % 3 == 0 && v < 600, "v={v}");
        }
        assert!(probes.iter().all(|&p| p < set.len()));
        // Monotone queries keep the amortized probe count near-linear.
        assert!(probes.len() < 620 * 3, "probes: {}", probes.len());
    }

    #[test]
    fn member_probe_trace_matches_binary_search() {
        let set: Vec<VertexId> = vec![2, 4, 8, 16, 32, 64];
        for v in 0..70 {
            let mut probes = Vec::new();
            let got = member_with_probes(&set, v, |p| probes.push(p));
            assert_eq!(got, set.binary_search(&v).is_ok());
            assert!(probes.len() <= 3, "log2(6) probes max, got {probes:?}");
        }
    }

    #[test]
    fn multi_orders_smallest_first_and_short_circuits() {
        let a: Vec<VertexId> = (0..100).collect();
        let b: Vec<VertexId> = (0..100).filter(|v| v % 2 == 0).collect();
        let c: Vec<VertexId> = (0..100).filter(|v| v % 3 == 0).collect();
        let mut out = Vec::new();
        intersect_multi_into(&[&a, &b, &c], &mut out);
        let want: Vec<VertexId> = (0..100).filter(|v| v % 6 == 0).collect();
        assert_eq!(out, want);
        out.clear();
        intersect_multi_into(&[&a, &[], &c], &mut out);
        assert!(out.is_empty(), "empty operand short-circuits");
        out.clear();
        intersect_multi_into(&[&b], &mut out);
        assert_eq!(out, b, "k=1 copies through");
    }

    #[test]
    #[should_panic(expected = "zero sets")]
    fn multi_rejects_zero_sets() {
        intersect_multi_into(&[], &mut Vec::new());
    }

    #[test]
    fn filter_by_all_matches_per_element_filter() {
        let base: Vec<VertexId> = (0..50).collect();
        let p1: Vec<VertexId> = (0..50).filter(|v| v % 2 == 0).collect();
        let p2: Vec<VertexId> = (10..40).collect();
        let mut out = Vec::new();
        filter_by_all_into(&base, &[&p1, &p2], &mut out);
        let want: Vec<VertexId> = base
            .iter()
            .copied()
            .filter(|&v| member(&p1, v) && member(&p2, v))
            .collect();
        assert_eq!(out, want);
        out.clear();
        filter_by_all_into(&base, &[], &mut out);
        assert_eq!(out, base, "no probe sets: identity");
    }

    #[test]
    fn bitmap_index_rebuild_and_probe() {
        let mut idx = BitmapIndex::new();
        let pivot: Vec<VertexId> = vec![100, 163, 164, 1000];
        idx.build(&pivot);
        assert_eq!(idx.len(), 4);
        for v in [100, 163, 164, 1000] {
            assert!(idx.contains(v));
        }
        for v in [0, 99, 101, 165, 999, 1001, 5000] {
            assert!(!idx.contains(v));
        }
        let probe: Vec<VertexId> = (0..1200).collect();
        let mut out = Vec::new();
        idx.intersect_into(&probe, &mut out);
        assert_eq!(out, pivot);
        // Rebuild over a different pivot reuses the buffer.
        idx.build(&[3]);
        assert!(idx.contains(3) && !idx.contains(100));
        idx.build(&[]);
        assert!(idx.is_empty() && !idx.contains(3));
    }

    #[test]
    fn wide_kway_spills_to_heap() {
        let sets: Vec<Vec<VertexId>> = (0..KWAY_STACK + 4)
            .map(|_| (0..64).collect::<Vec<VertexId>>())
            .collect();
        let refs: Vec<&[VertexId]> = sets.iter().map(|s| s.as_slice()).collect();
        let mut out = Vec::new();
        intersect_multi_into(&refs, &mut out);
        assert_eq!(out.len(), 64);
        out.clear();
        filter_by_all_into(&sets[0], &refs[1..], &mut out);
        assert_eq!(out.len(), 64);
    }
}
