//! The storage abstraction over data-graph backends.
//!
//! Every consumer of the data graph — candidate-graph construction, query
//! extraction, matching-order heuristics, the exact enumerator — goes
//! through [`GraphStorage`] instead of the concrete CSR type, so the same
//! pipeline runs over the in-memory [`Graph`] and the succinct
//! [`CompressedGraph`](crate::compressed::CompressedGraph) without code
//! changes. Two invariants make backends interchangeable *bit for bit*:
//!
//! 1. Neighbor lists are strictly ascending and identical across backends
//!    (the compressed backend is a lossless re-encoding of the CSR).
//! 2. Every intersection/membership entry point produces output that
//!    depends only on the *sets*, never on the storage strategy — the same
//!    contract the adaptive intersection engine already honors
//!    (DESIGN.md §11).
//!
//! Together these guarantee that the candidate graph, and therefore every
//! downstream estimate and device counter, is identical whichever backend
//! built it — the property the storage-equivalence regression tests pin.

use crate::compressed::CompressedGraph;
use crate::{intersect, Graph, Label, VertexId};

/// Borrow-or-decode view of one sorted neighbor list.
///
/// CSR storage hands out a borrowed slice (zero copy); compressed storage
/// decodes into an owned buffer. Both deref to `&[VertexId]`, so callers
/// that need random access stay backend-agnostic. Hot paths that only
/// stream or intersect should prefer [`GraphStorage::for_each_neighbor`] /
/// [`GraphStorage::intersect_neighbors_into`], which never materialize on
/// the compressed backend.
#[derive(Debug, Clone)]
pub enum NeighborsRef<'a> {
    /// A zero-copy slice into backend storage.
    Borrowed(&'a [VertexId]),
    /// A list decoded on demand.
    Owned(Vec<VertexId>),
}

impl std::ops::Deref for NeighborsRef<'_> {
    type Target = [VertexId];

    #[inline]
    fn deref(&self) -> &[VertexId] {
        match self {
            NeighborsRef::Borrowed(s) => s,
            NeighborsRef::Owned(v) => v,
        }
    }
}

impl AsRef<[VertexId]> for NeighborsRef<'_> {
    #[inline]
    fn as_ref(&self) -> &[VertexId] {
        self
    }
}

impl<'a> From<&'a [VertexId]> for NeighborsRef<'a> {
    fn from(s: &'a [VertexId]) -> Self {
        NeighborsRef::Borrowed(s)
    }
}

impl From<Vec<VertexId>> for NeighborsRef<'_> {
    fn from(v: Vec<VertexId>) -> Self {
        NeighborsRef::Owned(v)
    }
}

/// Abstract read-only storage of an undirected, vertex-labeled data graph.
///
/// All adjacency lists are strictly ascending. Implementations must return
/// exactly the same vertex/edge/label/neighbor data for graphs with the
/// same logical content — only the cost profile and [`mem_bytes`]
/// (`Self::mem_bytes`) may differ.
pub trait GraphStorage: Sync {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of undirected edges (each counted once).
    fn num_edges(&self) -> usize;

    /// Number of distinct label values the graph can hold (max label + 1).
    fn label_count(&self) -> usize;

    /// The label of vertex `v`.
    fn label(&self, v: VertexId) -> Label;

    /// Degree of vertex `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// The sorted neighbor list of `v` — borrowed when the backend stores
    /// it verbatim, decoded into an owned buffer otherwise.
    fn neighbors_ref(&self, v: VertexId) -> NeighborsRef<'_>;

    /// Whether the undirected edge `(u, v)` exists.
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool;

    /// Vertices carrying label `l`, sorted by id.
    fn vertices_with_label(&self, l: Label) -> &[VertexId];

    /// Resident footprint of the backend in bytes, counting allocated
    /// capacity (not just used length) for heap-backed sections and the
    /// mapped extent for mmap-backed ones.
    fn mem_bytes(&self) -> usize;

    /// Replace `out` with the sorted neighbor list of `v`.
    fn neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend_from_slice(&self.neighbors_ref(v));
    }

    /// Stream the neighbors of `v` in ascending order, stopping early when
    /// `f` returns `false`. Backends that decode on the fly override this
    /// to avoid materializing the list.
    fn for_each_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId) -> bool)
    where
        Self: Sized,
    {
        for &w in self.neighbors_ref(v).iter() {
            if !f(w) {
                break;
            }
        }
    }

    /// Append `N(v) ∩ other` (ascending) to `out`. The default routes
    /// through the adaptive pairwise engine; the compressed backend
    /// overrides it with the decode-on-the-fly / block-skip variant.
    /// Output is identical for every backend and strategy.
    fn intersect_neighbors_into(&self, v: VertexId, other: &[VertexId], out: &mut Vec<VertexId>)
    where
        Self: Sized,
    {
        intersect::intersect_into(&self.neighbors_ref(v), other, out);
    }

    /// Maximum vertex degree.
    fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree (`2|E|/|V|`), as reported in Table 1.
    fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            return 0.0;
        }
        2.0 * self.num_edges() as f64 / self.num_vertices() as f64
    }

    /// Number of distinct labels that actually occur.
    fn distinct_labels(&self) -> usize {
        (0..self.label_count())
            .filter(|&l| !self.vertices_with_label(l as Label).is_empty())
            .count()
    }
}

/// Runtime-selected storage backend — what the CLI loads so one code path
/// serves `--storage csr` and `--storage compressed`.
#[derive(Debug, Clone)]
pub enum AnyGraph {
    /// In-memory CSR.
    Csr(Graph),
    /// Succinct gap-coded storage (owned or mmap-backed).
    Compressed(CompressedGraph),
}

impl AnyGraph {
    /// Short backend name for logs.
    pub fn backend_name(&self) -> &'static str {
        match self {
            AnyGraph::Csr(_) => "csr",
            AnyGraph::Compressed(_) => "compressed",
        }
    }

    /// The CSR graph, when that is the active backend.
    pub fn as_csr(&self) -> Option<&Graph> {
        match self {
            AnyGraph::Csr(g) => Some(g),
            AnyGraph::Compressed(_) => None,
        }
    }
}

impl From<Graph> for AnyGraph {
    fn from(g: Graph) -> Self {
        AnyGraph::Csr(g)
    }
}

impl From<CompressedGraph> for AnyGraph {
    fn from(g: CompressedGraph) -> Self {
        AnyGraph::Compressed(g)
    }
}

macro_rules! delegate {
    ($self:ident, $g:ident => $body:expr) => {
        match $self {
            AnyGraph::Csr($g) => $body,
            AnyGraph::Compressed($g) => $body,
        }
    };
}

impl GraphStorage for AnyGraph {
    fn num_vertices(&self) -> usize {
        delegate!(self, g => g.num_vertices())
    }

    fn num_edges(&self) -> usize {
        delegate!(self, g => g.num_edges())
    }

    fn label_count(&self) -> usize {
        delegate!(self, g => g.label_count())
    }

    fn label(&self, v: VertexId) -> Label {
        delegate!(self, g => g.label(v))
    }

    fn degree(&self, v: VertexId) -> usize {
        delegate!(self, g => g.degree(v))
    }

    fn neighbors_ref(&self, v: VertexId) -> NeighborsRef<'_> {
        delegate!(self, g => g.neighbors_ref(v))
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        delegate!(self, g => GraphStorage::has_edge(g, u, v))
    }

    fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        delegate!(self, g => GraphStorage::vertices_with_label(g, l))
    }

    fn mem_bytes(&self) -> usize {
        delegate!(self, g => g.mem_bytes())
    }

    fn for_each_neighbor(&self, v: VertexId, f: impl FnMut(VertexId) -> bool) {
        delegate!(self, g => g.for_each_neighbor(v, f))
    }

    fn intersect_neighbors_into(&self, v: VertexId, other: &[VertexId], out: &mut Vec<VertexId>) {
        delegate!(self, g => g.intersect_neighbors_into(v, other, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        for l in [0, 1, 1, 2] {
            b.add_vertex(l);
        }
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn neighbors_ref_derefs_both_variants() {
        let owned = NeighborsRef::Owned(vec![1, 2, 3]);
        let data = [1, 2, 3];
        let borrowed = NeighborsRef::Borrowed(&data);
        assert_eq!(&*owned, &*borrowed);
        assert_eq!(owned.as_ref(), &[1, 2, 3]);
        assert_eq!(owned.len(), 3);
    }

    #[test]
    fn trait_defaults_match_inherent_csr_methods() {
        let g = diamond();
        let s: &dyn Fn(&Graph) = &|g| {
            assert_eq!(GraphStorage::max_degree(g), g.max_degree());
            assert_eq!(GraphStorage::avg_degree(g), g.avg_degree());
            assert_eq!(GraphStorage::distinct_labels(g), g.distinct_labels());
        };
        s(&g);
        let mut buf = Vec::new();
        g.neighbors_into(1, &mut buf);
        assert_eq!(buf, g.neighbors(1));
        let mut seen = Vec::new();
        g.for_each_neighbor(1, |w| {
            seen.push(w);
            w < 2 // stop after first element ≥ 2
        });
        assert_eq!(seen, &[0, 2]);
        let mut out = Vec::new();
        g.intersect_neighbors_into(1, &[2, 3, 9], &mut out);
        assert_eq!(out, &[2, 3]);
    }

    #[test]
    fn any_graph_delegates_to_csr() {
        let g = diamond();
        let any = AnyGraph::from(g.clone());
        assert_eq!(any.backend_name(), "csr");
        assert!(any.as_csr().is_some());
        assert_eq!(any.num_vertices(), 4);
        assert_eq!(any.num_edges(), 5);
        assert_eq!(&*any.neighbors_ref(1), g.neighbors(1));
        assert!(GraphStorage::has_edge(&any, 0, 1));
        assert_eq!(GraphStorage::vertices_with_label(&any, 1), &[1, 2]);
        assert!(any.mem_bytes() > 0);
    }
}
