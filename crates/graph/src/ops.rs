//! Structural graph operations: components, induced subgraphs, histograms.
//!
//! Real-world loaders (SNAP edge lists) produce disconnected graphs; query
//! extraction and sampling want the giant component. These helpers cover
//! the preprocessing a downstream user needs before counting.

use crate::{Graph, GraphBuilder, GraphStorage, VertexId};

/// Connected-component labeling: returns one component id per vertex and
/// the number of components.
pub fn connected_components<S: GraphStorage>(g: &S) -> (Vec<u32>, usize) {
    const UNSET: u32 = u32::MAX;
    let mut comp = vec![UNSET; g.num_vertices()];
    let mut next = 0u32;
    let mut stack: Vec<VertexId> = Vec::new();
    for start in 0..g.num_vertices() as VertexId {
        if comp[start as usize] != UNSET {
            continue;
        }
        comp[start as usize] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            g.for_each_neighbor(v, |w| {
                if comp[w as usize] == UNSET {
                    comp[w as usize] = next;
                    stack.push(w);
                }
                true
            });
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Extract the largest connected component (vertices renumbered, labels
/// kept). Returns the original vertex id of each new vertex alongside.
pub fn largest_component(g: &Graph) -> (Graph, Vec<VertexId>) {
    let (comp, count) = connected_components(g);
    if count <= 1 {
        let ids = (0..g.num_vertices() as VertexId).collect();
        return (g.clone(), ids);
    }
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .expect("at least one component");
    let keep: Vec<VertexId> = (0..g.num_vertices() as VertexId)
        .filter(|&v| comp[v as usize] == best)
        .collect();
    (induced_subgraph(g, &keep), keep)
}

/// Induced subgraph over `vertices` (must be distinct), renumbered to
/// `0..vertices.len()` in the given order.
pub fn induced_subgraph(g: &Graph, vertices: &[VertexId]) -> Graph {
    // Dense old→new index: one `Vec` lookup per scanned edge endpoint
    // beats hashing (this runs once per neighbor of every kept vertex).
    const UNMAPPED: VertexId = VertexId::MAX;
    let mut index = vec![UNMAPPED; g.num_vertices()];
    for (new, &old) in vertices.iter().enumerate() {
        assert!(
            index[old as usize] == UNMAPPED,
            "duplicate vertex {old} in induced set"
        );
        index[old as usize] = new as VertexId;
    }
    let mut b = GraphBuilder::with_vertices(vertices.len());
    for (new, &old) in vertices.iter().enumerate() {
        b.set_label(new as VertexId, g.label(old));
        for &w in g.neighbors(old) {
            let nw = index[w as usize];
            if nw != UNMAPPED {
                b.add_edge(new as VertexId, nw);
            }
        }
    }
    b.build().expect("induced edges are in range")
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram<S: GraphStorage>(g: &S) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in 0..g.num_vertices() as VertexId {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Label histogram: `hist[l]` = number of vertices with label `l`.
pub fn label_histogram<S: GraphStorage>(g: &S) -> Vec<usize> {
    (0..g.label_count())
        .map(|l| g.vertices_with_label(l as crate::Label).len())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        // Components {0,1,2} and {3,4,5}.
        let mut b = GraphBuilder::with_vertices(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v);
        }
        for v in 3..6 {
            b.set_label(v, 1);
        }
        b.build().unwrap()
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = two_triangles();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
    }

    #[test]
    fn components_count_isolated_vertices() {
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(0, 1);
        let g = b.build().unwrap();
        let (_, count) = connected_components(&g);
        assert_eq!(count, 2);
    }

    #[test]
    fn largest_component_breaks_ties_deterministically() {
        let g = two_triangles();
        let (lc, ids) = largest_component(&g);
        assert_eq!(lc.num_vertices(), 3);
        assert_eq!(lc.num_edges(), 3);
        // Equal sizes: max_by_key keeps the last max → component 1 ({3,4,5}).
        assert_eq!(ids, vec![3, 4, 5]);
        assert_eq!(lc.label(0), 1, "labels preserved");
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity() {
        let mut b = GraphBuilder::with_vertices(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build().unwrap();
        let (lc, ids) = largest_component(&g);
        assert_eq!(lc, g);
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = two_triangles();
        let sub = induced_subgraph(&g, &[0, 1, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 1); // only 0-1 survives
        assert_eq!(sub.label(2), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn induced_subgraph_rejects_duplicates() {
        let g = two_triangles();
        induced_subgraph(&g, &[0, 0]);
    }

    #[test]
    fn histograms() {
        let g = two_triangles();
        let dh = degree_histogram(&g);
        assert_eq!(dh, vec![0, 0, 6]); // all degree 2
        let lh = label_histogram(&g);
        assert_eq!(lh, vec![3, 3]);
    }
}
