//! Acceptance tests for the interprocedural layer: each paired fixture is
//! *invisible* to the summary-free (PR-4) analyzer and *caught* by the
//! summary-driven one — the before/after demonstration that call-graph
//! propagation adds real coverage, not just noise. Plus a robustness
//! sweep: the lossy front-end must lex, parse, and analyze every real
//! `.rs` file in the repository without panicking.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    (
        name.to_string(),
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display())),
    )
}

#[test]
fn helper_divergence_needs_summaries() {
    let (name, src) = fixture("helper_divergence.rs");
    let before = gsword_analyzer::analyze_source_intraprocedural(&name, &src);
    assert!(
        before.is_empty(),
        "intraprocedural analyzer should miss the hidden full-mask ballot:\n{before:?}"
    );
    let after = gsword_analyzer::analyze_source(&name, &src);
    assert_eq!(after.len(), 1, "{after:?}");
    assert_eq!(after[0].rule, "divergent-sync");
    assert!(
        after[0].message.contains("via `full_ballot`"),
        "finding should name the helper: {}",
        after[0]
    );
}

#[test]
fn helper_pool_race_needs_summaries() {
    let (name, src) = fixture("helper_pool_race.rs");
    let before = gsword_analyzer::analyze_source_intraprocedural(&name, &src);
    assert!(
        before.is_empty(),
        "intraprocedural analyzer should miss the hidden pool fetch:\n{before:?}"
    );
    let after = gsword_analyzer::analyze_source(&name, &src);
    assert_eq!(after.len(), 1, "{after:?}");
    assert_eq!(after[0].rule, "pool-race");
}

#[test]
fn summaries_cross_file_boundaries() {
    // Same shape as helper_pool_race.rs but with helper and caller in
    // different files: only corpus-level analysis links them.
    let helper = "pub fn drain_one(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
                  pool.fetch_sanitized(san)\n\
                  }\n";
    let caller = "pub fn peek(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
                  let t = drain_one(pool, san);\n\
                  pool.read_cursor_unsync(san) + t\n\
                  }\n";
    let corpus = vec![
        ("helpers.rs".to_string(), helper.to_string()),
        ("kernel.rs".to_string(), caller.to_string()),
    ];
    let findings = gsword_analyzer::analyze_corpus(&corpus);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "pool-race");
    assert_eq!(findings[0].file, "kernel.rs");
    // One file alone shows nothing.
    assert!(gsword_analyzer::analyze_source("kernel.rs", caller).is_empty());
}

#[test]
fn call_graph_reports_defined_edges() {
    let src = "fn helper(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
               pool.fetch_sanitized(san)\n\
               }\n\
               pub fn top(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
               helper(pool, san)\n\
               }\n";
    let fns = gsword_analyzer::parse::parse_file(&gsword_analyzer::lex::lex(src));
    let graph = gsword_analyzer::callgraph::call_graph(&fns);
    assert!(graph["top"].contains("helper"));
    assert!(graph["helper"].is_empty());
}

/// Every `.rs` file in the repository — product code, tests, fixtures
/// (which exist to violate rules), vendored stubs — must survive the full
/// lex → parse → CFG → analyze pipeline without panicking. The front-end
/// is deliberately lossy; this pins down that "lossy" degrades to opaque
/// statements, never to a crash.
#[test]
fn front_end_survives_every_rs_file_in_repo() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    files.sort();
    assert!(
        files.len() > 30,
        "suspiciously few .rs files under {}: {}",
        root.display(),
        files.len()
    );
    for path in &files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let label = path.display().to_string();
        // A panic anywhere in the pipeline fails the test with the file
        // name attached.
        let result =
            std::panic::catch_unwind(|| gsword_analyzer::analyze_source(&label, &src).len());
        assert!(result.is_ok(), "analyzer panicked on {label}");
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path
                .file_name()
                .is_some_and(|n| n == "target" || n == ".git")
            {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
