//! Fixture-smoke test: every known-bad kernel snippet under `fixtures/`
//! yields *exactly one* diagnostic, with the expected rule at the
//! expected line. One fixture per bug class keeps each rule's firing
//! condition pinned down independently.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// label -> (rule, marker substring locating the expected line, or None
/// for file-scoped rules that report without a line).
fn expectations() -> BTreeMap<&'static str, (&'static str, Option<&'static str>)> {
    BTreeMap::from([
        (
            "per_lane_ballot.rs",
            ("divergent-sync", Some("ballot(ctr, san, FULL_MASK")),
        ),
        (
            "shrink_then_reuse.rs",
            ("divergent-sync", Some("reduce_sum(ctr")),
        ),
        (
            "full_after_partial.rs",
            ("divergent-sync", Some("ballot(ctr, san, u32::MAX")),
        ),
        (
            "fetch_then_peek.rs",
            ("pool-race", Some("read_cursor_unsync")),
        ),
        ("uncharged_any.rs", ("primitive-charges-counters", None)),
        (
            "stray_launch.rs",
            ("launch-confined", Some("device.launch(")),
        ),
        ("simt/dropped_counters.rs", ("launch-merges-counters", None)),
        ("board_read.rs", ("prof-confined", Some("stream_counters"))),
        ("seqcst_ordering.rs", ("no-seqcst", Some("SeqCst)"))),
        ("nondet_order.rs", ("nondet-order", Some("out.push"))),
        ("float_reduce.rs", ("float-reduce-order", Some("sum += w"))),
        ("scope_block.rs", ("scope-blocking", Some("rs.submit"))),
        (
            "unsafe_erasure.rs",
            ("scope-blocking", Some("std::mem::transmute")),
        ),
        (
            "helper_divergence.rs",
            ("divergent-sync", Some("acc |= full_ballot")),
        ),
        (
            "helper_pool_race.rs",
            ("pool-race", Some("pool.read_cursor_unsync")),
        ),
        (
            "alloc_in_hot_loop.rs",
            ("alloc-in-hot-loop", Some("let tmp = Vec::new()")),
        ),
        (
            "charge_per_access.rs",
            ("charge-per-access", Some("warp_load(ctr, san, &addrs)")),
        ),
        (
            "decode_in_loop.rs",
            ("decode-in-loop", Some("neighbors_ref(u)")),
        ),
        (
            "unsafe_escape.rs",
            ("unsafe-escape", Some("unsafe { std::slice::from_raw_parts")),
        ),
    ])
}

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("fixtures dir").flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_fixture_yields_exactly_its_expected_diagnostic() {
    let root = fixtures_root();
    let mut files = Vec::new();
    collect_rs(&root, &mut files);
    files.sort();
    assert!(!files.is_empty(), "no fixtures at {}", root.display());

    let expected = expectations();
    let mut seen = Vec::new();
    for path in files {
        let label = path
            .strip_prefix(&root)
            .unwrap()
            .display()
            .to_string()
            .replace('\\', "/");
        let (rule, marker) = *expected
            .get(label.as_str())
            .unwrap_or_else(|| panic!("fixture {label} has no expectation entry"));
        seen.push(label.clone());

        let src = std::fs::read_to_string(&path).unwrap();
        let findings = gsword_analyzer::analyze_source(&label, &src);
        assert_eq!(
            findings.len(),
            1,
            "fixture {label}: expected exactly one diagnostic, got:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        let f = &findings[0];
        assert_eq!(f.rule, rule, "fixture {label}: wrong rule: {f}");
        match marker {
            Some(m) => {
                let want = src
                    .lines()
                    .position(|l| l.contains(m))
                    .unwrap_or_else(|| panic!("fixture {label}: marker {m:?} not found"))
                    as u32
                    + 1;
                assert_eq!(f.line, Some(want), "fixture {label}: wrong line: {f}");
                assert!(f.col.is_some(), "fixture {label}: missing column: {f}");
            }
            None => assert_eq!(f.line, None, "fixture {label}: expected file-scoped: {f}"),
        }
    }
    // Every expectation entry must correspond to a real fixture file.
    for label in expected.keys() {
        assert!(
            seen.iter().any(|s| s == label),
            "expectation {label} has no fixture file"
        );
    }
}

#[test]
fn fixture_findings_are_machine_readable() {
    // `file:line:col: rule: message` — one line per finding, parseable by
    // splitting on ": " after an optional line:col position.
    let root = fixtures_root();
    let src = std::fs::read_to_string(root.join("board_read.rs")).unwrap();
    let findings = gsword_analyzer::analyze_source("board_read.rs", &src);
    assert_eq!(findings.len(), 1);
    let line = findings[0].to_string();
    let (loc, rest) = line.split_once(": ").unwrap();
    let mut parts = loc.split(':');
    assert_eq!(parts.next(), Some("board_read.rs"));
    let lineno = parts.next().unwrap();
    let colno = parts.next().unwrap();
    assert_eq!(parts.next(), None, "{line}");
    assert!(lineno.parse::<u32>().is_ok(), "{line}");
    assert!(colno.parse::<u32>().is_ok(), "{line}");
    assert!(rest.starts_with("prof-confined: "), "{line}");
}
