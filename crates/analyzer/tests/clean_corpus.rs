//! Golden clean-corpus test: the analyzer over every in-tree kernel —
//! every `.rs` file under `crates/` — must produce zero findings, and it
//! must actually be *seeing* the kernel bodies it claims to verify
//! (`RsvKernel` / `BaselineKernel` / `EstimateKernel` code paths under
//! every optimization flag live in `engine/src/kernel.rs`).

use std::path::PathBuf;

fn crates_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("analyzer sits inside crates/")
        .to_path_buf()
}

#[test]
fn workspace_kernels_are_clean() {
    let findings = gsword_analyzer::analyze_tree(&crates_root());
    assert!(
        findings.is_empty(),
        "analyzer findings on the real workspace:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn analyzer_covers_every_engine_kernel() {
    let path = crates_root().join("engine/src/kernel.rs");
    let src = std::fs::read_to_string(&path).expect("engine kernel source");
    let names = gsword_analyzer::kernel_fn_names("engine/src/kernel.rs", &src);
    // The warp-level execution paths of the three kernels, across every
    // optimization-flag combination (sample/iteration sync, streaming,
    // inheritance, mixed-depth, direct sampling).
    for required in [
        "run_block",
        "run_sample_sync",
        "run_iteration_sync",
        "rsv_iteration",
        "mixed_depth_iteration",
        "direct_sample",
        "serial_refine_sample",
        "streaming_refine_sample",
        "serial_refine_sample_mixed",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "kernel fn {required} not covered by the analyzer; saw {names:?}"
        );
    }
}

#[test]
fn analyzer_sweeps_graph_and_prof_crates() {
    // The storage and profiling crates hold the unsafe-escape corpus (the
    // mmap image, the compressed word views) and must be part of the tree
    // walk — both as parsed files and as individually clean sub-trees.
    let corpus = gsword_analyzer::corpus_files(&crates_root());
    for required in [
        "graph/src/mmap.rs",
        "graph/src/compressed.rs",
        "prof/src/lib.rs",
    ] {
        assert!(
            corpus.iter().any(|(f, _)| f == required),
            "{required} missing from the analyzer corpus"
        );
    }
    for sub in ["graph", "prof"] {
        let findings = gsword_analyzer::analyze_tree(&crates_root().join(sub));
        assert!(
            findings.is_empty(),
            "analyzer findings on crates/{sub}:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn every_workspace_unsafe_site_has_a_safety_comment() {
    // Satellite of the unsafe-escape rule: the clean-corpus guarantee is
    // achieved by documenting every unsafe site, not by suppressing the
    // rule — so no analyzed file may carry a gsword allow for it.
    // Assemble the needles at runtime so this test file (itself part of
    // the corpus) doesn't contain them literally.
    let needles = [
        format!("allow({})", "unsafe-escape"),
        format!("allow-file({})", "unsafe-escape"),
    ];
    for (file, src) in gsword_analyzer::corpus_files(&crates_root()) {
        assert!(
            needles.iter().all(|n| !src.contains(n.as_str())),
            "{file} suppresses unsafe-escape instead of documenting the site"
        );
    }
}

#[test]
fn analyzer_covers_warp_primitives() {
    let path = crates_root().join("simt/src/warp.rs");
    let src = std::fs::read_to_string(&path).expect("warp primitive source");
    let names = gsword_analyzer::kernel_fn_names("simt/src/warp.rs", &src);
    for required in [
        "any",
        "ballot",
        "shfl",
        "reduce_sum",
        "reduce_count",
        "reduce_max_by_key",
    ] {
        assert!(
            names.iter().any(|n| n == required),
            "warp primitive {required} not covered by the analyzer; saw {names:?}"
        );
    }
}
