//! Statement-level control-flow graph.
//!
//! Each [`FnDef`] body lowers to a graph of [`Node`]s holding ordered
//! [`Action`]s (calls and definitions). A node carries the stack of
//! [`Guard`]s governing its execution — the conditions and loops it is
//! nested under — which is what the uniformity analysis consults to decide
//! whether control flow at a call site is warp-divergent.
//!
//! Construction is structural: `if`/`match` fork and re-join, `while`/
//! `for`/`loop` produce a header with a back edge, `return`/`break`/
//! `continue` divert the edge and leave the rest of their block on a
//! fresh, predecessor-less node (unreachable code stays analyzable but
//! never contributes reachable-state findings).

use crate::lex::{Tok, TokKind};
use crate::parse::{matching, split_top, Block, Stmt};

/// A call site extracted from expression tokens.
#[derive(Debug, Clone)]
pub struct Call {
    pub line: u32,
    pub col: u32,
    /// Last path segment (`ballot` for `warp::ballot`) or method name.
    pub name: String,
    pub is_method: bool,
    /// Dotted receiver chain for simple method calls (`self . san`);
    /// `None` when the receiver is a compound expression.
    pub recv: Option<String>,
    /// Argument token slices, split at top-level commas.
    pub args: Vec<Vec<Tok>>,
}

/// One step of straight-line execution inside a node.
#[derive(Debug, Clone)]
pub enum Action {
    Call(Call),
    /// A binding or assignment: `names` receive a value derived from `rhs`.
    Def {
        names: Vec<String>,
        rhs: Vec<Tok>,
        ty: Vec<Tok>,
    },
}

/// A control condition a node executes under.
#[derive(Debug, Clone)]
pub enum Guard {
    /// `if` / `while` / `match`-arm / `let-else` condition tokens.
    Cond(Vec<Tok>),
    /// A `for` loop: iterated expression plus the loop pattern's bindings.
    Loop {
        iter: Vec<Tok>,
        bindings: Vec<String>,
    },
}

#[derive(Debug, Default)]
pub struct Node {
    pub actions: Vec<Action>,
    /// Indices into [`Cfg::guards`], outermost first.
    pub guards: Vec<usize>,
    pub succs: Vec<usize>,
}

#[derive(Debug, Default)]
pub struct Cfg {
    pub nodes: Vec<Node>,
    pub guards: Vec<Guard>,
}

impl Cfg {
    /// Predecessor lists, derived from `succs`.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &s in &n.succs {
                preds[s].push(i);
            }
        }
        preds
    }
}

struct Builder {
    cfg: Cfg,
    /// (continue target, break target) per enclosing loop.
    loops: Vec<(usize, usize)>,
}

/// Lower a parsed function body into a CFG. Node 0 is the entry.
pub fn lower(body: &Block) -> Cfg {
    let mut b = Builder {
        cfg: Cfg::default(),
        loops: Vec::new(),
    };
    let entry = b.new_node(Vec::new());
    debug_assert_eq!(entry, 0);
    b.lower_block(body, entry, &[]);
    b.cfg
}

impl Builder {
    fn new_node(&mut self, guards: Vec<usize>) -> usize {
        self.cfg.nodes.push(Node {
            guards,
            ..Node::default()
        });
        self.cfg.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.cfg.nodes[from].succs.contains(&to) {
            self.cfg.nodes[from].succs.push(to);
        }
    }

    fn guard(&mut self, g: Guard) -> usize {
        self.cfg.guards.push(g);
        self.cfg.guards.len() - 1
    }

    fn push_calls(&mut self, node: usize, toks: &[Tok]) {
        for c in extract_calls(toks) {
            self.cfg.nodes[node].actions.push(Action::Call(c));
        }
    }

    /// Lower `block` starting in node `cur` under guard stack `g`;
    /// returns the node control falls out of.
    fn lower_block(&mut self, block: &Block, mut cur: usize, g: &[usize]) -> usize {
        for stmt in &block.stmts {
            cur = self.lower_stmt(stmt, cur, g);
        }
        cur
    }

    fn lower_stmt(&mut self, stmt: &Stmt, mut cur: usize, g: &[usize]) -> usize {
        match stmt {
            Stmt::Let {
                names,
                ty,
                init,
                else_block,
                ..
            } => {
                self.push_calls(cur, init);
                self.cfg.nodes[cur].actions.push(Action::Def {
                    names: names.clone(),
                    rhs: init.clone(),
                    ty: ty.clone(),
                });
                if let Some(eb) = else_block {
                    let gid = self.guard(Guard::Cond(init.clone()));
                    let mut eg = g.to_vec();
                    eg.push(gid);
                    let e = self.new_node(eg.clone());
                    self.edge(cur, e);
                    let e_exit = self.lower_block(eb, e, &eg);
                    let join = self.new_node(g.to_vec());
                    self.edge(cur, join);
                    self.edge(e_exit, join);
                    cur = join;
                }
                cur
            }
            Stmt::Assign { target, value, .. } => {
                self.push_calls(cur, value);
                self.cfg.nodes[cur].actions.push(Action::Def {
                    names: vec![target.clone()],
                    rhs: value.clone(),
                    ty: Vec::new(),
                });
                cur
            }
            Stmt::Expr(toks) => {
                self.push_calls(cur, toks);
                cur
            }
            Stmt::Return(toks) => {
                self.push_calls(cur, toks);
                self.new_node(g.to_vec())
            }
            Stmt::Break => match self.loops.last() {
                Some(&(_, brk)) => {
                    self.edge(cur, brk);
                    self.new_node(g.to_vec())
                }
                None => cur,
            },
            Stmt::Continue => match self.loops.last() {
                Some(&(cont, _)) => {
                    self.edge(cur, cont);
                    self.new_node(g.to_vec())
                }
                None => cur,
            },
            Stmt::Block(b) | Stmt::Unsafe { body: b, .. } => self.lower_block(b, cur, g),
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                self.push_calls(cur, cond);
                let gid = self.guard(Guard::Cond(cond.clone()));
                let mut tg = g.to_vec();
                tg.push(gid);
                let t = self.new_node(tg.clone());
                self.edge(cur, t);
                let t_exit = self.lower_block(then_b, t, &tg);
                let join = self.new_node(g.to_vec());
                self.edge(t_exit, join);
                match else_b {
                    Some(eb) => {
                        let e = self.new_node(tg.clone());
                        self.edge(cur, e);
                        let e_exit = self.lower_block(eb, e, &tg);
                        self.edge(e_exit, join);
                    }
                    None => self.edge(cur, join),
                }
                join
            }
            Stmt::While { cond, body } => {
                let header = self.new_node(g.to_vec());
                self.edge(cur, header);
                self.push_calls(header, cond);
                let gid = self.guard(Guard::Cond(cond.clone()));
                let mut bg = g.to_vec();
                bg.push(gid);
                let b = self.new_node(bg.clone());
                self.edge(header, b);
                let exit = self.new_node(g.to_vec());
                self.edge(header, exit);
                self.loops.push((header, exit));
                let b_exit = self.lower_block(body, b, &bg);
                self.loops.pop();
                self.edge(b_exit, header);
                exit
            }
            Stmt::Loop { body } => {
                let header = self.new_node(g.to_vec());
                self.edge(cur, header);
                let exit = self.new_node(g.to_vec());
                self.loops.push((header, exit));
                let b_exit = self.lower_block(body, header, g);
                self.loops.pop();
                self.edge(b_exit, header);
                exit
            }
            Stmt::For {
                bindings,
                iter,
                body,
            } => {
                self.push_calls(cur, iter);
                let header = self.new_node(g.to_vec());
                self.edge(cur, header);
                let gid = self.guard(Guard::Loop {
                    iter: iter.clone(),
                    bindings: bindings.clone(),
                });
                let mut bg = g.to_vec();
                bg.push(gid);
                let b = self.new_node(bg.clone());
                self.edge(header, b);
                let exit = self.new_node(g.to_vec());
                self.edge(header, exit);
                self.loops.push((header, exit));
                let b_exit = self.lower_block(body, b, &bg);
                self.loops.pop();
                self.edge(b_exit, header);
                exit
            }
            Stmt::Match { scrutinee, arms } => {
                self.push_calls(cur, scrutinee);
                let join = self.new_node(g.to_vec());
                if arms.is_empty() {
                    self.edge(cur, join);
                }
                let gid = self.guard(Guard::Cond(scrutinee.clone()));
                for (bindings, body) in arms {
                    let mut ag = g.to_vec();
                    ag.push(gid);
                    let a = self.new_node(ag.clone());
                    self.edge(cur, a);
                    if !bindings.is_empty() {
                        self.cfg.nodes[a].actions.push(Action::Def {
                            names: bindings.clone(),
                            rhs: scrutinee.clone(),
                            ty: Vec::new(),
                        });
                    }
                    let a_exit = self.lower_block(body, a, &ag);
                    self.edge(a_exit, join);
                }
                join
            }
        }
    }
}

/// Keywords that look like calls when followed by `(`.
const NOT_CALLS: &[&str] = &["if", "while", "for", "match", "return", "in", "as", "move"];

/// Extract every call site from an expression token slice, in source
/// order. Macros (`name!(..)`) are skipped as calls, but calls nested in
/// their arguments are still found by the linear scan.
pub fn extract_calls(toks: &[Tok]) -> Vec<Call> {
    extract_calls_spanned(toks)
        .into_iter()
        .map(|(c, _)| c)
        .collect()
}

/// Like [`extract_calls`] but with each call's `(start, end)` token span
/// (name/path start through closing paren), for masking sub-expressions.
pub fn extract_calls_spanned(toks: &[Tok]) -> Vec<(Call, (usize, usize))> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_punct("(") || i == 0 {
            continue;
        }
        let prev = &toks[i - 1];
        if prev.kind != TokKind::Ident || NOT_CALLS.contains(&prev.text.as_str()) {
            continue;
        }
        // Macro call `name ! (`: skip (arguments are scanned linearly).
        if i >= 2 && toks[i - 2].is_punct("!") {
            continue;
        }
        let name = prev.text.clone();
        let close = matching(toks, i);
        let args: Vec<Vec<Tok>> = if close > i + 1 {
            split_top(&toks[i + 1..close], ",")
                .into_iter()
                .map(<[Tok]>::to_vec)
                .collect()
        } else {
            Vec::new()
        };
        // Walk back to classify: `recv . name (` method vs `path :: name (`.
        let (is_method, recv) = if i >= 2 && toks[i - 2].is_punct(".") {
            (true, receiver_chain(&toks[..i - 2]))
        } else {
            (false, None)
        };
        out.push((
            Call {
                line: prev.line,
                col: prev.col,
                name,
                is_method,
                recv,
                args,
            },
            (i - 1, close),
        ));
    }
    out
}

/// Walk back over a `a . b . c` chain ending at `toks.len()`. Returns the
/// normalized chain (`a . b . c`) or `None` for compound receivers.
fn receiver_chain(toks: &[Tok]) -> Option<String> {
    let mut parts = Vec::new();
    let mut i = toks.len();
    loop {
        if i == 0 {
            break;
        }
        let t = &toks[i - 1];
        if t.kind == TokKind::Ident {
            parts.push(t.text.clone());
            i -= 1;
            if i == 0 {
                break;
            }
            if toks[i - 1].is_punct(".") {
                i -= 1;
                continue;
            }
            break;
        }
        // Anything else (`)`, `]`, literal): compound receiver.
        return None;
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    Some(parts.join(" . "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn cfg_of(src: &str) -> Cfg {
        let fns = parse_file(&lex(src));
        lower(&fns[0].body)
    }

    fn all_calls(cfg: &Cfg) -> Vec<String> {
        cfg.nodes
            .iter()
            .flat_map(|n| &n.actions)
            .filter_map(|a| match a {
                Action::Call(c) => Some(c.name.clone()),
                Action::Def { .. } => None,
            })
            .collect()
    }

    #[test]
    fn straight_line_single_node() {
        let cfg = cfg_of("fn f() { let a = g(); h(a); }");
        assert_eq!(cfg.nodes.len(), 1);
        assert_eq!(all_calls(&cfg), vec!["g", "h"]);
    }

    #[test]
    fn if_forks_and_joins() {
        let cfg = cfg_of("fn f(c: bool) { if c { t(); } else { e(); } after(); }");
        assert!(all_calls(&cfg).contains(&"after".to_string()));
        // then + else nodes carry the guard; entry and join do not.
        let guarded = cfg.nodes.iter().filter(|n| !n.guards.is_empty()).count();
        assert_eq!(guarded, 2);
    }

    #[test]
    fn loops_have_back_edges() {
        let cfg = cfg_of("fn f() { for i in 0..4 { body(); } }");
        let preds = cfg.preds();
        // Some node (the loop header) has 2+ predecessors: entry + back edge.
        assert!(preds.iter().any(|p| p.len() >= 2));
        assert!(matches!(cfg.guards[0], Guard::Loop { .. }));
    }

    #[test]
    fn return_detaches_following_code() {
        let cfg = cfg_of("fn f(c: bool) { if c { return; } reachable(); }");
        // reachable() must live on a node that still has predecessors.
        let preds = cfg.preds();
        for (i, n) in cfg.nodes.iter().enumerate() {
            let has_reachable = n
                .actions
                .iter()
                .any(|a| matches!(a, Action::Call(c) if c.name == "reachable"));
            if has_reachable {
                assert!(!preds[i].is_empty(), "reachable() ended up unreachable");
            }
        }
    }

    #[test]
    fn calls_classify_method_vs_free() {
        let src =
            "fn f() { warp::ballot(c, s, m, p); self.san.set_active(m); pred.iter().any(|p| p); }";
        let cfg = cfg_of(src);
        let calls: Vec<Call> = cfg
            .nodes
            .iter()
            .flat_map(|n| &n.actions)
            .filter_map(|a| match a {
                Action::Call(c) => Some(c.clone()),
                _ => None,
            })
            .collect();
        let ballot = calls.iter().find(|c| c.name == "ballot").unwrap();
        assert!(!ballot.is_method);
        assert_eq!(ballot.args.len(), 4);
        let sa = calls.iter().find(|c| c.name == "set_active").unwrap();
        assert!(sa.is_method);
        assert_eq!(sa.recv.as_deref(), Some("self . san"));
        let any = calls.iter().find(|c| c.name == "any").unwrap();
        assert!(any.is_method, "iterator .any must be a method call");
        assert!(any.recv.is_none(), "chained receiver is compound");
    }

    #[test]
    fn macros_are_not_calls_but_args_are_scanned() {
        let cfg = cfg_of("fn f() { assert_eq!(inner(1), 2); }");
        let names = all_calls(&cfg);
        assert!(!names.contains(&"assert_eq".to_string()));
        assert!(names.contains(&"inner".to_string()));
    }

    #[test]
    fn match_arms_fork() {
        let cfg = cfg_of(
            "fn f(o: Option<u32>) { match o { Some(x) => { a(x); } None => { b(); } } done(); }",
        );
        let names = all_calls(&cfg);
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"done".to_string()));
        let guarded = cfg.nodes.iter().filter(|n| !n.guards.is_empty()).count();
        assert_eq!(guarded, 2);
    }
}
