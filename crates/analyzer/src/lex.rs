//! A lossy Rust lexer: identifiers, punctuation, and literals with line
//! and column numbers; comments stripped, string/char contents kept
//! opaque.
//!
//! The analyzer never needs to look *inside* a literal, so a string
//! becomes a single [`TokKind::Lit`] token whose braces, `//`, or `SeqCst`
//! content can never confuse the downstream passes — the property the old
//! textual lint approximated with per-line `split("//")`.

/// Token class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation (multi-character operators are one token: `::`, `=>`,
    /// `..`, `&&`, …).
    Punct,
    /// Number, string, char, or byte literal (contents opaque).
    Lit,
}

/// One token with its 1-based source line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this punctuation with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Multi-character operators, longest first so maximal munch wins.
const MULTI_PUNCT: &[&str] = &[
    "..=", "::", "->", "=>", "..", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Char indices at which each 1-based line starts; columns are computed
/// as offsets from these, so multi-line tokens keep the column of their
/// opening character.
fn line_starts(b: &[char]) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, &c) in b.iter().enumerate() {
        if c == '\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn col_of(starts: &[usize], line: u32, idx: usize) -> u32 {
    let base = starts.get(line as usize - 1).copied().unwrap_or(0).min(idx);
    (idx - base + 1) as u32
}

/// Tokenize `src`. Never fails: unrecognized bytes become single-character
/// punctuation, which at worst makes a statement opaque to the parser.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let starts = line_starts(&b);
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => i = lex_string(&b, &starts, i, line, &mut out, &mut line),
            'r' | 'b' if starts_raw_or_byte_string(&b, i) => {
                i = lex_raw_or_byte(&b, &starts, i, &mut out, &mut line)
            }
            '\'' => i = lex_quote(&b, &starts, i, line, &mut out),
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                    col: col_of(&starts, line, start),
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                // Lenient number: digits plus suffixes/underscores/radix
                // letters; `0..` must not swallow the range dots.
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                if i < b.len() && b[i] == '.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                }
                out.push(Tok {
                    kind: TokKind::Lit,
                    text: b[start..i].iter().collect(),
                    line,
                    col: col_of(&starts, line, start),
                });
            }
            _ => {
                let rest: String = b[i..b.len().min(i + 3)].iter().collect();
                let mut matched = None;
                for op in MULTI_PUNCT {
                    if rest.starts_with(op) {
                        matched = Some(*op);
                        break;
                    }
                }
                if let Some(op) = matched {
                    out.push(Tok {
                        kind: TokKind::Punct,
                        text: op.to_string(),
                        line,
                        col: col_of(&starts, line, i),
                    });
                    i += op.len();
                } else {
                    out.push(Tok {
                        kind: TokKind::Punct,
                        text: c.to_string(),
                        line,
                        col: col_of(&starts, line, i),
                    });
                    i += 1;
                }
            }
        }
    }
    out
}

fn starts_raw_or_byte_string(b: &[char], i: usize) -> bool {
    // r"..." | r#"..."# | br"..." | b"..." | b'..'
    match b[i] {
        'r' => matches!(b.get(i + 1), Some('"') | Some('#')),
        'b' => matches!(b.get(i + 1), Some('"') | Some('\'') | Some('r')),
        _ => false,
    }
}

fn lex_string(
    b: &[char],
    starts: &[usize],
    start: usize,
    start_line: u32,
    out: &mut Vec<Tok>,
    line: &mut u32,
) -> usize {
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    out.push(Tok {
        kind: TokKind::Lit,
        text: "\"…\"".to_string(),
        line: start_line,
        col: col_of(starts, start_line, start),
    });
    i
}

fn lex_raw_or_byte(
    b: &[char],
    starts: &[usize],
    start: usize,
    out: &mut Vec<Tok>,
    line: &mut u32,
) -> usize {
    let start_line = *line;
    let start_col = col_of(starts, start_line, start);
    let mut i = start;
    // Skip the `b` / `r` / `br` prefix.
    while i < b.len() && (b[i] == 'b' || b[i] == 'r') {
        i += 1;
    }
    if b.get(i) == Some(&'\'') {
        // Byte char literal b'x'.
        let end = lex_quote(b, starts, i, start_line, out);
        out.pop(); // replace the char token with a byte-lit token
        out.push(Tok {
            kind: TokKind::Lit,
            text: "b'…'".to_string(),
            line: start_line,
            col: start_col,
        });
        return end;
    }
    let mut hashes = 0;
    while b.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&'"') {
        // Not actually a string (e.g. the identifier `r#keyword`); emit the
        // prefix as an identifier and resume.
        let mut j = start;
        while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_' || b[j] == '#') {
            j += 1;
        }
        out.push(Tok {
            kind: TokKind::Ident,
            text: b[start..j].iter().collect(),
            line: start_line,
            col: start_col,
        });
        return j;
    }
    i += 1; // opening quote
    loop {
        if i >= b.len() {
            break;
        }
        if b[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if b.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                i += 1 + hashes;
                break;
            }
        }
        i += 1;
    }
    out.push(Tok {
        kind: TokKind::Lit,
        text: "r\"…\"".to_string(),
        line: start_line,
        col: start_col,
    });
    i
}

/// Lex a `'` — either a char literal or a lifetime.
fn lex_quote(b: &[char], starts: &[usize], start: usize, line: u32, out: &mut Vec<Tok>) -> usize {
    let col = col_of(starts, line, start);
    let mut i = start + 1;
    // Lifetime: 'ident not followed by a closing quote.
    if i < b.len() && (b[i].is_alphabetic() || b[i] == '_') {
        let mut j = i;
        while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
            j += 1;
        }
        if b.get(j) != Some(&'\'') {
            out.push(Tok {
                kind: TokKind::Punct,
                text: format!("'{}", b[i..j].iter().collect::<String>()),
                line,
                col,
            });
            return j;
        }
    }
    // Char literal, possibly escaped.
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\'' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    out.push(Tok {
        kind: TokKind::Lit,
        text: "'…'".to_string(),
        line,
        col,
    });
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("let x = 1;\nlet y = x;");
        assert!(toks[0].is_ident("let"));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].col, 1);
        let y = toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 2);
        assert_eq!(y.col, 5);
    }

    #[test]
    fn columns_track_indentation_and_operators() {
        let toks = lex("    foo += 1;\n  bar.baz();");
        let foo = toks.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!((foo.line, foo.col), (1, 5));
        let plus = toks.iter().find(|t| t.is_punct("+=")).unwrap();
        assert_eq!((plus.line, plus.col), (1, 9));
        let baz = toks.iter().find(|t| t.is_ident("baz")).unwrap();
        assert_eq!((baz.line, baz.col), (2, 7));
    }

    #[test]
    fn columns_survive_multiline_strings() {
        let toks = lex("let s = \"a\nb\";\nnext");
        let next = toks.iter().find(|t| t.is_ident("next")).unwrap();
        assert_eq!((next.line, next.col), (3, 1));
        let lit = toks.iter().find(|t| t.text == "\"…\"").unwrap();
        assert_eq!((lit.line, lit.col), (1, 9));
    }

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = lex(
            "a; // SeqCst in a comment\nlet s = \"SeqCst { } .launch(\"; /* more\nSeqCst */ b;",
        );
        assert!(!toks.iter().any(|t| t.is_ident("SeqCst")));
        // Braces inside the string must not appear as puncts.
        assert!(!toks.iter().any(|t| t.is_punct("{")));
        assert!(toks.iter().any(|t| t.is_ident("b")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = texts("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(t.contains(&"'a".to_string()));
        assert!(t.contains(&"'…'".to_string()));
    }

    #[test]
    fn raw_strings_swallow_hashes() {
        let t = texts("let s = r#\"a \" b\"#; done");
        assert!(t.contains(&"done".to_string()));
        assert!(t.contains(&"r\"…\"".to_string()));
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let t = texts("a::b => c..d ..= e != f");
        for op in ["::", "=>", "..", "..=", "!="] {
            assert!(t.contains(&op.to_string()), "{op} missing from {t:?}");
        }
    }

    #[test]
    fn range_from_zero_keeps_dots() {
        let t = texts("0..WARP_SIZE");
        assert_eq!(t, vec!["0", "..", "WARP_SIZE"]);
    }

    #[test]
    fn floats_lex_as_one_literal() {
        let t = texts("x > 0.5 && y < 1e3");
        assert!(t.contains(&"0.5".to_string()));
    }
}
