//! SARIF 2.1.0 serialization for analyzer findings.
//!
//! Hand-rolled for the same reason gsword-prof hand-rolls its Chrome
//! trace JSON: the workspace builds hermetically from vendored stubs and
//! carries no serde. The writer emits the minimal valid subset — one run,
//! a `tool.driver` with the full rule table, one `result` per finding
//! with a `physicalLocation` (region omitted for file-scoped findings) —
//! and `cargo xtask check-sarif` round-trips the output through the
//! profiler's JSON parser to keep the writer honest.

use crate::{Finding, RULES};

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// SARIF artifact URIs use forward slashes regardless of platform.
fn uri(path: &str) -> String {
    esc(&path.replace('\\', "/"))
}

/// Serialize findings as a SARIF 2.1.0 log (pretty-printed, trailing
/// newline, deterministic for identical input).
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"gsword-analyzer\",\n");
    s.push_str(&format!(
        "          \"version\": \"{}\",\n",
        esc(env!("CARGO_PKG_VERSION"))
    ));
    s.push_str("          \"informationUri\": \"https://example.invalid/gsword\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, (id, desc)) in RULES.iter().enumerate() {
        s.push_str(&format!(
            "            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}{}\n",
            esc(id),
            esc(desc),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let rule_index = RULES
            .iter()
            .position(|(id, _)| *id == f.rule)
            .map_or(-1, |p| p as i64);
        s.push_str("        {\n");
        s.push_str(&format!("          \"ruleId\": \"{}\",\n", esc(f.rule)));
        s.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
        s.push_str("          \"level\": \"warning\",\n");
        s.push_str(&format!(
            "          \"message\": {{ \"text\": \"{}\" }},\n",
            esc(&f.message)
        ));
        s.push_str("          \"locations\": [\n            {\n");
        s.push_str("              \"physicalLocation\": {\n");
        s.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": \"{}\" }}",
            uri(&f.file)
        ));
        if let Some(line) = f.line {
            s.push_str(",\n                \"region\": { ");
            s.push_str(&format!("\"startLine\": {line}"));
            if let Some(col) = f.col {
                s.push_str(&format!(", \"startColumn\": {col}"));
            }
            s.push_str(" }\n");
        } else {
            s.push('\n');
        }
        s.push_str("              }\n            }\n          ]\n");
        s.push_str(&format!(
            "        }}{}\n",
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(line: Option<u32>, col: Option<u32>, msg: &str) -> Finding {
        Finding {
            file: "crates/engine/src/kernel.rs".into(),
            line,
            col,
            rule: "divergent-sync",
            message: msg.into(),
        }
    }

    #[test]
    fn log_has_schema_version_and_rules() {
        let out = to_sarif(&[]);
        assert!(out.contains("\"version\": \"2.1.0\""));
        assert!(out.contains("\"name\": \"gsword-analyzer\""));
        for (id, _) in RULES {
            assert!(out.contains(&format!("\"id\": \"{id}\"")), "missing {id}");
        }
        assert!(out.contains("\"results\": [\n      ]"), "empty results");
    }

    #[test]
    fn result_carries_location_and_rule_index() {
        let out = to_sarif(&[finding(Some(12), Some(9), "mask mismatch")]);
        assert!(out.contains("\"ruleId\": \"divergent-sync\""));
        assert!(out.contains("\"ruleIndex\": 0"));
        assert!(out.contains("\"startLine\": 12"));
        assert!(out.contains("\"startColumn\": 9"));
        assert!(out.contains("\"uri\": \"crates/engine/src/kernel.rs\""));
    }

    #[test]
    fn lineless_finding_omits_region() {
        let out = to_sarif(&[finding(None, None, "no counters charged")]);
        assert!(!out.contains("startLine"));
        assert!(out.contains("artifactLocation"));
    }

    #[test]
    fn messages_are_json_escaped() {
        let out = to_sarif(&[finding(Some(1), Some(1), "bad \"mask\"\\path\n")]);
        assert!(out.contains("bad \\\"mask\\\"\\\\path\\n"));
    }

    #[test]
    fn backslash_paths_become_uri_slashes() {
        let mut f = finding(Some(1), Some(1), "m");
        f.file = "crates\\engine\\src\\kernel.rs".into();
        let out = to_sarif(&[f]);
        assert!(out.contains("\"uri\": \"crates/engine/src/kernel.rs\""));
    }
}
