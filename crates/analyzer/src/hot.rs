//! Hot-region classification and the loop-aware cost rules.
//!
//! ROADMAP item 2 says the SIMT simulator's wall clock is dominated by
//! per-access charging inside the lockstep round loops. This module makes
//! that work list mechanical: a function is **hot** when it is subject to
//! the kernel rules ([`crate::analysis::is_kernel_fn`]) *and* reachable
//! from a kernel entry point (`run` / `run_block`) over the name-level
//! call graph ([`crate::callgraph::call_graph`]). Three rules then run
//! over the loop structure ([`crate::loops`]):
//!
//! * `alloc-in-hot-loop` — a heap allocation (`Vec::new`, `Box::new`,
//!   `String::new`, `vec![]`, `format!`, `.collect()`, `.to_vec()`)
//!   inside a loop of a hot function. Exempt when the receiving buffer is
//!   reused via the hoist idiom: allocate once outside (ideally
//!   `with_capacity`) and `.clear()` it per iteration — any binding whose
//!   variable is `.clear()`ed somewhere in the function is treated as a
//!   reused buffer, not a per-iteration allocation.
//! * `charge-per-access` — a loop whose *only* observable work is cost
//!   charging (`warp_load` / `warp_load_bytes` plus pure bookkeeping)
//!   issues one charge per element; the finding names the batched
//!   per-round API ([`BATCH_APIS`]) that replays the identical charge
//!   sequence in one call.
//! * `decode-in-loop` — a compressed-adjacency decode
//!   (`neighbors_ref` / `decode_into` / `contains_with_probes`) whose
//!   argument is invariant with respect to the innermost enclosing loop:
//!   the decode re-does identical work every iteration and is hoistable.
//!
//! The same machinery produces the [`HotRow`] report consumed by
//! `cargo xtask analyze --hot-report` — the ranked work list for the
//! vectorization pass.

use std::collections::BTreeMap;

use crate::analysis::{is_kernel_fn, RawFinding};
use crate::callgraph::call_graph;
use crate::cfg::{lower, Action, Call, Cfg};
use crate::lex::{Tok, TokKind};
use crate::loops::{find_loops, Loops};
use crate::parse::{visit_exprs, Block, FnDef, Stmt};

/// Kernel entry points: the lockstep executors the launch layer invokes.
pub const HOT_ENTRIES: &[&str] = &["run", "run_block"];

/// Per-access charging calls with a batched per-round replacement.
/// `(per-access call, batch API)` — the finding message names the batch
/// API so the fix is mechanical.
pub const BATCH_APIS: &[(&str, &str)] = &[
    ("warp_load", "warp_load_rounds"),
    ("warp_load_bytes", "warp_load_rounds"),
];

/// Calls allowed inside a pure charging loop besides the charges
/// themselves: scalar bookkeeping that a batch API replicates internally.
const PURE_BOOKKEEPING: &[&str] = &[
    "clear",
    "contains",
    "count_ones",
    "enumerate",
    "flatten",
    "get",
    "iter",
    "lanes_of",
    "len",
    "map",
    "max",
    "min",
    "push",
    "unwrap",
    "unwrap_or",
];

/// Compressed-adjacency decodes whose repeated invocation on the same
/// vertex re-walks the same varint stream.
const DECODE_CALLS: &[&str] = &["neighbors_ref", "decode_into", "contains_with_probes"];

/// Heap-allocating constructs matched token-wise (macros are invisible to
/// the CFG's call extraction, so this scans statement expressions).
const ALLOC_PATHS: &[&str] = &["Vec", "Box", "String"];

/// BFS distances from the kernel entry points over the name-level call
/// graph. A function name maps to its hop count from the nearest entry
/// (0 for the entries themselves); unreachable names are absent.
pub fn entry_distances(fns: &[FnDef]) -> BTreeMap<String, u32> {
    let graph = call_graph(fns);
    let mut dist: BTreeMap<String, u32> = BTreeMap::new();
    let mut frontier: Vec<String> = Vec::new();
    for e in HOT_ENTRIES {
        if graph.contains_key(*e) {
            dist.insert((*e).to_string(), 0);
            frontier.push((*e).to_string());
        }
    }
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for name in frontier {
            let Some(callees) = graph.get(&name) else {
                continue;
            };
            for c in callees {
                if !dist.contains_key(c) {
                    dist.insert(c.clone(), d);
                    next.push(c.clone());
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Run the three cost rules on one function. `dist` is the corpus-wide
/// entry-distance map; the allocation and charging rules require the
/// function to be hot, the decode rule applies to any non-test function.
pub fn check_fn(file: &str, f: &FnDef, dist: &BTreeMap<String, u32>) -> Vec<RawFinding> {
    if f.in_test {
        return Vec::new();
    }
    let cfg = lower(&f.body);
    let loops = find_loops(&cfg);
    let mut out = decode_findings(&cfg, &loops);
    if is_kernel_fn(file, f) && dist.contains_key(&f.name) {
        out.extend(alloc_findings(f));
        out.extend(charge_findings(f, &cfg, &loops));
    }
    out
}

// ---------------------------------------------------------------------------
// alloc-in-hot-loop
// ---------------------------------------------------------------------------

fn alloc_findings(f: &FnDef) -> Vec<RawFinding> {
    let cleared = cleared_vars(&f.body);
    let mut out = Vec::new();
    walk_alloc(&f.body, 0, &cleared, &f.name, &mut out);
    out
}

/// Variables `.clear()`ed anywhere in the function — the reuse half of
/// the hoisted-buffer idiom.
fn cleared_vars(body: &Block) -> Vec<String> {
    let mut out = Vec::new();
    visit_exprs(body, &mut |toks| {
        for c in crate::cfg::extract_calls(toks) {
            if c.is_method && c.name == "clear" {
                if let Some(recv) = &c.recv {
                    let last = recv.rsplit(" . ").next().unwrap_or(recv).to_string();
                    if !out.contains(&last) {
                        out.push(last);
                    }
                }
            }
        }
    });
    out
}

fn walk_alloc(b: &Block, depth: u32, cleared: &[String], fn_name: &str, out: &mut Vec<RawFinding>) {
    for s in &b.stmts {
        match s {
            Stmt::Let {
                names,
                init,
                else_block,
                ..
            } => {
                let reused = names.iter().any(|n| cleared.contains(n));
                if depth > 0 && !reused {
                    emit_allocs(init, depth, fn_name, out);
                }
                if let Some(eb) = else_block {
                    walk_alloc(eb, depth, cleared, fn_name, out);
                }
            }
            Stmt::Assign { target, value, .. } => {
                if depth > 0 && !cleared.contains(target) {
                    emit_allocs(value, depth, fn_name, out);
                }
            }
            Stmt::Expr(toks) | Stmt::Return(toks) => {
                if depth > 0 {
                    emit_allocs(toks, depth, fn_name, out);
                }
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                if depth > 0 {
                    emit_allocs(cond, depth, fn_name, out);
                }
                walk_alloc(then_b, depth, cleared, fn_name, out);
                if let Some(eb) = else_b {
                    walk_alloc(eb, depth, cleared, fn_name, out);
                }
            }
            Stmt::While { cond, body } => {
                emit_allocs(cond, depth + 1, fn_name, out);
                walk_alloc(body, depth + 1, cleared, fn_name, out);
            }
            Stmt::Loop { body } => walk_alloc(body, depth + 1, cleared, fn_name, out),
            Stmt::For { iter, body, .. } => {
                // The iterator expression evaluates once, at the enclosing
                // depth; only the body repeats.
                if depth > 0 {
                    emit_allocs(iter, depth, fn_name, out);
                }
                walk_alloc(body, depth + 1, cleared, fn_name, out);
            }
            Stmt::Match { scrutinee, arms } => {
                if depth > 0 {
                    emit_allocs(scrutinee, depth, fn_name, out);
                }
                for (_, body) in arms {
                    walk_alloc(body, depth, cleared, fn_name, out);
                }
            }
            Stmt::Block(inner) | Stmt::Unsafe { body: inner, .. } => {
                walk_alloc(inner, depth, cleared, fn_name, out)
            }
            Stmt::Break | Stmt::Continue => {}
        }
    }
}

/// Scan one expression token slice for allocation constructs and emit a
/// finding per construct.
fn emit_allocs(toks: &[Tok], depth: u32, fn_name: &str, out: &mut Vec<RawFinding>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_is = |s: &str| toks.get(i + 1).is_some_and(|n| n.is_punct(s));
        let what = match t.text.as_str() {
            "vec" | "format" if next_is("!") => Some(format!("{}!", t.text)),
            "new" => {
                let path = i
                    .checked_sub(2)
                    .filter(|_| toks[i - 1].is_punct("::"))
                    .map(|p| toks[p].text.as_str());
                path.filter(|p| ALLOC_PATHS.contains(p))
                    .map(|p| format!("{p}::new()"))
            }
            "collect" | "to_vec" if next_is("(") && i > 0 && toks[i - 1].is_punct(".") => {
                Some(format!(".{}()", t.text))
            }
            _ => None,
        };
        if let Some(what) = what {
            out.push(RawFinding {
                line: Some(t.line),
                col: Some(t.col),
                rule: "alloc-in-hot-loop",
                message: format!(
                    "`{what}` allocates inside a depth-{depth} loop of hot fn \
                     `{fn_name}` — hoist the buffer (with_capacity once, \
                     .clear() per iteration)"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// charge-per-access
// ---------------------------------------------------------------------------

fn batch_api(name: &str) -> Option<&'static str> {
    BATCH_APIS
        .iter()
        .find(|(per, _)| *per == name)
        .map(|(_, batch)| *batch)
}

/// A loop is *pure charging* when every call in it is either a charge
/// with a batch replacement, scalar bookkeeping, or an uppercase-initial
/// constructor. Such a loop does nothing a batch API cannot replay.
fn charge_findings(f: &FnDef, cfg: &Cfg, loops: &Loops) -> Vec<RawFinding> {
    // The batch APIs themselves replay the per-round loop internally.
    if BATCH_APIS.iter().any(|(_, b)| *b == f.name) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (li, l) in loops.loops.iter().enumerate() {
        let mut charges: Vec<&Call> = Vec::new();
        let mut pure = true;
        for &node in &l.body {
            if loops.innermost(node) != Some(li) {
                continue; // belongs to a nested loop, judged there
            }
            for a in &cfg.nodes[node].actions {
                let Action::Call(c) = a else { continue };
                if batch_api(&c.name).is_some() {
                    charges.push(c);
                } else if !PURE_BOOKKEEPING.contains(&c.name.as_str())
                    && !c.name.starts_with(|ch: char| ch.is_uppercase())
                {
                    pure = false;
                }
            }
        }
        if !pure {
            continue;
        }
        for c in charges {
            let batch = batch_api(&c.name).expect("collected as a charge");
            out.push(RawFinding {
                line: Some(c.line),
                col: Some(c.col),
                rule: "charge-per-access",
                message: format!(
                    "`{}` charges per element inside a pure charging loop of \
                     `{}` — batch the whole round with `{batch}`",
                    c.name, f.name
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// decode-in-loop
// ---------------------------------------------------------------------------

fn decode_findings(cfg: &Cfg, loops: &Loops) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (ni, node) in cfg.nodes.iter().enumerate() {
        let Some(li) = loops.innermost(ni) else {
            continue;
        };
        for a in &node.actions {
            let Action::Call(c) = a else { continue };
            if !DECODE_CALLS.contains(&c.name.as_str()) {
                continue;
            }
            let Some(arg) = c.args.first() else { continue };
            if arg.is_empty() || arg.iter().any(|t| t.is_punct("(")) {
                continue; // compound argument — conservatively variant
            }
            if loops.invariant_in(li, arg) {
                out.push(RawFinding {
                    line: Some(c.line),
                    col: Some(c.col),
                    rule: "decode-in-loop",
                    message: format!(
                        "`{}` re-decodes loop-invariant `{}` every iteration \
                         — hoist the decode above the loop",
                        c.name,
                        crate::parse::join(arg)
                    ),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Hot report
// ---------------------------------------------------------------------------

/// One charge call site inside a loop of a hot function.
#[derive(Debug, Clone)]
pub struct ChargeSite {
    pub call: String,
    pub line: u32,
    pub depth: u32,
}

/// One row of the `--hot-report` table: a kernel-reachable function with
/// its loop structure, in-loop charge sites, cost-rule hits, and call
/// graph distance from the nearest kernel entry.
#[derive(Debug, Clone)]
pub struct HotRow {
    pub function: String,
    pub file: String,
    pub line: u32,
    pub distance: u32,
    pub max_loop_depth: u32,
    pub charge_sites: Vec<ChargeSite>,
    pub rule_hits: usize,
}

/// Charging calls worth listing in the report: the counter-charging
/// methods, the warp memory model entry points, and the engine's
/// `charge_*` helpers.
fn is_charge_site(name: &str) -> bool {
    name.starts_with("charge")
        || matches!(
            name,
            "warp_load"
                | "warp_load_bytes"
                | "warp_store"
                | "warp_scan"
                | "warp_instruction"
                | "diverge"
        )
}

/// Build the report row for one function, or `None` when it is not hot.
pub fn report_row(file: &str, f: &FnDef, dist: &BTreeMap<String, u32>) -> Option<HotRow> {
    if f.in_test || !is_kernel_fn(file, f) {
        return None;
    }
    let d = *dist.get(&f.name)?;
    let cfg = lower(&f.body);
    let loops = find_loops(&cfg);
    let mut charge_sites = Vec::new();
    for (ni, node) in cfg.nodes.iter().enumerate() {
        if loops.depth[ni] == 0 {
            continue;
        }
        for a in &node.actions {
            let Action::Call(c) = a else { continue };
            if is_charge_site(&c.name) {
                charge_sites.push(ChargeSite {
                    call: c.name.clone(),
                    line: c.line,
                    depth: loops.depth[ni],
                });
            }
        }
    }
    charge_sites.sort_by(|a, b| (a.line, a.call.as_str()).cmp(&(b.line, b.call.as_str())));
    Some(HotRow {
        function: f.name.clone(),
        file: file.to_string(),
        line: f.line,
        distance: d,
        max_loop_depth: loops.max_depth(),
        charge_sites,
        rule_hits: check_fn(file, f, dist).len(),
    })
}

/// Rank rows for the report: deepest loops first, then most in-loop
/// charge sites, then closest to the entry, then by name.
pub fn rank_rows(rows: &mut [HotRow]) {
    rows.sort_by(|a, b| {
        (
            std::cmp::Reverse(a.max_loop_depth),
            std::cmp::Reverse(a.charge_sites.len()),
            a.distance,
            a.function.as_str(),
            a.file.as_str(),
        )
            .cmp(&(
                std::cmp::Reverse(b.max_loop_depth),
                std::cmp::Reverse(b.charge_sites.len()),
                b.distance,
                b.function.as_str(),
                b.file.as_str(),
            ))
    });
}

/// Render the ranked report as a fixed-width text table, one row per hot
/// function, with every in-loop charge site listed beneath its row.
pub fn render(rows: &[HotRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:<44} {:>5} {:>7} {:>4} {:>4}\n",
        "function", "file:line", "depth", "charges", "hits", "dist"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<28} {:<44} {:>5} {:>7} {:>4} {:>4}\n",
            r.function,
            format!("{}:{}", r.file, r.line),
            r.max_loop_depth,
            r.charge_sites.len(),
            r.rule_hits,
            r.distance,
        ));
        for s in &r.charge_sites {
            out.push_str(&format!(
                "    {}:{} {} (loop depth {})\n",
                r.file, s.line, s.call, s.depth
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn findings(file: &str, src: &str) -> Vec<RawFinding> {
        let fns = parse_file(&lex(src));
        let dist = entry_distances(&fns);
        fns.iter().flat_map(|f| check_fn(file, f, &dist)).collect()
    }

    #[test]
    fn entry_distances_walk_the_call_graph() {
        let fns = parse_file(&lex("fn run_block(m: u32) { helper(m); }\n\
             fn helper(m: u32) { leaf(m); }\n\
             fn leaf(m: u32) { }\n\
             fn island(m: u32) { }\n"));
        let d = entry_distances(&fns);
        assert_eq!(d.get("run_block"), Some(&0));
        assert_eq!(d.get("helper"), Some(&1));
        assert_eq!(d.get("leaf"), Some(&2));
        assert_eq!(d.get("island"), None);
    }

    #[test]
    fn alloc_in_hot_loop_fires_and_names_the_construct() {
        let src = "pub fn run_block(ctr: &mut KernelCounters, mask: WarpMask) {\n\
                   for lane in 0..WARP_SIZE {\n\
                       let tmp = Vec::new();\n\
                       consume(&tmp, lane);\n\
                   }\n\
                   ctr.warp_instruction(mask);\n\
                   }\n";
        let f = findings("m.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "alloc-in-hot-loop");
        assert_eq!(f[0].line, Some(3));
        assert!(f[0].message.contains("Vec::new()"), "{f:?}");
    }

    #[test]
    fn cleared_buffer_reuse_is_exempt() {
        let src = "pub fn run_block(ctr: &mut KernelCounters, mask: WarpMask, bufs: &mut Vec<Vec<u32>>) {\n\
                   for lane in 0..WARP_SIZE {\n\
                       let mut buf = std::mem::take(&mut bufs[lane]);\n\
                       buf.clear();\n\
                       consume(&buf, lane);\n\
                       bufs[lane] = buf;\n\
                   }\n\
                   ctr.warp_instruction(mask);\n\
                   }\n";
        assert!(findings("m.rs", src).is_empty());
    }

    #[test]
    fn alloc_outside_loops_is_clean() {
        let src = "pub fn run_block(ctr: &mut KernelCounters, mask: WarpMask) {\n\
                   let acc: Vec<u32> = (0..4).map(|x| x).collect();\n\
                   ctr.warp_instruction(mask);\n\
                   drop(acc);\n\
                   }\n";
        assert!(findings("m.rs", src).is_empty());
    }

    #[test]
    fn cold_functions_are_exempt_from_alloc_rule() {
        // Same body, but not reachable from run/run_block.
        let src = "pub fn setup(ctr: &mut KernelCounters, mask: WarpMask) {\n\
                   for lane in 0..WARP_SIZE {\n\
                       let tmp = Vec::new();\n\
                       consume(&tmp, lane);\n\
                   }\n\
                   ctr.warp_instruction(mask);\n\
                   }\n";
        assert!(findings("m.rs", src).is_empty());
    }

    #[test]
    fn charge_per_access_fires_on_pure_charging_loop() {
        let src = "pub fn run_block(ctr: &mut KernelCounters, san: &WarpSanitizer, bufs: &[Vec<usize>]) {\n\
                   let rounds = bufs.iter().map(Vec::len).max().unwrap_or(0);\n\
                   for r in 0..rounds {\n\
                       warp_load(ctr, san, bufs, r);\n\
                   }\n\
                   }\n";
        let f = findings("m.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "charge-per-access");
        assert!(f[0].message.contains("warp_load_rounds"), "{f:?}");
    }

    #[test]
    fn mixed_work_loop_is_not_flagged() {
        let src = "pub fn run_block(ctr: &mut KernelCounters, san: &WarpSanitizer, bufs: &[Vec<usize>]) {\n\
                   for r in 0..4 {\n\
                       warp_load(ctr, san, bufs, r);\n\
                       refine_one(bufs, r);\n\
                   }\n\
                   }\n";
        assert!(findings("m.rs", src).is_empty());
    }

    #[test]
    fn batch_api_implementation_is_exempt() {
        let src = "pub fn warp_load_rounds(ctr: &mut KernelCounters, san: &WarpSanitizer, bufs: &[Vec<usize>]) {\n\
                   let rounds = bufs.iter().map(Vec::len).max().unwrap_or(0);\n\
                   for r in 0..rounds {\n\
                       warp_load(ctr, san, bufs, r);\n\
                   }\n\
                   }\n\
                   pub fn run_block(ctr: &mut KernelCounters, san: &WarpSanitizer, bufs: &[Vec<usize>]) {\n\
                   warp_load_rounds(ctr, san, bufs);\n\
                   }\n";
        assert!(findings("m.rs", src).is_empty());
    }

    #[test]
    fn decode_of_invariant_vertex_fires() {
        let src = "pub fn scan(g: &Graph, u: u32, mask: WarpMask) -> usize {\n\
                   let mut total = 0usize;\n\
                   for _step in 0..WARP_SIZE {\n\
                       let adj = g.neighbors_ref(u);\n\
                       total = probe(adj, total);\n\
                   }\n\
                   total\n\
                   }\n";
        let f = findings("m.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "decode-in-loop");
        assert_eq!(f[0].line, Some(4));
    }

    #[test]
    fn decode_of_loop_varying_vertex_is_clean() {
        let src = "pub fn scan(g: &Graph, vs: &[u32], mask: WarpMask) -> usize {\n\
                   let mut total = 0usize;\n\
                   for v in vs {\n\
                       let adj = g.neighbors_ref(v);\n\
                       total = probe(adj, total);\n\
                   }\n\
                   total\n\
                   }\n";
        assert!(findings("m.rs", src).is_empty());
    }

    #[test]
    fn report_rows_rank_by_depth_then_sites() {
        let src = "pub fn run_block(ctr: &mut KernelCounters, san: &WarpSanitizer, bufs: &[Vec<usize>]) {\n\
                   deep(ctr, san, bufs);\n\
                   }\n\
                   pub fn deep(ctr: &mut KernelCounters, san: &WarpSanitizer, bufs: &[Vec<usize>]) {\n\
                   for r in 0..4 {\n\
                       for s in 0..4 {\n\
                           warp_load(ctr, san, bufs, r + s);\n\
                           step(bufs, r, s);\n\
                       }\n\
                   }\n\
                   }\n";
        let fns = parse_file(&lex(src));
        let dist = entry_distances(&fns);
        let mut rows: Vec<HotRow> = fns
            .iter()
            .filter_map(|f| report_row("m.rs", f, &dist))
            .collect();
        rank_rows(&mut rows);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].function, "deep");
        assert_eq!(rows[0].max_loop_depth, 2);
        assert_eq!(rows[0].distance, 1);
        assert_eq!(rows[0].charge_sites.len(), 1);
        assert_eq!(rows[0].charge_sites[0].call, "warp_load");
        assert_eq!(rows[0].charge_sites[0].depth, 2);
        assert_eq!(rows[1].function, "run_block");
        assert!(rows[1].charge_sites.is_empty());
    }
}
