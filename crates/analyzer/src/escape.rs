//! `unsafe-escape`: undocumented `unsafe` and unsafe-derived values that
//! outlive their validating function.
//!
//! The storage layer hands out `&[u32]` slices reinterpreted from mmap'd
//! bytes (`crates/graph/src/mmap.rs`) and the runtime transmutes a job's
//! lifetime to `'static` to cross the worker channel
//! (`crates/simt/src/runtime.rs`). Both are sound only because of
//! invariants the type system cannot see — so this rule insists every
//! `unsafe` site carries a `// SAFETY:` comment stating that invariant,
//! and upgrades the finding when the unsafe-derived value *escapes*: a
//! slice/pointer produced by an [`DERIVE_CALLS`] call inside `unsafe`
//! that is returned to the caller, where the validating context is gone.
//!
//! The lexer turns string literals into `Lit` tokens, so scanning for
//! `Ident` tokens spelled `unsafe` finds exactly the keyword sites
//! (`unsafe` is not in the parser's `KEYWORDS`, so it stays an `Ident`).
//! Comments never reach the token stream — the `// SAFETY:` check reads
//! the raw source lines instead.

use std::collections::BTreeMap;

use crate::analysis::{return_exprs, RawFinding};
use crate::lex::{Tok, TokKind};
use crate::parse::{FnDef, Stmt};

/// Calls that mint a reference/pointer whose validity is the `unsafe`
/// block's responsibility.
pub const DERIVE_CALLS: &[&str] = &[
    "from_raw_parts",
    "from_raw_parts_mut",
    "transmute",
    "as_ptr",
    "as_mut_ptr",
    "get_unchecked",
];

/// Run the rule over one file: `src` is the raw text (for comments),
/// `toks` its token stream, `fns` the parsed functions.
pub fn check_file(src: &str, toks: &[Tok], fns: &[FnDef]) -> Vec<RawFinding> {
    let lines: Vec<&str> = src.lines().collect();
    let escapes = escape_lines(fns);
    let mut out = Vec::new();
    let mut seen_lines = Vec::new();
    for t in toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if seen_lines.contains(&t.line) {
            continue;
        }
        seen_lines.push(t.line);
        if has_safety_comment(&lines, t.line) {
            continue;
        }
        let message = match escapes.get(&t.line) {
            Some(m) => m.clone(),
            None => "`unsafe` block lacks a `// SAFETY:` comment stating the invariant that \
                     makes it sound"
                .to_string(),
        };
        out.push(RawFinding {
            line: Some(t.line),
            col: Some(t.col),
            rule: "unsafe-escape",
            message,
        });
    }
    out
}

/// Does the 1-based `line` carry a `// SAFETY:` comment — trailing on the
/// line itself, or in the contiguous run of comment/attribute lines
/// directly above it?
fn has_safety_comment(lines: &[&str], line: u32) -> bool {
    let idx = line as usize - 1;
    if lines.get(idx).is_some_and(|l| l.contains("SAFETY:")) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].trim_start();
        if t.starts_with("//") || t.starts_with("#[") {
            if t.contains("SAFETY:") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Map from an `unsafe` keyword's line to an escape message, for every
/// unsafe-derived value that reaches a return expression of its function.
fn escape_lines(fns: &[FnDef]) -> BTreeMap<u32, String> {
    let mut out = BTreeMap::new();
    for f in fns {
        let returns = return_exprs(&f.body);
        // Direct escape: a return/tail expression that itself contains
        // `unsafe` around a derive call.
        for r in &returns {
            if let Some((line, call)) = unsafe_derive(r) {
                out.insert(line, escape_msg(&call, &f.name));
            }
        }
        // A trailing statement-level `unsafe { ... }` block is the
        // function's tail value; parse keeps it as `Stmt::Unsafe`, not an
        // expression, so `return_exprs` does not see it.
        if let Some(Stmt::Unsafe { body, line, .. }) = f.body.stmts.last() {
            for s in &body.stmts {
                if let Stmt::Expr(toks) | Stmt::Return(toks) = s {
                    if let Some(call) = derive_call(toks) {
                        out.insert(*line, escape_msg(&call, &f.name));
                    }
                }
            }
        }
        // Indirect escape: `let s = unsafe { derive(..) };` where `s`
        // later appears in a return expression.
        visit_lets(&f.body.stmts, &mut |names, init| {
            let Some((line, call)) = unsafe_derive(init) else {
                return;
            };
            let escapes = names.iter().any(|n| {
                returns
                    .iter()
                    .any(|r| r.iter().any(|t| t.kind == TokKind::Ident && t.text == *n))
            });
            if escapes {
                out.insert(line, escape_msg(&call, &f.name));
            }
        });
    }
    out
}

fn escape_msg(call: &str, fn_name: &str) -> String {
    format!(
        "unsafe-derived value (`{call}`) escapes `{fn_name}` — the caller holds a \
         reference whose validity only this function's context establishes; document \
         the invariant with `// SAFETY:` or return an owned/validated value"
    )
}

/// If `toks` contains the `unsafe` keyword and a derive call, return the
/// keyword's line and the call name.
fn unsafe_derive(toks: &[Tok]) -> Option<(u32, String)> {
    let kw = toks
        .iter()
        .find(|t| t.kind == TokKind::Ident && t.text == "unsafe")?;
    derive_call(toks).map(|c| (kw.line, c))
}

fn derive_call(toks: &[Tok]) -> Option<String> {
    toks.windows(2).find_map(|w| {
        (w[0].kind == TokKind::Ident
            && DERIVE_CALLS.contains(&w[0].text.as_str())
            && (w[1].is_punct("(") || w[1].is_punct("::")))
        .then(|| w[0].text.clone())
    })
}

/// Walk every `let` statement in a block tree (incl. nested control flow).
fn visit_lets<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a [String], &'a [Tok])) {
    for s in stmts {
        match s {
            Stmt::Let {
                names,
                init,
                else_block,
                ..
            } => {
                f(names, init);
                if let Some(eb) = else_block {
                    visit_lets(&eb.stmts, f);
                }
            }
            Stmt::If { then_b, else_b, .. } => {
                visit_lets(&then_b.stmts, f);
                if let Some(eb) = else_b {
                    visit_lets(&eb.stmts, f);
                }
            }
            Stmt::While { body, .. } | Stmt::Loop { body } | Stmt::For { body, .. } => {
                visit_lets(&body.stmts, f)
            }
            Stmt::Match { arms, .. } => {
                for (_, body) in arms {
                    visit_lets(&body.stmts, f);
                }
            }
            Stmt::Block(inner) | Stmt::Unsafe { body: inner, .. } => visit_lets(&inner.stmts, f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn findings(src: &str) -> Vec<RawFinding> {
        let toks = lex(src);
        let fns = parse_file(&toks);
        check_file(src, &toks, &fns)
    }

    #[test]
    fn undocumented_unsafe_block_fires() {
        let f = findings(
            "fn f(p: *const u32) {\n\
             unsafe {\n\
             touch(p);\n\
             }\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unsafe-escape");
        assert_eq!(f[0].line, Some(2));
        assert!(f[0].message.contains("SAFETY:"));
    }

    #[test]
    fn safety_comment_above_silences() {
        let f = findings(
            "fn f(p: *const u32) {\n\
             // SAFETY: p is valid for the caller-guaranteed lifetime.\n\
             unsafe {\n\
             touch(p);\n\
             }\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn trailing_safety_comment_and_attr_interleave_are_honoured() {
        let f = findings(
            "fn f(p: *const u32) {\n\
             // SAFETY: bounds were checked by the header parser.\n\
             #[allow(clippy::cast_ptr_alignment)]\n\
             unsafe {\n\
             touch(p);\n\
             }\n\
             let x = unsafe { read(p) }; // SAFETY: same invariant.\n\
             drop(x);\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn escaping_slice_via_binding_upgrades_the_message() {
        let f = findings(
            "fn view(ptr: *const u32, len: usize) -> &'static [u32] {\n\
             let s = unsafe { std::slice::from_raw_parts(ptr, len) };\n\
             s\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("escapes `view`"), "{f:?}");
        assert!(f[0].message.contains("from_raw_parts"), "{f:?}");
    }

    #[test]
    fn escaping_tail_unsafe_block_is_detected() {
        let f = findings(
            "fn view(ptr: *const u32, len: usize) -> &'static [u32] {\n\
             unsafe {\n\
             std::slice::from_raw_parts(ptr, len)\n\
             }\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("escapes `view`"), "{f:?}");
    }

    #[test]
    fn lifetime_transmute_without_comment_is_an_escape_candidate() {
        // Mirrors the worker-pool pattern: the transmuted job is consumed
        // locally (sent to a channel), so it is the comment that matters.
        let f = findings(
            "fn submit(job: Job<'_>) {\n\
             let job: Job<'static> = unsafe { std::mem::transmute(job) };\n\
             send(job);\n\
             }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("SAFETY:"), "{f:?}");
    }

    #[test]
    fn string_literal_unsafe_is_not_a_site() {
        let f = findings("fn f() { log(\"unsafe things\"); }\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unsafe_impl_needs_a_comment_too() {
        let f = findings("unsafe impl<T: Send> Sync for Slot<T> {}\n");
        assert_eq!(f.len(), 1, "{f:?}");
    }
}
