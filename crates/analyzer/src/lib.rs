//! gsword-analyzer: static lockstep-safety and determinism analysis for
//! the gSWORD workspace.
//!
//! The workspace's SIMT kernels rely on warp-synchronous discipline that
//! the type system cannot express: primitive participation masks must
//! match the lanes actually converged, block-shared pool accesses must be
//! separated by barriers, and every primitive must charge the device cost
//! model. The dynamic sanitizer (gsword-sanitizer) checks the paths a run
//! happens to execute; this crate checks *all* paths, statically.
//!
//! Pipeline: a lossy but comment/string-exact lexer ([`lex`]) feeds a
//! partial parser ([`parse`]) that extracts function bodies, which lower
//! to statement-level control-flow graphs ([`cfg`]) analyzed by a
//! uniformity dataflow plus flow-sensitive mask/pool lattices
//! ([`analysis`]). A call graph over the whole parsed corpus feeds a
//! fixpoint of per-function summaries ([`callgraph`]) so those analyses
//! see through helper functions. Determinism rules (hash-iteration order,
//! float reduction order) live in [`order`], worker-pool deadlock rules in
//! [`blocking`], and path-aware repo invariants migrated from the old
//! textual lint in [`confined`]. Findings serialize to SARIF 2.1.0 via
//! [`sarif`].
//!
//! The front-end is purpose-built on `std` alone rather than `syn`: the
//! workspace builds hermetically from vendored stubs (see
//! `vendor/README.md`) and carries no real parsing dependency, so the
//! analyzer implements the small Rust subset the kernel corpus uses. Any
//! statement it cannot classify degrades to an opaque expression whose
//! call sites are still visible to the analyses.
//!
//! Entry points: [`analyze_source`] for one file, [`analyze_tree`] for a
//! directory walk (used by `cargo xtask analyze` and `cargo xtask lint`),
//! and [`analyze_source_intraprocedural`] for the summary-free PR-4
//! behavior kept as a before/after baseline.
//!
//! False positives are silenced in place with `// gsword: allow(rule)`
//! (covers the comment's line and the next) or `// gsword:
//! allow-file(rule)` (whole file), or accepted into the checked-in
//! baseline consumed by `cargo xtask analyze --gate`.

use std::fmt;
use std::path::{Path, PathBuf};

pub mod analysis;
pub mod blocking;
pub mod callgraph;
pub mod cfg;
pub mod confined;
pub mod escape;
pub mod hot;
pub mod lex;
pub mod loops;
pub mod order;
pub mod parse;
pub mod sarif;

use analysis::{analyze_kernel_fn, analyze_kernel_fn_with, is_kernel_fn, RawFinding};
use callgraph::Summaries;

/// Every rule the analyzer knows, with a one-line description. Drives the
/// SARIF `rules` array and the README table.
pub const RULES: &[(&str, &str)] = &[
    (
        "divergent-sync",
        "warp primitive participation mask contradicts the declared or actual convergence",
    ),
    (
        "pool-race",
        "block-shared pool accesses on some path lack an intervening block_barrier",
    ),
    (
        "primitive-charges-counters",
        "pub fn takes &mut KernelCounters but never charges the device cost model",
    ),
    (
        "no-seqcst",
        "SeqCst atomic ordering outside the allow-listed handshake sites",
    ),
    (
        "launch-merges-counters",
        "device launch loop drops per-launch KernelCounters instead of merging them",
    ),
    (
        "launch-confined",
        "direct device launch outside the engine/runtime launch layer",
    ),
    (
        "prof-confined",
        "profiler scopes constructed outside the instrumented runtime layer",
    ),
    (
        "nondet-order",
        "HashMap/HashSet iteration order flows into reports, errors, or serialized output",
    ),
    (
        "float-reduce-order",
        "float accumulation or estimate merge performed in nondeterministic order",
    ),
    (
        "scope-blocking",
        "blocking drain reachable from a pool worker job, or scope erasure with no drain",
    ),
    (
        "alloc-in-hot-loop",
        "heap allocation inside a loop of a kernel-reachable hot function",
    ),
    (
        "charge-per-access",
        "per-element cost charging in a pure charging loop where a batched per-round API exists",
    ),
    (
        "decode-in-loop",
        "compressed adjacency decode of a loop-invariant vertex repeated every iteration",
    ),
    (
        "unsafe-escape",
        "unsafe site without a SAFETY comment, or unsafe-derived value escaping its validator",
    ),
];

/// One diagnostic, formatted `file:line:col: rule: message` (position
/// omitted for file-scoped rules).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: Option<u32>,
    pub col: Option<u32>,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(
                f,
                "{}:{line}:{}: {}: {}",
                self.file,
                self.col.unwrap_or(1),
                self.rule,
                self.message
            ),
            None => write!(f, "{}: {}: {}", self.file, self.rule, self.message),
        }
    }
}

/// In-source suppressions: `// gsword: allow(rule, …)` silences matching
/// findings on its own line and the next; `// gsword: allow-file(rule, …)`
/// silences them in the whole file (including line-less findings).
#[derive(Debug, Default)]
struct Suppressions {
    file_rules: Vec<String>,
    line_rules: Vec<(u32, String)>,
}

impl Suppressions {
    fn parse(src: &str) -> Suppressions {
        let mut s = Suppressions::default();
        for (i, text) in src.lines().enumerate() {
            let line = i as u32 + 1;
            let Some(pos) = text.find("// gsword: allow") else {
                continue;
            };
            let rest = &text[pos + "// gsword: allow".len()..];
            let (file_wide, rest) = match rest.strip_prefix("-file(") {
                Some(r) => (true, r),
                None => match rest.strip_prefix('(') {
                    Some(r) => (false, r),
                    None => continue,
                },
            };
            let Some(close) = rest.find(')') else {
                continue;
            };
            for rule in rest[..close].split(',') {
                let rule = rule.trim().to_string();
                if rule.is_empty() {
                    continue;
                }
                if file_wide {
                    s.file_rules.push(rule);
                } else {
                    s.line_rules.push((line, rule));
                }
            }
        }
        s
    }

    fn allows(&self, f: &Finding) -> bool {
        if self.file_rules.iter().any(|r| r == f.rule) {
            return true;
        }
        match f.line {
            Some(l) => self
                .line_rules
                .iter()
                .any(|(sl, r)| r == f.rule && (l == *sl || l == sl + 1)),
            None => false,
        }
    }
}

fn attach(file: &str, raw: Vec<RawFinding>) -> Vec<Finding> {
    raw.into_iter()
        .map(|r| Finding {
            file: file.to_string(),
            line: r.line,
            col: r.col,
            rule: r.rule,
            message: r.message,
        })
        .collect()
}

/// Analyze a set of files as one corpus: summaries are built over every
/// parsed function, so rules see through helper calls across files.
/// `files` is `(path label, source text)`. Output is deterministic:
/// sorted by (file, line, col, rule, message), deduplicated, suppressions
/// applied.
pub fn analyze_corpus(files: &[(String, String)]) -> Vec<Finding> {
    let parsed: Vec<(usize, Vec<lex::Tok>)> = files
        .iter()
        .enumerate()
        .map(|(i, (_, src))| (i, lex::lex(src)))
        .collect();
    let mut all_fns = Vec::new();
    let mut per_file_fns = Vec::new();
    for (_, toks) in &parsed {
        let fns = parse::parse_file(toks);
        all_fns.extend(fns.iter().cloned());
        per_file_fns.push(fns);
    }
    let sums = Summaries::build(&all_fns);
    let dist = hot::entry_distances(&all_fns);

    let mut out = Vec::new();
    for ((i, toks), fns) in parsed.iter().zip(&per_file_fns) {
        let (file, src) = &files[*i];
        let mut raw = confined::check_file(file, toks);
        raw.extend(blocking::check_erasure(toks));
        raw.extend(escape::check_file(src, toks, fns));
        for f in fns {
            if is_kernel_fn(file, f) {
                raw.extend(analyze_kernel_fn_with(f, &sums));
            }
            raw.extend(order::check_fn(f, &sums));
            raw.extend(blocking::check_fn(f, &sums));
            raw.extend(hot::check_fn(file, f, &dist));
        }
        let sup = Suppressions::parse(src);
        out.extend(attach(file, raw).into_iter().filter(|f| !sup.allows(f)));
    }
    sort_findings(&mut out);
    out.dedup();
    out
}

fn sort_findings(out: &mut [Finding]) {
    out.sort_by(|a, b| {
        (
            a.file.as_str(),
            a.line.unwrap_or(0),
            a.col.unwrap_or(0),
            a.rule,
            a.message.as_str(),
        )
            .cmp(&(
                b.file.as_str(),
                b.line.unwrap_or(0),
                b.col.unwrap_or(0),
                b.rule,
                b.message.as_str(),
            ))
    });
}

/// Analyze one source file (a one-file corpus). `file` is the path label
/// used for reporting and for the path-based allow-lists.
pub fn analyze_source(file: &str, src: &str) -> Vec<Finding> {
    analyze_corpus(&[(file.to_string(), src.to_string())])
}

/// The summary-free analyzer: every call is opaque, no order/blocking
/// rules, no suppressions. This is exactly the PR-4 behavior, kept so the
/// interprocedural tests can assert before/after deltas.
pub fn analyze_source_intraprocedural(file: &str, src: &str) -> Vec<Finding> {
    let toks = lex::lex(src);
    let mut raw = confined::check_file(file, &toks);
    for f in parse::parse_file(&toks) {
        if is_kernel_fn(file, &f) {
            raw.extend(analyze_kernel_fn(&f));
        }
    }
    let mut out = attach(file, raw);
    sort_findings(&mut out);
    out
}

/// Names of the functions in `src` that the kernel-body rules cover.
/// Used by the clean-corpus test to assert the analyzer actually sees the
/// kernels it claims to verify.
pub fn kernel_fn_names(file: &str, src: &str) -> Vec<String> {
    parse::parse_file(&lex::lex(src))
        .into_iter()
        .filter(|f| is_kernel_fn(file, f))
        .map(|f| f.name)
        .collect()
}

/// Walk `root` and analyze every `.rs` file as one corpus. Skips `xtask`
/// (its lint fixtures violate the rules on purpose), `fixtures` trees
/// (same, for this crate), and `target`.
pub fn analyze_tree(root: &Path) -> Vec<Finding> {
    analyze_corpus(&corpus_files(root))
}

/// Collect the analyzable corpus under `root` as `(path label, source)`,
/// with the same skip list `analyze_tree` applies.
pub fn corpus_files(root: &Path) -> Vec<(String, String)> {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths);
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        if rel.components().any(|c| {
            ["xtask", "fixtures", "target"].contains(&c.as_os_str().to_str().unwrap_or(""))
        }) {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        files.push((rel.display().to_string(), src));
    }
    files
}

/// Build the ranked hot-region report over a corpus: one [`hot::HotRow`]
/// per kernel function reachable from an entry point, ranked deepest
/// loops first (see [`hot::rank_rows`]).
pub fn hot_report(files: &[(String, String)]) -> Vec<hot::HotRow> {
    let mut all_fns = Vec::new();
    let mut per_file_fns = Vec::new();
    for (_, src) in files {
        let fns = parse::parse_file(&lex::lex(src));
        all_fns.extend(fns.iter().cloned());
        per_file_fns.push(fns);
    }
    let dist = hot::entry_distances(&all_fns);
    let mut rows = Vec::new();
    for ((file, _), fns) in files.iter().zip(&per_file_fns) {
        for f in fns {
            rows.extend(hot::report_row(file, f, &dist));
        }
    }
    hot::rank_rows(&mut rows);
    rows
}

/// [`hot_report`] over a directory walk (same corpus as [`analyze_tree`]).
pub fn hot_report_tree(root: &Path) -> Vec<hot::HotRow> {
    hot_report(&corpus_files(root))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_has_line_and_column() {
        let with_line = Finding {
            file: "core/src/builder.rs".into(),
            line: Some(7),
            col: Some(13),
            rule: "launch-confined",
            message: "direct device launch".into(),
        };
        assert_eq!(
            with_line.to_string(),
            "core/src/builder.rs:7:13: launch-confined: direct device launch"
        );
        let no_line = Finding {
            file: "warp.rs".into(),
            line: None,
            col: None,
            rule: "primitive-charges-counters",
            message: "pub fn bad takes &mut KernelCounters".into(),
        };
        assert_eq!(
            no_line.to_string(),
            "warp.rs: primitive-charges-counters: pub fn bad takes &mut KernelCounters"
        );
    }

    #[test]
    fn rules_table_is_sorted_unique_and_complete() {
        let names: Vec<&str> = RULES.iter().map(|(n, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate rule ids");
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn hot_report_ranks_reachable_kernel_fns() {
        let files = vec![(
            "engine/src/kernel.rs".to_string(),
            "pub fn run_block(ctr: &mut KernelCounters, san: &WarpSanitizer, bufs: &[Vec<usize>]) {\n\
             for r in 0..4 {\n\
                 warp_load(ctr, san, bufs, r);\n\
                 refine_one(bufs, r);\n\
             }\n\
             }\n"
                .to_string(),
        )];
        let rows = hot_report(&files);
        assert_eq!(rows.len(), 1, "{rows:?}");
        assert_eq!(rows[0].function, "run_block");
        assert_eq!(rows[0].distance, 0);
        assert_eq!(rows[0].max_loop_depth, 1);
        assert_eq!(rows[0].charge_sites.len(), 1);
        let text = hot::render(&rows);
        assert!(text.contains("run_block"), "{text}");
        assert!(text.contains("warp_load"), "{text}");
    }

    #[test]
    fn kernel_fn_detection_by_file_and_signature() {
        let src = "pub fn plain(x: usize) -> usize { x }\n\
                   pub fn kern(mask: WarpMask) -> u32 { mask }\n";
        assert_eq!(kernel_fn_names("some/module.rs", src), vec!["kern"]);
        // Everything in a kernel.rs is kernel code.
        assert_eq!(
            kernel_fn_names("engine/src/kernel.rs", src),
            vec!["plain", "kern"]
        );
    }

    #[test]
    fn test_code_is_exempt_from_kernel_rules() {
        let src = "#[cfg(test)]\nmod tests {\n  fn helper(mask: WarpMask) -> u32 { mask }\n}\n";
        assert!(kernel_fn_names("some/module.rs", src).is_empty());
    }

    #[test]
    fn analyze_source_combines_file_and_kernel_rules() {
        let src = "pub fn bad(ctr: &mut KernelCounters) -> u64 {\n\
                   let x = a.load(Ordering::SeqCst);\nx\n}\n";
        let f = analyze_source("m.rs", src);
        let rules: Vec<_> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"no-seqcst"), "{f:?}");
        assert!(rules.contains(&"primitive-charges-counters"), "{f:?}");
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let src = "pub fn count(m: &HashMap<u32, u32>) -> u32 {\n\
                   for k in m.keys() {\n\
                       // gsword: allow(nondet-order)\n\
                       return *k;\n\
                   }\n\
                   0\n\
                   }\n";
        assert!(analyze_source("m.rs", src).is_empty());
        let unsuppressed = src.replace("// gsword: allow(nondet-order)\n", "");
        assert_eq!(analyze_source("m.rs", &unsuppressed).len(), 1);
    }

    #[test]
    fn allow_file_suppresses_lineless_findings() {
        let src = "// gsword: allow-file(primitive-charges-counters)\n\
                   pub fn bad(ctr: &mut KernelCounters) -> u32 { 0 }\n";
        assert!(analyze_source("m.rs", src).is_empty());
    }

    #[test]
    fn wrong_rule_in_allow_comment_does_not_suppress() {
        let src = "pub fn count(m: &HashMap<u32, u32>) -> u32 {\n\
                   for k in m.keys() {\n\
                       // gsword: allow(pool-race)\n\
                       return *k;\n\
                   }\n\
                   0\n\
                   }\n";
        assert_eq!(analyze_source("m.rs", src).len(), 1);
    }

    #[test]
    fn corpus_analysis_sees_across_files() {
        // The helper lives in one file, the caller in another: only the
        // corpus-level entry point links them.
        let helper = "pub fn drain_one(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
                      pool.fetch_sanitized(san)\n\
                      }\n";
        let caller = "pub fn k(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
                      let t = drain_one(pool, san);\n\
                      pool.read_cursor_unsync(san) + t\n\
                      }\n";
        let files = vec![
            ("a/helper.rs".to_string(), helper.to_string()),
            ("b/kernel.rs".to_string(), caller.to_string()),
        ];
        let f = analyze_corpus(&files);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "pool-race");
        assert_eq!(f[0].file, "b/kernel.rs");
        // The intraprocedural analyzer cannot see it.
        assert!(analyze_source_intraprocedural("b/kernel.rs", caller).is_empty());
    }

    #[test]
    fn same_site_findings_sort_by_rule_then_message() {
        // A divergent call into a helper that both reads the pool cursor at
        // entry and holds a latent full-mask primitive emits TWO findings at
        // the same (line, col). Emission order is pool-race first (the
        // callee-summary check pushes it before the latent-prim check), so
        // only the rule tiebreaker produces the canonical order:
        // divergent-sync < pool-race.
        let helper = "pub fn helper_probe(pool: &SamplePool, ctr: &mut KernelCounters, san: &WarpSanitizer) -> u32 {\n\
                      let t = pool.read_cursor_unsync(san) as u32;\n\
                      ballot(ctr, san, u32::MAX, t)\n\
                      }\n";
        let caller = "pub fn k(pool: &SamplePool, ctr: &mut KernelCounters, san: &WarpSanitizer, mask: WarpMask) {\n\
                      let x = pool.fetch_sanitized(san);\n\
                      for lane in lanes_of(mask) {\n\
                          helper_probe(pool, ctr, san);\n\
                      }\n\
                      ctr.warp_instruction(mask);\n\
                      }\n";
        let files = vec![
            ("a/helper.rs".to_string(), helper.to_string()),
            ("b/kernel.rs".to_string(), caller.to_string()),
        ];
        let f = analyze_corpus(&files);
        let at_call: Vec<&Finding> = f
            .iter()
            .filter(|x| x.file == "b/kernel.rs" && x.line == Some(4))
            .collect();
        assert_eq!(at_call.len(), 2, "{f:?}");
        assert_eq!(at_call[0].col, at_call[1].col, "{f:?}");
        assert_eq!(at_call[0].rule, "divergent-sync", "{f:?}");
        assert_eq!(at_call[1].rule, "pool-race", "{f:?}");
    }

    #[test]
    fn output_is_sorted_and_deduplicated() {
        let src = "pub fn k(pool: &SamplePool, san: &WarpSanitizer) -> usize {\n\
                   let a = pool.fetch_sanitized(san);\n\
                   let b = pool.read_cursor_unsync(san);\n\
                   let x = c.load(Ordering::SeqCst);\n\
                   a + b + x\n\
                   }\n";
        let f = analyze_source("m.rs", src);
        let mut sorted = f.clone();
        sort_findings(&mut sorted);
        assert_eq!(f, sorted);
        let mut deduped = f.clone();
        deduped.dedup();
        assert_eq!(f, deduped);
    }
}
