//! gsword-analyzer: static lockstep-safety analysis for SIMT kernel code.
//!
//! The workspace's SIMT kernels rely on warp-synchronous discipline that
//! the type system cannot express: primitive participation masks must
//! match the lanes actually converged, block-shared pool accesses must be
//! separated by barriers, and every primitive must charge the device cost
//! model. The dynamic sanitizer (gsword-sanitizer) checks the paths a run
//! happens to execute; this crate checks *all* paths, statically.
//!
//! Pipeline: a lossy but comment/string-exact lexer ([`lex`]) feeds a
//! partial parser ([`parse`]) that extracts function bodies, which lower
//! to statement-level control-flow graphs ([`cfg`]) analyzed by a
//! uniformity dataflow plus flow-sensitive mask/pool lattices
//! ([`analysis`]). Path-aware repo invariants migrated from the old
//! textual lint live in [`confined`].
//!
//! The front-end is purpose-built on `std` alone rather than `syn`: the
//! workspace builds hermetically from vendored stubs (see
//! `vendor/README.md`) and carries no real parsing dependency, so the
//! analyzer implements the small Rust subset the kernel corpus uses. Any
//! statement it cannot classify degrades to an opaque expression whose
//! call sites are still visible to the analyses.
//!
//! Entry points: [`analyze_source`] for one file, [`analyze_tree`] for a
//! directory walk (used by `cargo xtask analyze` and `cargo xtask lint`).

use std::fmt;
use std::path::{Path, PathBuf};

pub mod analysis;
pub mod cfg;
pub mod confined;
pub mod lex;
pub mod parse;

use analysis::{analyze_kernel_fn, is_kernel_fn};

/// One diagnostic, formatted `file:line: rule: message` (line omitted for
/// file-scoped rules).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: Option<u32>,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "{}:{line}: {}: {}", self.file, self.rule, self.message),
            None => write!(f, "{}: {}: {}", self.file, self.rule, self.message),
        }
    }
}

/// Analyze one source file. `file` is the path label used for reporting
/// and for the path-based allow-lists.
pub fn analyze_source(file: &str, src: &str) -> Vec<Finding> {
    let toks = lex::lex(src);
    let mut raw = confined::check_file(file, &toks);
    for f in parse::parse_file(&toks) {
        if is_kernel_fn(file, &f) {
            raw.extend(analyze_kernel_fn(&f));
        }
    }
    raw.into_iter()
        .map(|r| Finding {
            file: file.to_string(),
            line: r.line,
            rule: r.rule,
            message: r.message,
        })
        .collect()
}

/// Names of the functions in `src` that the kernel-body rules cover.
/// Used by the clean-corpus test to assert the analyzer actually sees the
/// kernels it claims to verify.
pub fn kernel_fn_names(file: &str, src: &str) -> Vec<String> {
    parse::parse_file(&lex::lex(src))
        .into_iter()
        .filter(|f| is_kernel_fn(file, f))
        .map(|f| f.name)
        .collect()
}

/// Walk `root` and analyze every `.rs` file. Skips `xtask` (its lint
/// fixtures violate the rules on purpose), `fixtures` trees (same, for
/// this crate), and `target`.
pub fn analyze_tree(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files);
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path);
        if rel.components().any(|c| {
            ["xtask", "fixtures", "target"].contains(&c.as_os_str().to_str().unwrap_or(""))
        }) {
            continue;
        }
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        out.extend(analyze_source(&rel.display().to_string(), &src));
    }
    out
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_matches_legacy_format() {
        let with_line = Finding {
            file: "core/src/builder.rs".into(),
            line: Some(7),
            rule: "launch-confined",
            message: "direct device launch".into(),
        };
        assert_eq!(
            with_line.to_string(),
            "core/src/builder.rs:7: launch-confined: direct device launch"
        );
        let no_line = Finding {
            file: "warp.rs".into(),
            line: None,
            rule: "primitive-charges-counters",
            message: "pub fn bad takes &mut KernelCounters".into(),
        };
        assert_eq!(
            no_line.to_string(),
            "warp.rs: primitive-charges-counters: pub fn bad takes &mut KernelCounters"
        );
    }

    #[test]
    fn kernel_fn_detection_by_file_and_signature() {
        let src = "pub fn plain(x: usize) -> usize { x }\n\
                   pub fn kern(mask: WarpMask) -> u32 { mask }\n";
        assert_eq!(kernel_fn_names("some/module.rs", src), vec!["kern"]);
        // Everything in a kernel.rs is kernel code.
        assert_eq!(
            kernel_fn_names("engine/src/kernel.rs", src),
            vec!["plain", "kern"]
        );
    }

    #[test]
    fn test_code_is_exempt_from_kernel_rules() {
        let src = "#[cfg(test)]\nmod tests {\n  fn helper(mask: WarpMask) -> u32 { mask }\n}\n";
        assert!(kernel_fn_names("some/module.rs", src).is_empty());
    }

    #[test]
    fn analyze_source_combines_file_and_kernel_rules() {
        let src = "pub fn bad(ctr: &mut KernelCounters) -> u64 {\n\
                   let x = a.load(Ordering::SeqCst);\nx\n}\n";
        let f = analyze_source("m.rs", src);
        let rules: Vec<_> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"no-seqcst"), "{f:?}");
        assert!(rules.contains(&"primitive-charges-counters"), "{f:?}");
    }
}
