//! Rule `scope-blocking`: blocking drains reachable from inside a pool
//! worker job, and unsafe scope-erasure without a registered drain.
//!
//! The stream worker pool has a fixed number of workers. A job that
//! *waits* for other jobs on the same pool — directly (`Event::wait`,
//! `ScopeSync::wait_all`, `wait_report`) or by opening a nested `scope`
//! (which drains on drop) — can self-deadlock: every worker may end up
//! parked waiting for jobs that no free worker exists to run. The rule
//! therefore flags any blocking call reachable (transitively, through
//! [`crate::callgraph::Summaries`]) from the closure argument of a
//! `submit` / `launch` / `launch_named` call.
//!
//! Host-side closures are exempt by construction: the rule inspects only
//! the *arguments* of submit-family method calls, never `scope`'s own
//! closure, which runs on the submitting thread.
//!
//! The second check is token-level: a `transmute` that erases a lifetime
//! to `'static` (the scope-erasure idiom used to hand borrowed closures
//! to worker threads) is only sound if the file also registers a drain
//! (`wait_all`) that keeps the erased borrows alive until the workers are
//! done. `transmute` + `'static` with no `wait_all` anywhere in the file
//! is flagged.

use crate::analysis::RawFinding;
use crate::callgraph::Summaries;
use crate::cfg::{extract_calls, Call};
use crate::lex::{Tok, TokKind};
use crate::parse::{visit_exprs, FnDef};

/// Submit-family methods whose closure argument runs on a pool worker.
const SUBMITS: &[&str] = &["submit", "launch", "launch_named"];

/// Unconditionally blocking drain primitives.
const DRAINS: &[&str] = &["scope", "wait_all", "wait_report"];

/// Is this call a blocking drain — a drain primitive, a zero-argument
/// `wait()` (`Event::wait` / handle-join style; `cv.wait(stamp)` with
/// arguments is a different, host-side API), or a call into a function
/// whose summary says it blocks?
fn blocking_name(c: &Call, sums: &Summaries) -> Option<String> {
    let n = c.name.as_str();
    // `scope` only as a method (`runtime.scope(..)`): the free-path call
    // `crossbeam::scope(..)` inside `Device::launch_blocks` joins its own
    // dedicated OS threads, which cannot starve the stream worker pool.
    if DRAINS.contains(&n) && (n != "scope" || c.is_method) {
        return Some(c.name.clone());
    }
    if n == "wait" && c.args.is_empty() {
        return Some(c.name.clone());
    }
    if !crate::callgraph::opaque_name(n) && sums.get(n).is_some_and(|s| s.blocks) {
        return Some(c.name.clone());
    }
    None
}

/// Flag submit-family calls whose job argument reaches a blocking drain.
/// One finding per submit site, naming the first blocking callee found.
pub fn check_fn(f: &FnDef, sums: &Summaries) -> Vec<RawFinding> {
    if f.in_test {
        return Vec::new();
    }
    let mut out = Vec::new();
    visit_exprs(&f.body, &mut |toks| {
        for c in extract_calls(toks) {
            if !c.is_method || !SUBMITS.contains(&c.name.as_str()) {
                continue;
            }
            let mut reason: Option<String> = None;
            for arg in &c.args {
                for inner in extract_calls(arg) {
                    if let Some(n) = blocking_name(&inner, sums) {
                        reason = Some(format!("calls blocking `{n}`"));
                        break;
                    }
                }
                if reason.is_none()
                    && arg
                        .iter()
                        .any(|t| t.kind == TokKind::Ident && t.text == "ScopeSync")
                {
                    reason = Some("creates a ScopeSync (drains on drop)".to_string());
                }
                if reason.is_some() {
                    break;
                }
            }
            if let Some(r) = reason {
                out.push(RawFinding {
                    line: Some(c.line),
                    col: Some(c.col),
                    rule: "scope-blocking",
                    message: format!(
                        "job submitted via `{}` {r} — a pool worker waiting on \
                         its own pool self-deadlocks once all workers are \
                         parked; wait on the host side instead",
                        c.name
                    ),
                });
            }
        }
    });
    out
}

/// Summary hook: does calling this function reach a blocking drain?
///
/// `spawn(..)` is a thread boundary: its closure runs on a *new* OS
/// thread while the spawner returns immediately, so drains inside a spawn
/// argument (a worker loop parked on a condvar, say) never block the
/// caller and must not poison its summary.
pub fn blocks_out(f: &FnDef, sums: &Summaries) -> bool {
    if f.in_test {
        return false;
    }
    let mut blocks = false;
    visit_exprs(&f.body, &mut |toks| {
        if blocks {
            return;
        }
        let calls = crate::cfg::extract_calls_spanned(toks);
        let spawn_spans: Vec<(usize, usize)> = calls
            .iter()
            .filter(|(c, _)| c.name == "spawn")
            .map(|&(_, span)| span)
            .collect();
        for (c, (start, _)) in &calls {
            if spawn_spans.iter().any(|&(s, e)| *start > s && *start < e) {
                continue;
            }
            if blocking_name(c, sums).is_some() {
                blocks = true;
                return;
            }
        }
    });
    blocks
}

/// File-level erasure check over the raw token stream: a `transmute` with
/// a `'static` lifetime nearby, in a file with no `wait_all` drain, erases
/// borrow lifetimes with nothing holding them alive.
pub fn check_erasure(toks: &[Tok]) -> Vec<RawFinding> {
    let has_drain = toks.iter().any(|t| t.is_ident("wait_all"));
    if has_drain {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("transmute") {
            continue;
        }
        let window = &toks[i..toks.len().min(i + 40)];
        if window.iter().any(|w| w.is_punct("'static")) {
            out.push(RawFinding {
                line: Some(t.line),
                col: Some(t.col),
                rule: "scope-blocking",
                message: "transmute to 'static erases borrow lifetimes with no \
                          wait_all drain registered in this file — workers may \
                          outlive the borrows they capture"
                    .to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::parse_file;

    fn findings(src: &str) -> Vec<RawFinding> {
        let fns = parse_file(&lex(src));
        let sums = Summaries::build(&fns);
        fns.iter().flat_map(|f| check_fn(f, &sums)).collect()
    }

    #[test]
    fn wait_inside_submitted_job_flagged() {
        let src = "pub fn worker_waits(rs: &RuntimeScope, ev: &Event) {\n\
            rs.submit(0, 0, move || ev.wait());\n\
        }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "scope-blocking");
        assert_eq!(f[0].line, Some(2));
        assert!(f[0].message.contains("`wait`"), "{f:?}");
    }

    #[test]
    fn wait_with_args_is_not_blocking() {
        // cv.wait(stamp) is the host-side condvar API, not a drain.
        let src = "pub fn host_poll(rs: &RuntimeScope, cv: &Cv, stamp: u64) {\n\
            rs.submit(0, 0, move || cv.notify(stamp));\n\
            cv.wait(stamp);\n\
        }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn host_side_scope_closure_is_exempt() {
        // scope's own closure runs on the submitting thread; only submit
        // arguments are worker jobs.
        let src = "pub fn run(rt: &Runtime) {\n\
            rt.scope(|s| {\n\
                s.submit(0, 0, move || step());\n\
            });\n\
        }";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn blocking_reached_through_helper_summary() {
        let src = "fn drain_all(sync: &ScopeHandle) {\n\
            sync.wait_all();\n\
        }\n\
        pub fn bad(rs: &RuntimeScope, sync: &ScopeHandle) {\n\
            rs.launch_named(\"drain\", move || drain_all(sync));\n\
        }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`drain_all`"), "{f:?}");
    }

    #[test]
    fn scope_sync_construction_inside_job_flagged() {
        let src = "pub fn nested(rs: &RuntimeScope) {\n\
            rs.submit(0, 0, move || { let s = ScopeSync::new(); s.go(); });\n\
        }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("ScopeSync"), "{f:?}");
    }

    #[test]
    fn erasure_without_drain_flagged_with_drain_clean() {
        let bad = lex(
            "pub fn erase(f: Box<dyn FnOnce() + '_>) -> Box<dyn FnOnce() + 'static> {\n\
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + '_>, Box<dyn FnOnce() + 'static>>(f) }\n\
            }",
        );
        let f = check_erasure(&bad);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "scope-blocking");
        assert_eq!(f[0].line, Some(2));

        let good = lex(
            "pub fn erase(f: Box<dyn FnOnce() + '_>) -> Box<dyn FnOnce() + 'static> {\n\
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + '_>, Box<dyn FnOnce() + 'static>>(f) }\n\
            }\n\
            pub fn drop_guard(s: &ScopeSync) { s.wait_all(); }\n",
        );
        assert!(check_erasure(&good).is_empty());
    }

    #[test]
    fn spawn_closure_is_a_thread_boundary() {
        // A constructor that parks worker threads on a drain must not be
        // summarized as blocking: the spawner returns immediately.
        let src = "fn new_pool(sync: &ScopeHandle) {\n\
            std::thread::spawn(move || sync.wait_all());\n\
        }\n\
        pub fn ok(rs: &RuntimeScope, sync: &ScopeHandle) {\n\
            rs.submit(0, 0, move || new_pool(sync));\n\
        }";
        assert!(findings(src).is_empty(), "{:?}", findings(src));

        // ...but a drain *outside* the spawn argument still blocks.
        let src = "fn new_pool_then_drain(sync: &ScopeHandle) {\n\
            std::thread::spawn(move || step());\n\
            sync.wait_all();\n\
        }\n\
        pub fn bad(rs: &RuntimeScope, sync: &ScopeHandle) {\n\
            rs.submit(0, 0, move || new_pool_then_drain(sync));\n\
        }";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`new_pool_then_drain`"), "{f:?}");
    }

    #[test]
    fn test_functions_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n\
            fn t(rs: &RuntimeScope, ev: &Event) { rs.submit(0, 0, move || ev.wait()); }\n\
        }";
        assert!(findings(src).is_empty());
    }
}
